"""Free-rider economics: misbehaviour meets time-based amortization.

The paper's §V asks: "what happens when some peers misbehave?" This
example makes 30 % of nodes free-riders (zero chequebook deposit, so
every zero-proximity payment they owe bounces), drives the network
with a download workload interleaved with periodic amortization ticks
on a discrete-event scheduler, and reports:

* how many payments defaulted,
* how much debt the amortization quietly forgave (the free bandwidth
  free-riders consumed),
* what happened to the F2 fairness property.

Run with::

    python examples/free_rider_economics.py
"""

from __future__ import annotations


from repro.baselines import FreeRiderPlan, apply_free_riders
from repro.engine import EventScheduler
from repro.kademlia import OverlayConfig
from repro.swarm import FileManifest, SwarmNetwork, SwarmNetworkConfig
from repro.workloads import paper_workload

N_NODES = 150
N_FILES = 120
AMORTIZE_EVERY = 5.0      # time units between amortization ticks
AMORTIZE_UNITS = 0.02     # free bandwidth per channel per tick
DOWNLOAD_EVERY = 1.0      # one file download per time unit


def run(fraction: float) -> dict:
    network = SwarmNetwork(SwarmNetworkConfig(
        overlay=OverlayConfig(n_nodes=N_NODES, bits=14, seed=5),
    ))
    riders = apply_free_riders(
        network.incentives, list(network.addresses),
        FreeRiderPlan(fraction=fraction, seed=3),
    )
    workload = paper_workload(N_FILES, originator_share=1.0, seed=8)
    events = workload.materialize(
        network.overlay.address_array(), network.overlay.space
    )
    forgiven_total = 0.0

    scheduler = EventScheduler()

    def amortize(sched, time):
        nonlocal forgiven_total
        forgiven_total += network.amortize(AMORTIZE_UNITS)

    scheduler.schedule_periodic(AMORTIZE_EVERY, amortize, name="amortize")
    for index, event in enumerate(events):
        manifest = FileManifest(
            file_id=event.file_id,
            chunk_addresses=tuple(
                int(a) for a in event.chunk_addresses[:60]
            ),
        )
        scheduler.schedule_at(
            index * DOWNLOAD_EVERY,
            lambda sched, time, o=int(event.originator), m=manifest: (
                network.download_file(o, m)
            ),
            name=f"download-{index}",
        )
    scheduler.run_until(N_FILES * DOWNLOAD_EVERY + 1)

    defaults = sum(network.incentives.defaults.values())
    return {
        "riders": len(riders),
        "defaults": defaults,
        "forgiven": forgiven_total,
        "f2": network.fairness().f2_gini,
        "settled": network.incentives.settlement.stats.value_settled,
    }


def main() -> None:
    print(f"{N_NODES} nodes, {N_FILES} downloads, amortization every "
          f"{AMORTIZE_EVERY} time units\n")
    header = (f"{'free-riders':>12} {'defaults':>9} {'forgiven':>9} "
              f"{'settled':>9} {'F2 Gini':>8}")
    print(header)
    print("-" * len(header))
    for fraction in (0.0, 0.1, 0.3, 0.5):
        outcome = run(fraction)
        print(
            f"{outcome['riders']:>12} {outcome['defaults']:>9} "
            f"{outcome['forgiven']:>9.3f} {outcome['settled']:>9.3f} "
            f"{outcome['f2']:>8.4f}"
        )
    print()
    print(
        "Reading: free-riders' first hops lose paid income (higher F2 "
        "Gini) while the debt they accrue is slowly eaten by the "
        "time-based amortization - the free tier the paper describes."
    )


if __name__ == "__main__":
    main()
