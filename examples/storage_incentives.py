"""Storage incentives: the §V "missing half", end to end.

The paper simulates bandwidth incentives only and notes that storage
incentives "appear needed to complete the simulation". This example
runs the complete storage-incentive loop this library adds:

1. uploaders buy postage batches and stamp their chunks;
2. every accounting round, rent drains from live batches into a pot;
3. a redistribution lottery pays the pot to a stake-weighted winner
   among the storers of a random anchor neighborhood;
4. a planted cheater (overstating its reserve) gets detected, slashed,
   and frozen.

Run with::

    python examples/storage_incentives.py
"""

from __future__ import annotations

import numpy as np

from repro.core import gini, lorenz_curve
from repro.analysis import ascii_lorenz
from repro.kademlia import Overlay, OverlayConfig
from repro.swarm import (
    PostageOffice,
    RedistributionGame,
    StakeRegistry,
    SwarmNode,
)

N_NODES = 200
UPLOADS = 80
CHUNKS_PER_UPLOAD = 40
ROUNDS = 400


def main() -> None:
    overlay = Overlay.build(OverlayConfig(n_nodes=N_NODES, bits=14, seed=12))
    nodes = {a: SwarmNode(a, overlay.table(a)) for a in overlay.addresses}
    office = PostageOffice(rent_per_chunk_round=0.002)
    stakes = StakeRegistry(minimum_stake=1.0)
    rng = np.random.default_rng(3)
    for address in overlay.addresses:
        stakes.deposit(address, float(rng.uniform(1.0, 4.0)))

    # -- uploads --------------------------------------------------------
    for _ in range(UPLOADS):
        owner = int(rng.choice(overlay.address_array()))
        batch = office.buy_batch(owner, value=4.0, depth=8)
        for chunk in rng.integers(0, overlay.space.size,
                                  size=CHUNKS_PER_UPLOAD):
            stamp = batch.stamp(int(chunk))
            assert office.validate(stamp)
            nodes[overlay.closest_node(int(chunk))].store.put(int(chunk))
    stored = sum(len(node.store) for node in nodes.values())
    print(f"{UPLOADS} uploads stamped; {stored} chunks pinned across "
          f"{N_NODES} nodes")

    # -- lottery with a planted cheater ----------------------------------
    game = RedistributionGame(
        overlay=overlay, nodes=nodes, office=office, stakes=stakes,
        seed=21,
    )
    cheater = overlay.addresses[0]
    game.mark_cheater(cheater)
    game.play_rounds(ROUNDS)

    rewards = np.array(game.reward_vector(list(overlay.addresses)))
    print(f"\nafter {ROUNDS} rounds:")
    print(f"  rent collected & paid out : {rewards.sum():.3f}")
    print(f"  distinct winners          : {len(game.win_counts())}")
    print(f"  storage-reward F2 Gini    : {gini(rewards):.4f}")
    detected = any(cheater in o.cheaters for o in game.history)
    print(f"  planted cheater detected  : {detected} "
          f"(stake now {stakes.stake_of(cheater):.2f})")
    print()
    print(ascii_lorenz({"storage rewards": lorenz_curve(rewards)}))
    print()
    print(
        "Reading: redistribution is a lottery, so short-horizon rewards "
        "are concentrated (high Gini) even though every staked storer "
        "has proportional expected income - F2 is about opportunity, "
        "which the stake-weighted draw provides."
    )


if __name__ == "__main__":
    main()
