"""Bucket-size study: the paper's core finding, end to end.

Reproduces the k=4 vs k=20 comparison (Table I + Figures 5/6) at
reduced scale and prints the trade-off the paper's §V discusses: the
fairness gained by larger buckets against the connection-maintenance
cost of a larger routing table.

Run with::

    python examples/bucket_size_study.py
"""

from __future__ import annotations

from repro.analysis import Table, ascii_lorenz
from repro.experiments import FastSimulation, FastSimulationConfig
from repro.kademlia.topology import degree_stats

N_NODES = 300
N_FILES = 600


def run_for_bucket_size(bucket_size: int):
    config = FastSimulationConfig(
        n_nodes=N_NODES,
        bucket_size=bucket_size,
        originator_share=0.2,
        n_files=N_FILES,
    )
    simulation = FastSimulation(config)
    return simulation, simulation.run()


def main() -> None:
    table = Table(
        title=f"Bucket size study ({N_FILES} downloads, {N_NODES} nodes, "
              "20% originators)",
        headers=["k", "mean forwarded", "mean hops", "mean degree",
                 "F2 Gini", "F1 Gini"],
    )
    curves = {}
    for bucket_size in (4, 20):
        simulation, result = run_for_bucket_size(bucket_size)
        degrees = degree_stats(simulation.overlay)
        table.add_row(
            bucket_size,
            round(result.average_forwarded_chunks()),
            round(result.mean_hops, 2),
            round(degrees.mean_degree, 1),
            result.f2_gini(),
            result.f1_gini(),
        )
        curves[f"k={bucket_size}"] = result.f2_curve()

    print(table.to_text())
    print()
    print("F2 Lorenz curves (income per node):")
    print(ascii_lorenz(curves))
    print()
    print(
        "Reading: k=20 forwards fewer chunks in total (shorter routes)"
        " and spreads income more evenly - the paper's headline result -"
        " but each node pays for it with a larger routing table."
    )


if __name__ == "__main__":
    main()
