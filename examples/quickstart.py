"""Quickstart: simulate Swarm bandwidth incentives and measure fairness.

Builds the paper's setup at laptop scale (200 nodes instead of 1000),
downloads a few hundred files, and prints the two fairness properties:

* F2 — Gini of per-node income (equal earning opportunity);
* F1 — Gini of forwarded-vs-paid ratios (reward proportionality).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import ascii_lorenz
from repro.experiments import FastSimulation, FastSimulationConfig


def main() -> None:
    config = FastSimulationConfig(
        n_nodes=200,        # paper: 1000
        bucket_size=4,      # Swarm's default bucket size
        originator_share=0.2,   # the paper's skewed workload
        n_files=500,        # paper: up to 10 000
        file_min=100,
        file_max=1000,
    )
    print("building overlay and routing table...")
    simulation = FastSimulation(config)
    result = simulation.run()

    print()
    print(result.summary())
    print()
    print(f"total chunks retrieved : {result.chunks}")
    print(f"mean hops per chunk    : {result.mean_hops:.2f}")
    print(f"local hits             : {result.local_hits}")
    print(f"F2 Gini (income)       : {result.f2_gini():.4f}")
    print(f"F1 Gini (proportional) : {result.f1_gini():.4f}")
    print()
    print(ascii_lorenz({
        "income (F2)": result.f2_curve(),
        "forwarded/paid (F1)": result.f1_curve(),
    }))


if __name__ == "__main__":
    main()
