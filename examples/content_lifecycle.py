"""Content lifecycle: real bytes through the reference network.

Uses the fully observable :class:`~repro.swarm.network.SwarmNetwork`
to walk one file through its whole life:

1. split real content into 4KB content-addressed chunks;
2. upload it (push-sync toward each chunk's storer, with bandwidth
   accounting and zero-proximity payments);
3. download it from another node and verify the bytes;
4. inspect the SWAP ledger: who earned, who owes whom, and what
   time-based amortization forgives.

Run with::

    python examples/content_lifecycle.py
"""

from __future__ import annotations

from repro.kademlia import OverlayConfig
from repro.swarm import SwarmNetwork, SwarmNetworkConfig, split_content


def main() -> None:
    network = SwarmNetwork(SwarmNetworkConfig(
        overlay=OverlayConfig(n_nodes=100, bits=14, seed=11),
        implicit_storage=False,     # real uploads required
    ))
    uploader = network.addresses[0]
    downloader = network.addresses[50]

    content = ("The Book of Swarm, chapter 3: incentives. " * 400).encode()
    manifest = split_content(1, content, network.overlay.space)
    print(f"content: {len(content)} bytes -> {len(manifest)} chunks")

    # -- upload ---------------------------------------------------------
    upload = network.upload_file(uploader, manifest)
    print(f"upload : {upload.chunks} chunks pushed, "
          f"{upload.total_hops} hops travelled")

    # -- download -------------------------------------------------------
    receipt = network.download_file(downloader, manifest)
    rebuilt = b"".join(
        network.node(network.overlay.closest_node(address)).store.get(address)
        for address in manifest.chunk_addresses
    )
    assert rebuilt == content, "content must survive the round trip"
    print(f"download: {receipt.chunks} chunks over {receipt.total_hops} hops"
          f" - bytes verified")

    # -- accounting -----------------------------------------------------
    ledger = network.incentives.ledger
    stats = network.incentives.settlement.stats
    print()
    print("SWAP accounting after one upload + one download:")
    print(f"  cheques cashed        : {stats.cheques_cashed}")
    print(f"  value settled (BZZ)   : {stats.value_settled:.4f}")
    print(f"  uploader spent        : {ledger.expenditure[uploader]:.4f}")
    print(f"  downloader spent      : {ledger.expenditure[downloader]:.4f}")
    top_earners = sorted(
        ledger.income.items(), key=lambda item: -item[1]
    )[:3]
    for node, income in top_earners:
        print(f"  top earner {node:>6}    : {income:.4f} units")

    outstanding = sum(
        abs(channel.balance) for channel in ledger.channels()
    )
    print(f"  outstanding debt      : {outstanding:.4f} units")
    forgiven = network.amortize(0.05)
    print(f"  after one amortization tick (0.05/channel): "
          f"{forgiven:.4f} forgiven, "
          f"{outstanding - forgiven:.4f} remaining")


if __name__ == "__main__":
    main()
