"""Trace replay: identical requests, different configurations.

The cleanest way to compare configurations is to hold the workload
*fixed*: freeze one request sequence into a trace, then replay it
against overlays that differ only in bucket size. Any difference in
the outcome is then attributable to the topology, not workload noise.

This example freezes a 300-file trace and replays it across
k ∈ {2, 4, 8, 20}, printing the per-configuration fairness and
bandwidth — the paper's comparison, workload-controlled.

Run with::

    python examples/trace_replay_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import Table
from repro.experiments import FastSimulation, FastSimulationConfig
from repro.workloads import (
    DownloadWorkload,
    OriginatorPool,
    TraceWorkload,
    UniformFileSize,
    WorkloadTrace,
)

N_NODES = 250
N_FILES = 300
BUCKET_SIZES = (2, 4, 8, 20)


def main() -> None:
    # Build the reference overlay once to materialize the trace
    # against its node population.
    base_config = FastSimulationConfig(
        n_nodes=N_NODES, bucket_size=4, n_files=N_FILES, overlay_seed=42,
    )
    base = FastSimulation(base_config)
    workload = DownloadWorkload(
        n_files=N_FILES,
        originators=OriginatorPool(share=0.2),
        file_size=UniformFileSize(100, 500),
        seed=17,
    )
    events = workload.materialize(
        base.overlay.address_array(), base.space
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.json"
        # Provenance in the header lets any later replay verify it
        # runs on the overlay the trace was captured for.
        WorkloadTrace(
            events, bits=base_config.bits, n_nodes=N_NODES,
            overlay_seed=base_config.overlay_seed,
        ).save(path)
        trace = WorkloadTrace.load(path)
        print(f"frozen trace: {trace.summary()}\n")

        table = Table(
            title="one trace, four topologies",
            headers=["k", "mean forwarded", "mean hops", "F2 Gini",
                     "F1 Gini"],
        )
        for bucket_size in BUCKET_SIZES:
            config = FastSimulationConfig(
                n_nodes=N_NODES, bucket_size=bucket_size,
                n_files=N_FILES, overlay_seed=42,
            )
            result = FastSimulation(config).run(TraceWorkload(trace))
            table.add_row(
                bucket_size,
                round(result.average_forwarded_chunks()),
                round(result.mean_hops, 2),
                result.f2_gini(),
                result.f1_gini(),
            )
        print(table.to_text())
        print()
        print(
            "Reading: with the workload held exactly fixed, every "
            "fairness and bandwidth improvement is attributable to "
            "the larger routing tables alone."
        )


if __name__ == "__main__":
    main()
