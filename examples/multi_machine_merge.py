"""Multi-machine simulation: split a workload, merge the results.

The paper notes its tool "allows us to collect data from runs on
multiple machines into a single simulation" by reusing one overlay.
This example demonstrates the protocol end to end on one machine:

1. both "machines" build the identical overlay from the shared
   overlay seed;
2. each runs half of the downloads with its own workload seed;
3. the per-node result vectors merge into one simulation, and the
   merged fairness numbers are compared against a single-machine run
   of the same total size.

Run with::

    python examples/multi_machine_merge.py
"""

from __future__ import annotations

from repro.experiments import FastSimulation, FastSimulationConfig
from repro.workloads import (
    DownloadWorkload,
    OriginatorPool,
    UniformFileSize,
)

BASE = dict(
    n_nodes=200, bits=16, bucket_size=4, originator_share=0.2,
    file_min=100, file_max=1000, overlay_seed=42,
)
#: All machines must agree on which 20 % of nodes originate downloads.
SHARED_POOL_SEED = 7


def make_workload(n_files: int, traffic_seed: int) -> DownloadWorkload:
    return DownloadWorkload(
        n_files=n_files,
        originators=OriginatorPool(share=BASE["originator_share"]),
        file_size=UniformFileSize(BASE["file_min"], BASE["file_max"]),
        seed=traffic_seed,
        pool_seed=SHARED_POOL_SEED,
    )


def main() -> None:
    # -- machine A and machine B, 300 files each ------------------------
    config_half = FastSimulationConfig(**BASE, n_files=300)
    machine_a = FastSimulation(config_half).run(make_workload(300, 101))
    machine_b = FastSimulation(config_half).run(make_workload(300, 202))
    merged = machine_a.merge(machine_b)

    # -- single machine, 600 files --------------------------------------
    single = FastSimulation(
        FastSimulationConfig(**BASE, n_files=600)
    ).run(make_workload(600, 303))

    print("machine A :", machine_a.summary())
    print("machine B :", machine_b.summary())
    print()
    print("merged    :", merged.summary())
    print("single    :", single.summary())
    print()
    drift_f2 = abs(merged.f2_gini() - single.f2_gini())
    print(f"F2 Gini drift between merged and single runs: {drift_f2:.4f}")
    print(
        "Reading: with the shared overlay the two half-workloads merge "
        "into a statistically equivalent simulation - the same protocol "
        "the paper used to aggregate runs across machines."
    )


if __name__ == "__main__":
    main()
