"""Download-workload generation (paper §IV-B).

A workload is a deterministic sequence of :class:`FileDownload`
events: *who* downloads *which chunk addresses*. The paper's workload
is ``paper_workload()``: each step one originator (uniform from the
eligible pool) requests a file of U(100, 1000) chunks with uniform
addresses; experiments run 100 to 10 000 such files.

Generation is streaming (one event at a time) so paper-scale
workloads never materialize millions of addresses at once unless the
caller asks for a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .._validation import require_int
from ..errors import WorkloadError
from ..kademlia.address import AddressSpace
from .distributions import (
    OriginatorPool,
    UniformChunks,
    UniformFileSize,
    ZipfCatalog,
)

__all__ = ["FileDownload", "DownloadWorkload", "paper_workload"]


@dataclass(frozen=True)
class FileDownload:
    """One workload event: a node downloads one file."""

    file_id: int
    originator: int
    chunk_addresses: np.ndarray

    def __post_init__(self) -> None:
        if len(self.chunk_addresses) == 0:
            raise WorkloadError("a download needs at least one chunk")

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the file."""
        return len(self.chunk_addresses)


@dataclass(frozen=True)
class DownloadWorkload:
    """A reproducible stream of download events.

    Parameters
    ----------
    n_files:
        How many downloads the stream yields.
    originators:
        Who downloads (share of eligible nodes, skew).
    file_size:
        Chunks per file distribution.
    seed:
        Workload RNG seed — independent of the overlay seed, so the
        same topology can serve many workloads.
    pool_seed:
        Optional separate seed for *which* nodes form the originator
        pool. Two workloads sharing a pool_seed target the same
        eligible subset even with different traffic seeds — required
        for the paper's multi-machine protocol, where machines split
        the downloads but must agree on who the 20 % originators are.
        ``None`` derives the pool from ``seed``.
    catalog:
        Optional popularity catalog; replaces fresh uniform chunks per
        file with Zipf-popular repeated files (§V extension).
    """

    n_files: int
    originators: OriginatorPool = field(default_factory=OriginatorPool)
    file_size: UniformFileSize = field(default_factory=UniformFileSize)
    seed: int = 7
    pool_seed: int | None = None
    catalog_size: int = 0
    catalog_exponent: float = 1.0

    def __post_init__(self) -> None:
        require_int(self.n_files, "n_files")
        require_int(self.seed, "seed")
        if self.n_files < 1:
            raise WorkloadError(f"n_files must be >= 1, got {self.n_files}")
        require_int(self.catalog_size, "catalog_size")
        if self.catalog_size < 0:
            raise WorkloadError(
                f"catalog_size must be >= 0, got {self.catalog_size}"
            )

    def events(self, nodes: np.ndarray,
               space: AddressSpace) -> Iterator[FileDownload]:
        """Stream the workload's download events for a node population."""
        rng = np.random.default_rng(self.seed)
        if self.pool_seed is None:
            pool = self.originators.members(np.asarray(nodes), rng)
        else:
            pool_rng = np.random.default_rng(self.pool_seed)
            pool = self.originators.members(np.asarray(nodes), pool_rng)
        chosen = self.originators.sample(pool, self.n_files, rng)
        catalog = None
        if self.catalog_size > 0:
            catalog = ZipfCatalog(
                self.catalog_size, self.catalog_exponent,
                self.file_size, space, rng,
            )
        uniform = UniformChunks()
        sizes = self.file_size.sample(self.n_files, rng)
        for file_id in range(self.n_files):
            if catalog is not None:
                _, addresses = catalog.sample_file(rng)
            else:
                addresses = uniform.sample(int(sizes[file_id]), space, rng)
            yield FileDownload(
                file_id=file_id,
                originator=int(chosen[file_id]),
                chunk_addresses=addresses,
            )

    def materialize(self, nodes: np.ndarray,
                    space: AddressSpace) -> list[FileDownload]:
        """The full event list (use for traces and small workloads)."""
        return list(self.events(nodes, space))

    def total_chunks(self, nodes: np.ndarray, space: AddressSpace) -> int:
        """Total chunk requests the workload will issue."""
        return sum(event.n_chunks for event in self.events(nodes, space))


def paper_workload(n_files: int, originator_share: float,
                   seed: int = 7) -> DownloadWorkload:
    """The paper's workload: U(100,1000) chunks, uniform addresses.

    ``originator_share`` is 0.2 or 1.0 in the paper's experiments.
    """
    return DownloadWorkload(
        n_files=n_files,
        originators=OriginatorPool(share=originator_share),
        file_size=UniformFileSize(low=100, high=1000),
        seed=seed,
    )
