"""Sampling distributions for workload generation (paper §IV-B).

Three axes of a download workload are configurable:

* **who downloads** — :class:`OriginatorPool`: originators drawn
  uniformly from a *share* of the nodes (the paper's 20 % vs 100 %
  skew experiment) or Zipf-weighted to model heavy users;
* **what is downloaded** — :class:`UniformChunks` (the paper: chunk
  addresses uniform over the whole space) or :class:`ZipfCatalog`
  (popular files downloaded more often, §V future work);
* **file size** — :class:`UniformFileSize`: chunks per file uniform
  in a range (the paper: 100 to 1000).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import require_fraction, require_int, require_positive
from ..errors import WorkloadError
from ..kademlia.address import AddressSpace

__all__ = [
    "OriginatorPool",
    "PoissonArrivals",
    "UniformFileSize",
    "UniformChunks",
    "ZipfCatalog",
]


@dataclass(frozen=True)
class OriginatorPool:
    """Chooses which node originates each download.

    ``share`` restricts originators to the first ``share`` fraction of
    a fixed node permutation (the paper "pick[s] originators uniformly
    from either 20% or 100% of the nodes"); ``zipf_exponent`` skews
    the pick within the pool toward its first members (0 = uniform).
    """

    share: float = 1.0
    zipf_exponent: float = 0.0

    def __post_init__(self) -> None:
        require_fraction(self.share, "share")
        if self.share == 0:
            raise WorkloadError("originator share must be positive")
        if self.zipf_exponent < 0:
            raise WorkloadError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )

    def pool_size(self, n_nodes: int) -> int:
        """Number of nodes eligible to originate downloads.

        The pool is ``ceil(share * n_nodes)`` — rounded *up*, so a
        fractional share always admits the partially covered node and
        the pool can never be empty. (``round()`` would banker's-round
        half-fractions to the nearest even count: ``share=0.5`` over 5
        nodes gave 2 but over 7 gave 4, an inconsistency this method
        documents its way out of.) Shares that land within float
        epsilon of an integer — ``0.2 * 120`` is
        ``24.000000000000004`` — snap to that integer first, so exact
        fractions of the population mean exactly what they say.
        """
        require_int(n_nodes, "n_nodes")
        if n_nodes < 1:
            raise WorkloadError(f"n_nodes must be >= 1, got {n_nodes}")
        scaled = self.share * n_nodes
        nearest = round(scaled)
        if abs(scaled - nearest) < 1e-9:
            size = int(nearest)
        else:
            size = math.ceil(scaled)
        return max(1, size)

    def members(self, nodes: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        """The eligible originator addresses (a stable random subset).

        The subset is drawn once per workload from *rng*, so two
        workloads with the same seed target the same 20 %.
        """
        size = self.pool_size(len(nodes))
        if size == len(nodes):
            return np.asarray(nodes)
        return rng.choice(nodes, size=size, replace=False)

    def sample(self, pool: np.ndarray, count: int,
               rng: np.random.Generator) -> np.ndarray:
        """Draw *count* originators from the eligible pool."""
        require_int(count, "count")
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        if self.zipf_exponent == 0.0:
            return rng.choice(pool, size=count, replace=True)
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_exponent)
        weights /= weights.sum()
        return rng.choice(pool, size=count, replace=True, p=weights)


@dataclass(frozen=True)
class PoissonArrivals:
    """When each download *starts*: a Poisson arrival process.

    The hop kernel replays a workload as one timeless batch; the
    time-domain backend needs every file to carry an arrival
    timestamp. ``rate`` is the mean number of file downloads arriving
    per second; inter-arrival gaps are exponential, so the cumulative
    times are a homogeneous Poisson process starting at 0. A rate of
    0 is the degenerate everything-at-once workload (all arrivals at
    ``t=0``), which is what makes the time backend's hop-count
    projection comparable to the static engine.

    Arrival times are drawn from their own generator (seeded
    separately from the workload stream), so turning time on or off
    never perturbs which chunks a workload requests.
    """

    rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.rate >= 0.0:
            raise WorkloadError(
                f"arrival rate must be >= 0 files/s, got {self.rate}"
            )

    def sample(self, n_files: int, rng: np.random.Generator) -> np.ndarray:
        """Arrival times (seconds, non-decreasing) for *n_files* files."""
        require_int(n_files, "n_files")
        if n_files < 0:
            raise WorkloadError(f"n_files must be >= 0, got {n_files}")
        if self.rate == 0.0:
            return np.zeros(n_files, dtype=np.float64)
        gaps = rng.exponential(1.0 / self.rate, size=n_files)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class UniformFileSize:
    """Chunks per file drawn uniformly from [low, high] (paper: 100..1000)."""

    low: int = 100
    high: int = 1000

    def __post_init__(self) -> None:
        require_int(self.low, "low")
        require_int(self.high, "high")
        if not 1 <= self.low <= self.high:
            raise WorkloadError(
                f"file size range must satisfy 1 <= low <= high, got "
                f"[{self.low}, {self.high}]"
            )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *count* file sizes."""
        return rng.integers(self.low, self.high + 1, size=count)


@dataclass(frozen=True)
class UniformChunks:
    """Chunk addresses uniform over the whole space (the paper's model)."""

    def sample(self, n_chunks: int, space: AddressSpace,
               rng: np.random.Generator) -> np.ndarray:
        """Draw *n_chunks* chunk addresses."""
        return rng.integers(0, space.size, size=n_chunks, dtype=np.uint64)

    @property
    def name(self) -> str:
        return "uniform"


class ZipfCatalog:
    """A fixed catalog of files with Zipf-distributed popularity.

    Models the §V extension: requests concentrate on popular content,
    which interacts with forwarding caches. The catalog pre-draws
    ``catalog_size`` files once (chunk addresses uniform); downloads
    then sample *which file* by Zipf rank.
    """

    def __init__(self, catalog_size: int, exponent: float,
                 file_size: UniformFileSize, space: AddressSpace,
                 rng: np.random.Generator) -> None:
        require_int(catalog_size, "catalog_size")
        require_positive(catalog_size, "catalog_size")
        require_positive(exponent, "exponent")
        self.exponent = exponent
        sizes = file_size.sample(catalog_size, rng)
        self.files: list[np.ndarray] = [
            rng.integers(0, space.size, size=int(size), dtype=np.uint64)
            for size in sizes
        ]
        ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        self._weights = weights / weights.sum()

    def __len__(self) -> int:
        return len(self.files)

    def sample_file(self, rng: np.random.Generator) -> tuple[int, np.ndarray]:
        """Draw one (file index, chunk addresses) by popularity."""
        index = int(rng.choice(len(self.files), p=self._weights))
        return index, self.files[index]

    @property
    def name(self) -> str:
        return f"zipf({self.exponent})"
