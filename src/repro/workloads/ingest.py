"""Import measured gateway request logs as workload traces.

Real gateway logs name clients and content by arbitrary identifiers
(peer IDs, content hashes); a simulation run needs overlay node
addresses and chunk addresses inside the configured space. This
module converts the former into the latter deterministically:

* a client that is already an integer overlay address maps to itself;
  anything else (strings, out-of-population integers) hashes onto the
  overlay population with SHA-256, so the same client always lands on
  the same node;
* a chunk reference that is an in-range integer maps to itself;
  anything else hashes into the address space the same way.

The output is an NDJSON :class:`~repro.workloads.traces.WorkloadTrace`
file — written line-by-line as the log is read, so a day-long log
imports in bounded memory — whose provenance header pins the overlay
the mapping was computed for. ``repro-swarm trace import-requests``
is the CLI wrapper.

Accepted input: NDJSON, one request per line. Each line is an object
with a client field (``client`` or ``originator``) and content field
(``chunks`` — a list — or a scalar ``chunk`` / ``cid``); unknown
fields (timestamps, byte counts) are ignored. Example::

    {"client": "12D3KooWA...", "cid": "bafybeib...", "ts": 1e9}
    {"client": 40163, "chunks": [12, 993, 57120]}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable

from ..errors import WorkloadError
from .traces import TRACE_NDJSON_FORMAT

__all__ = ["RequestImportSummary", "import_requests"]


def stable_hash(value: str) -> int:
    """Deterministic 64-bit hash (SHA-256 prefix) of an identifier.

    Python's ``hash()`` is salted per process; imports must map the
    same client to the same node on every machine, so use a real
    digest.
    """
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class RequestImportSummary:
    """What an import did, for CLI output and tests."""

    files: int
    chunks: int
    direct_clients: int
    hashed_clients: int
    direct_chunks: int
    hashed_chunks: int
    skipped_lines: int

    def __str__(self) -> str:
        return (
            f"{self.files} requests / {self.chunks} chunks imported "
            f"(clients: {self.direct_clients} direct, "
            f"{self.hashed_clients} hashed; chunk refs: "
            f"{self.direct_chunks} direct, {self.hashed_chunks} hashed; "
            f"{self.skipped_lines} blank/comment lines skipped)"
        )


def import_requests(lines: Iterable[str] | IO[str],
                    out_path: str | Path, *, overlay,
                    ) -> RequestImportSummary:
    """Convert a gateway request log into an NDJSON workload trace.

    *lines* is any iterable of text lines (an open log file); the
    trace is streamed to *out_path* one event per line. Returns a
    summary of the mapping. Malformed lines raise
    :class:`~repro.errors.WorkloadError` naming the line number.
    """
    addresses = overlay.address_array()
    population = set(int(a) for a in addresses)
    n_nodes = len(addresses)
    space = overlay.space
    files = chunks = 0
    direct_clients = hashed_clients = 0
    direct_chunks = hashed_chunks = 0
    skipped = 0

    def map_client(value) -> int:
        nonlocal direct_clients, hashed_clients
        if (isinstance(value, int) and not isinstance(value, bool)
                and value in population):
            direct_clients += 1
            return value
        hashed_clients += 1
        return int(addresses[stable_hash(str(value)) % n_nodes])

    def map_chunk(value) -> int:
        nonlocal direct_chunks, hashed_chunks
        if (isinstance(value, int) and not isinstance(value, bool)
                and 0 <= value < space.size):
            direct_chunks += 1
            return value
        hashed_chunks += 1
        return stable_hash(str(value)) % space.size

    with Path(out_path).open("w", encoding="utf-8") as out:
        out.write(json.dumps({
            "format": TRACE_NDJSON_FORMAT,
            "bits": space.bits,
            "n_nodes": n_nodes,
            "overlay_seed": overlay.config.seed,
        }) + "\n")
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                skipped += 1
                continue
            try:
                item = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise WorkloadError(
                    f"bad request log line {lineno}: not valid JSON "
                    f"({error})"
                ) from None
            if not isinstance(item, dict):
                raise WorkloadError(
                    f"bad request log line {lineno}: expected a JSON "
                    f"object, got {type(item).__name__}"
                )
            client = item.get("client", item.get("originator"))
            if client is None:
                raise WorkloadError(
                    f"bad request log line {lineno}: no 'client' (or "
                    f"'originator') field"
                )
            refs = item.get("chunks")
            if refs is None:
                scalar = item.get("chunk", item.get("cid"))
                refs = None if scalar is None else [scalar]
            if not isinstance(refs, list) or not refs:
                raise WorkloadError(
                    f"bad request log line {lineno}: no content field "
                    f"— need a non-empty 'chunks' list or a scalar "
                    f"'chunk'/'cid'"
                )
            out.write(json.dumps({
                "file_id": files,
                "originator": map_client(client),
                "chunks": [map_chunk(ref) for ref in refs],
            }) + "\n")
            files += 1
            chunks += len(refs)
    if files == 0:
        raise WorkloadError(
            "request log contained no events; nothing to import"
        )
    return RequestImportSummary(
        files=files, chunks=chunks,
        direct_clients=direct_clients, hashed_clients=hashed_clients,
        direct_chunks=direct_chunks, hashed_chunks=hashed_chunks,
        skipped_lines=skipped,
    )
