"""Workload streams: bounded micro-batches of download events.

The batch pipeline materializes a whole workload before routing it;
a :class:`WorkloadStream` instead yields *micro-batches* — bounded
lists of :class:`~repro.workloads.generators.FileDownload`s — so the
engine can route arbitrarily long request streams in memory bounded
by the batch size, not the stream length. This is the workload-side
half of the streaming contract (``FastSimulation.run_stream`` and
``repro-swarm serve`` are the engine side).

Three adapters cover the sources that exist today:

- :class:`GeneratorStream` chunks any RNG workload generator's
  ``events()`` iterator. Generators draw per-file chunk addresses
  lazily (sizes are sampled up front in one call), so chunking their
  event stream is *RNG-exact*: the batched draws are bit-identical
  to the materialized path, and streaming results match batch
  results exactly.
- :class:`TraceStream` replays a recorded
  :class:`~repro.workloads.traces.WorkloadTrace` file. NDJSON traces
  stream line-by-line (one decoded batch in memory at a time);
  single-document traces fall back to a one-shot parse.
- :class:`RequestStream` parses live NDJSON request lines (one JSON
  object per line, ``{"originator": <address>, "chunks": [...]}``)
  from stdin or a socket file — the wire format of
  ``repro-swarm serve``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    IO,
    Iterable,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from ..errors import WorkloadError
from .generators import FileDownload
from .traces import TraceReader, _chunk_dtype

__all__ = [
    "WorkloadStream",
    "GeneratorStream",
    "TraceStream",
    "RequestStream",
    "parse_request_line",
]

#: Default micro-batch size (files per batch) for stream adapters.
DEFAULT_MAX_BATCH = 256


@runtime_checkable
class WorkloadStream(Protocol):
    """An iterator of bounded micro-batches of download events.

    ``batches(nodes, space)`` mirrors the workload ``events()``
    signature: *nodes* is the overlay's address array, *space* its
    :class:`~repro.kademlia.address.AddressSpace`. Every yielded
    batch is a non-empty sequence of at most ``max_batch`` events;
    adapters must never hold more than one batch's events at a time.
    """

    #: Upper bound on the number of files per yielded batch.
    max_batch: int

    def batches(
        self, nodes, space
    ) -> Iterator[Sequence[FileDownload]]:  # pragma: no cover
        """Yield the stream's events in bounded micro-batches."""
        ...


def _check_max_batch(max_batch: int) -> int:
    max_batch = int(max_batch)
    if max_batch < 1:
        raise WorkloadError(
            f"max_batch must be at least 1, got {max_batch}"
        )
    return max_batch


def _chunk_iterator(
    events: Iterator[FileDownload], max_batch: int
) -> Iterator[list[FileDownload]]:
    """Group an event iterator into lists of at most *max_batch*."""
    batch: list[FileDownload] = []
    for event in events:
        batch.append(event)
        if len(batch) >= max_batch:
            yield batch
            batch = []
    if batch:
        yield batch


class GeneratorStream:
    """Chunk an RNG workload generator into micro-batches.

    Wraps any object with ``events(nodes, space)`` (for example
    :class:`~repro.workloads.generators.DownloadWorkload`). Because
    generators sample file sizes up front and draw chunk addresses
    per file, slicing the event iterator does not perturb the RNG
    stream — the batches concatenate to exactly the materialized
    workload, which the streaming golden tests pin bit-for-bit.
    """

    def __init__(self, workload, *,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        self.workload = workload
        self.max_batch = _check_max_batch(max_batch)

    def batches(self, nodes, space) -> Iterator[list[FileDownload]]:
        yield from _chunk_iterator(
            self.workload.events(nodes, space), self.max_batch
        )


class TraceStream:
    """Replay a recorded trace file in micro-batches.

    Validation matches :class:`~repro.workloads.traces.TraceWorkload`
    replay: the provenance header (when present) is checked against
    the target overlay, every originator must be a population member,
    and chunk addresses must fit the space. NDJSON traces decode
    lazily, so a day-long imported trace streams in memory bounded by
    the batch size.
    """

    def __init__(self, path: str | Path, *,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        self.path = Path(path)
        self.max_batch = _check_max_batch(max_batch)
        self.reader = TraceReader(path)

    def batches(self, nodes, space) -> Iterator[list[FileDownload]]:
        reader = self.reader
        if reader.bits is not None and reader.bits != space.bits:
            raise WorkloadError(
                f"trace was recorded in a {reader.bits}-bit space but "
                f"this replay runs in {space.bits} bits; replay traces "
                f"at the bits they were generated for"
            )
        if reader.n_nodes is not None and reader.n_nodes != len(nodes):
            raise WorkloadError(
                f"trace was recorded over {reader.n_nodes} nodes but "
                f"this overlay has {len(nodes)}; replay traces against "
                f"the overlay they were generated for"
            )
        population = set(int(n) for n in nodes)

        def validated() -> Iterator[FileDownload]:
            for event in reader.events():
                if event.originator not in population:
                    raise WorkloadError(
                        f"trace originator {event.originator} is not a "
                        "node of this overlay; replay traces against "
                        "the overlay seed they were generated for"
                    )
                if int(event.chunk_addresses.max()) >= space.size:
                    raise WorkloadError(
                        f"trace chunk address "
                        f"{int(event.chunk_addresses.max())} outside "
                        f"the {space.bits}-bit space"
                    )
                yield event

        yield from _chunk_iterator(validated(), self.max_batch)


def parse_request_line(line: str, *, bits: int | None = None,
                       lineno: int | None = None,
                       file_id: int = 0) -> FileDownload:
    """Decode one NDJSON request line into a download event.

    The wire format of ``repro-swarm serve``::

        {"originator": 40163, "chunks": [12, 993, 57120]}

    ``file_id`` is optional on the wire (requests are anonymous by
    default); a single address may be sent as ``"chunk": 12``.
    """
    where = "" if lineno is None else f" (line {lineno})"
    try:
        item = json.loads(line)
    except json.JSONDecodeError as error:
        raise WorkloadError(
            f"bad request line{where}: not valid JSON ({error})"
        ) from None
    if not isinstance(item, dict):
        raise WorkloadError(
            f"bad request line{where}: expected a JSON object, got "
            f"{type(item).__name__}"
        )
    chunks = item.get("chunks")
    if chunks is None and "chunk" in item:
        chunks = [item["chunk"]]
    try:
        return FileDownload(
            file_id=int(item.get("file_id", file_id)),
            originator=item["originator"],
            chunk_addresses=np.asarray(chunks, dtype=_chunk_dtype(bits)),
        )
    except (KeyError, TypeError, ValueError, OverflowError) as error:
        raise WorkloadError(
            f"bad request line{where}: {error}"
        ) from None


class RequestStream:
    """Micro-batch live NDJSON request lines (the serve wire format).

    *lines* is any iterable of text lines — ``sys.stdin``, a socket
    file object, a list in tests. Blank lines are skipped; malformed
    lines raise :class:`~repro.errors.WorkloadError` naming the line
    number. Events are validated against the serving overlay exactly
    like trace replay (membership + address range).
    """

    def __init__(self, lines: Iterable[str] | IO[str], *,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        self.lines = lines
        self.max_batch = _check_max_batch(max_batch)

    def batches(self, nodes, space) -> Iterator[list[FileDownload]]:
        population = set(int(n) for n in nodes)

        def validated() -> Iterator[FileDownload]:
            for lineno, line in enumerate(self.lines, start=1):
                if not line.strip():
                    continue
                event = parse_request_line(
                    line, bits=space.bits, lineno=lineno,
                    file_id=lineno - 1,
                )
                if event.originator not in population:
                    raise WorkloadError(
                        f"request originator {event.originator} (line "
                        f"{lineno}) is not a node of this overlay"
                    )
                if int(event.chunk_addresses.max()) >= space.size:
                    raise WorkloadError(
                        f"request chunk address "
                        f"{int(event.chunk_addresses.max())} (line "
                        f"{lineno}) outside the {space.bits}-bit space"
                    )
                yield event

        yield from _chunk_iterator(validated(), self.max_batch)
