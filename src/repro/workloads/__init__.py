"""Workload generation: who downloads what (paper §IV-B).

Originator pools (20 % / 100 % shares, Zipf skew), file-size and
chunk-address distributions, streaming download generators, and
persistable traces for replaying identical request sequences.
"""

from .distributions import (
    OriginatorPool,
    PoissonArrivals,
    UniformChunks,
    UniformFileSize,
    ZipfCatalog,
)
from .generators import DownloadWorkload, FileDownload, paper_workload
from .streams import (
    GeneratorStream,
    RequestStream,
    TraceStream,
    WorkloadStream,
    parse_request_line,
)
from .traces import (
    TRACE_FORMAT,
    TRACE_NDJSON_FORMAT,
    TraceReader,
    TraceSummary,
    TraceWorkload,
    WorkloadTrace,
)

__all__ = [
    "DownloadWorkload",
    "FileDownload",
    "GeneratorStream",
    "OriginatorPool",
    "PoissonArrivals",
    "RequestStream",
    "TRACE_FORMAT",
    "TRACE_NDJSON_FORMAT",
    "TraceReader",
    "TraceStream",
    "TraceSummary",
    "TraceWorkload",
    "UniformChunks",
    "UniformFileSize",
    "WorkloadStream",
    "WorkloadTrace",
    "ZipfCatalog",
    "paper_workload",
]
