"""Workload generation: who downloads what (paper §IV-B).

Originator pools (20 % / 100 % shares, Zipf skew), file-size and
chunk-address distributions, streaming download generators, and
persistable traces for replaying identical request sequences.
"""

from .distributions import (
    OriginatorPool,
    PoissonArrivals,
    UniformChunks,
    UniformFileSize,
    ZipfCatalog,
)
from .generators import DownloadWorkload, FileDownload, paper_workload
from .traces import TRACE_FORMAT, TraceSummary, TraceWorkload, WorkloadTrace

__all__ = [
    "DownloadWorkload",
    "FileDownload",
    "OriginatorPool",
    "PoissonArrivals",
    "TRACE_FORMAT",
    "TraceSummary",
    "TraceWorkload",
    "UniformChunks",
    "UniformFileSize",
    "WorkloadTrace",
    "ZipfCatalog",
    "paper_workload",
]
