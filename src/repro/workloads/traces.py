"""Workload traces: record, persist, replay, summarize.

A :class:`WorkloadTrace` freezes a generated workload into an explicit
event list so that (a) the exact same requests can be replayed against
different mechanisms or topologies, and (b) workloads can be shipped
between machines alongside a shared overlay (the paper's multi-machine
protocol).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..errors import WorkloadError
from .generators import FileDownload

__all__ = ["TraceSummary", "WorkloadTrace", "TraceWorkload"]


@dataclass(frozen=True)
class TraceSummary:
    """Shape statistics of a trace."""

    n_files: int
    total_chunks: int
    distinct_originators: int
    min_file_chunks: int
    max_file_chunks: int
    mean_file_chunks: float

    def __str__(self) -> str:
        return (
            f"{self.n_files} files, {self.total_chunks} chunks, "
            f"{self.distinct_originators} distinct originators, "
            f"file size {self.min_file_chunks}..{self.max_file_chunks} "
            f"(mean {self.mean_file_chunks:.1f})"
        )


class WorkloadTrace:
    """An explicit, immutable list of download events."""

    def __init__(self, events: Sequence[FileDownload]) -> None:
        if len(events) == 0:
            raise WorkloadError("a trace needs at least one event")
        self._events = tuple(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FileDownload]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FileDownload:
        return self._events[index]

    @property
    def events(self) -> tuple[FileDownload, ...]:
        """The trace's events in order."""
        return self._events

    def summary(self) -> TraceSummary:
        """Shape statistics for reports."""
        sizes = np.array([event.n_chunks for event in self._events])
        return TraceSummary(
            n_files=len(self._events),
            total_chunks=int(sizes.sum()),
            distinct_originators=len(
                {event.originator for event in self._events}
            ),
            min_file_chunks=int(sizes.min()),
            max_file_chunks=int(sizes.max()),
            mean_file_chunks=float(sizes.mean()),
        )

    def originator_counts(self) -> dict[int, int]:
        """Downloads issued per originator."""
        counts: dict[int, int] = {}
        for event in self._events:
            counts[event.originator] = counts.get(event.originator, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        payload = [
            {
                "file_id": event.file_id,
                "originator": event.originator,
                "chunks": [int(a) for a in event.chunk_addresses],
            }
            for event in self._events
        ]
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadTrace":
        """Read a trace written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        events = [
            FileDownload(
                file_id=item["file_id"],
                originator=item["originator"],
                chunk_addresses=np.asarray(item["chunks"], dtype=np.uint64),
            )
            for item in payload
        ]
        return cls(events)


class TraceWorkload:
    """Adapter replaying a frozen trace through the workload interface.

    Simulators consume workloads via ``events(nodes, space)``; this
    wrapper satisfies that interface from a :class:`WorkloadTrace`,
    validating that every recorded originator exists in the target
    node population (replays against a different overlay are a user
    error worth failing loudly on).
    """

    def __init__(self, trace: WorkloadTrace) -> None:
        self.trace = trace
        self.n_files = len(trace)

    def events(self, nodes, space) -> Iterator[FileDownload]:
        """Yield the trace's events after validating the population."""
        population = set(int(n) for n in nodes)
        for event in self.trace:
            if event.originator not in population:
                raise WorkloadError(
                    f"trace originator {event.originator} is not a node "
                    "of this overlay; replay traces against the overlay "
                    "seed they were generated for"
                )
            if len(event.chunk_addresses) and (
                int(event.chunk_addresses.max()) >= space.size
            ):
                raise WorkloadError(
                    f"trace chunk address {int(event.chunk_addresses.max())} "
                    f"outside the {space.bits}-bit space"
                )
            yield event

    def materialize(self, nodes, space) -> list[FileDownload]:
        """The validated event list."""
        return list(self.events(nodes, space))
