"""Workload traces: record, persist, replay, summarize.

A :class:`WorkloadTrace` freezes a generated workload into an explicit
event list so that (a) the exact same requests can be replayed against
different mechanisms or topologies, and (b) workloads can be shipped
between machines alongside a shared overlay (the paper's multi-machine
protocol).

Trace files are versioned JSON: a header records the provenance the
replay is only valid for — the address width (``bits``), overlay size
(``n_nodes``) and seed (``overlay_seed``) the trace was captured on —
so a replay against the wrong overlay fails on the *header*, with an
actionable message, instead of depending on the incidental
originator-membership check (which an originator-set coincidence
slips past silently). The pre-header format (a bare JSON event list)
still loads, with ``None`` provenance; dynamics (join/leave/policy)
traces are the separate format of :mod:`repro.scenarios.trace`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..errors import WorkloadError
from ..kademlia.address import target_dtype
from .generators import FileDownload

__all__ = [
    "TRACE_FORMAT",
    "TRACE_NDJSON_FORMAT",
    "TraceSummary",
    "TraceReader",
    "WorkloadTrace",
    "TraceWorkload",
]

#: Format tag written into every request-trace file; bumped on any
#: incompatible layout change so old readers fail loudly, not subtly.
TRACE_FORMAT = "repro-swarm-trace/1"

#: Format tag on the first line of an NDJSON trace (header line, then
#: one event per line). NDJSON is the streaming sibling of
#: :data:`TRACE_FORMAT`: importers write it line-by-line and readers
#: decode it line-by-line, so day-long measured traces never need the
#: whole file's parse tree in memory at once.
TRACE_NDJSON_FORMAT = "repro-swarm-trace/ndjson-1"


def _chunk_dtype(bits: int | None) -> np.dtype:
    """Decoded chunk-address dtype for a recorded address width.

    With provenance present, addresses decode straight into the
    compact dtype the fast kernel's flatten path expects
    (:func:`~repro.kademlia.address.target_dtype`); legacy headerless
    traces (and the >32-bit spaces the vectorized backend refuses
    anyway) keep the historical ``uint64``.
    """
    if bits is not None and bits <= 32:
        return target_dtype(bits)
    return np.dtype(np.uint64)


def _check_header_fields(path, bits, n_nodes, overlay_seed) -> None:
    """Validate a trace header's provenance field types and ranges."""
    for name, value in (("bits", bits), ("n_nodes", n_nodes),
                        ("overlay_seed", overlay_seed)):
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            raise WorkloadError(
                f"cannot read trace {path}: header field "
                f"{name!r} must be an integer or null, got "
                f"{value!r}"
            )
    if bits is not None and not 1 <= bits <= 64:
        raise WorkloadError(
            f"cannot read trace {path}: header field 'bits' "
            f"must be in [1, 64], got {bits}"
        )


def _decode_event(item, dtype: np.dtype, path) -> FileDownload:
    """One raw event dict -> FileDownload, with a path-naming error."""
    try:
        return FileDownload(
            file_id=item["file_id"],
            originator=item["originator"],
            chunk_addresses=np.asarray(item["chunks"], dtype=dtype),
        )
    except (KeyError, TypeError, ValueError, OverflowError) as error:
        raise WorkloadError(
            f"cannot read trace {path}: malformed event ({error})"
        ) from None


@dataclass(frozen=True)
class TraceSummary:
    """Shape statistics of a trace."""

    n_files: int
    total_chunks: int
    distinct_originators: int
    min_file_chunks: int
    max_file_chunks: int
    mean_file_chunks: float

    def __str__(self) -> str:
        return (
            f"{self.n_files} files, {self.total_chunks} chunks, "
            f"{self.distinct_originators} distinct originators, "
            f"file size {self.min_file_chunks}..{self.max_file_chunks} "
            f"(mean {self.mean_file_chunks:.1f})"
        )


class WorkloadTrace:
    """An explicit, immutable list of download events.

    ``bits``, ``n_nodes`` and ``overlay_seed`` are the provenance the
    trace was captured on; they are ``None`` for traces built in
    memory without an overlay at hand (and for files in the legacy
    headerless format), in which case replay-side validation can only
    fall back to the membership checks.
    """

    def __init__(self, events: Sequence[FileDownload], *,
                 bits: int | None = None,
                 n_nodes: int | None = None,
                 overlay_seed: int | None = None) -> None:
        if len(events) == 0:
            raise WorkloadError("a trace needs at least one event")
        self._events = tuple(events)
        self.bits = None if bits is None else int(bits)
        self.n_nodes = None if n_nodes is None else int(n_nodes)
        self.overlay_seed = (
            None if overlay_seed is None else int(overlay_seed)
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FileDownload]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FileDownload:
        return self._events[index]

    @property
    def events(self) -> tuple[FileDownload, ...]:
        """The trace's events in order."""
        return self._events

    def summary(self) -> TraceSummary:
        """Shape statistics for reports."""
        sizes = np.array([event.n_chunks for event in self._events])
        return TraceSummary(
            n_files=len(self._events),
            total_chunks=int(sizes.sum()),
            distinct_originators=len(
                {event.originator for event in self._events}
            ),
            min_file_chunks=int(sizes.min()),
            max_file_chunks=int(sizes.max()),
            mean_file_chunks=float(sizes.mean()),
        )

    def originator_counts(self) -> dict[int, int]:
        """Downloads issued per originator."""
        counts: dict[int, int] = {}
        for event in self._events:
            counts[event.originator] = counts.get(event.originator, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence

    def save(self, path: str | Path) -> None:
        """Write the trace as versioned JSON (header + event list)."""
        payload = {
            "format": TRACE_FORMAT,
            "bits": self.bits,
            "n_nodes": self.n_nodes,
            "overlay_seed": self.overlay_seed,
            "events": [
                {
                    "file_id": event.file_id,
                    "originator": event.originator,
                    "chunks": [int(a) for a in event.chunk_addresses],
                }
                for event in self._events
            ],
        }
        Path(path).write_text(json.dumps(payload))

    def save_ndjson(self, path: str | Path) -> None:
        """Write the trace as NDJSON: a header line, then one event
        per line. Events are serialized one at a time, so writing is
        as bounded-memory as :class:`TraceReader`'s reading."""
        with Path(path).open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "format": TRACE_NDJSON_FORMAT,
                "bits": self.bits,
                "n_nodes": self.n_nodes,
                "overlay_seed": self.overlay_seed,
            }) + "\n")
            for event in self._events:
                handle.write(json.dumps({
                    "file_id": event.file_id,
                    "originator": event.originator,
                    "chunks": [int(a) for a in event.chunk_addresses],
                }) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadTrace":
        """Read a trace written by :meth:`save` or :meth:`save_ndjson`.

        Accepts the legacy bare-list payload (no header, ``None``
        provenance); any other shape — a dict without the
        :data:`TRACE_FORMAT` tag, a mismatched format version, a
        missing event list, invalid JSON — raises
        :class:`~repro.errors.WorkloadError` naming the problem.

        NDJSON traces decode one line at a time: each raw event's
        parse tree is dropped as soon as its compact
        :class:`FileDownload` exists, so peak memory is the decoded
        trace plus one line — not the whole file's JSON tree. That is
        what lets imported day-long gateway traces load at all.
        """
        reader = TraceReader(path)
        return cls(
            list(reader.events()),
            bits=reader.bits, n_nodes=reader.n_nodes,
            overlay_seed=reader.overlay_seed,
        )


class TraceReader:
    """Lazy access to a trace file on disk.

    The constructor parses only enough to learn the format and the
    provenance header (``bits``, ``n_nodes``, ``overlay_seed``);
    :meth:`events` then decodes events on demand. For NDJSON traces
    that is true streaming — one line's parse tree in memory at a
    time, which is how ``repro-swarm serve`` replays day-long
    imported traces in bounded memory. Single-document and legacy
    traces cannot stream (one JSON value holds every event), so the
    constructor parses the document once and :meth:`events` decodes
    from the retained tree.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.bits: int | None = None
        self.n_nodes: int | None = None
        self.overlay_seed: int | None = None
        self.ndjson = False
        self._raw_events: list | None = None
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                first = handle.readline()
        except OSError as error:
            raise WorkloadError(
                f"cannot read trace {path}: {error}"
            ) from None
        # save() emits one-line documents, so the first line usually
        # parses whole; a multi-line (pretty-printed) document fails
        # here and is re-parsed in full below.
        try:
            payload = json.loads(first) if first.strip() else None
        except json.JSONDecodeError:
            payload = None
        if (isinstance(payload, dict)
                and payload.get("format") == TRACE_NDJSON_FORMAT):
            self.ndjson = True
            self.bits = payload.get("bits")
            self.n_nodes = payload.get("n_nodes")
            self.overlay_seed = payload.get("overlay_seed")
            _check_header_fields(self.path, self.bits, self.n_nodes,
                                 self.overlay_seed)
            return
        if payload is None:
            try:
                payload = json.loads(self.path.read_text())
            except OSError as error:
                raise WorkloadError(
                    f"cannot read trace {path}: {error}"
                ) from None
            except json.JSONDecodeError as error:
                raise WorkloadError(
                    f"cannot read trace {path}: not valid JSON "
                    f"({error}); the file may be truncated or corrupt"
                ) from None
        self._parse_document(payload)

    def _parse_document(self, payload) -> None:
        """Adopt a single-document (or legacy bare-list) payload."""
        path = self.path
        if isinstance(payload, list):
            self._raw_events = payload  # legacy headerless format
            return
        if not isinstance(payload, dict):
            raise WorkloadError(
                f"cannot read trace {path}: expected an event list or "
                f"a {TRACE_FORMAT} document, got "
                f"{type(payload).__name__}"
            )
        fmt = payload.get("format")
        if fmt != TRACE_FORMAT:
            raise WorkloadError(
                f"cannot read trace {path}: format tag {fmt!r} is "
                f"not {TRACE_FORMAT!r} (is this a dynamics trace "
                f"or a file from a newer version?)"
            )
        raw_events = payload.get("events")
        if not isinstance(raw_events, list):
            raise WorkloadError(
                f"cannot read trace {path}: missing or non-list "
                f"'events'"
            )
        self.bits = payload.get("bits")
        self.n_nodes = payload.get("n_nodes")
        self.overlay_seed = payload.get("overlay_seed")
        _check_header_fields(path, self.bits, self.n_nodes,
                             self.overlay_seed)
        self._raw_events = raw_events

    def events(self) -> Iterator[FileDownload]:
        """Decode the trace's events in order.

        NDJSON traces stream straight off the file handle; each
        yielded event is the only decoded state held.
        """
        dtype = _chunk_dtype(self.bits)
        if not self.ndjson:
            assert self._raw_events is not None
            for item in self._raw_events:
                yield _decode_event(item, dtype, self.path)
            return
        with self.path.open("r", encoding="utf-8") as handle:
            handle.readline()  # the header line, already parsed
            for lineno, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    item = json.loads(line)
                except json.JSONDecodeError as error:
                    raise WorkloadError(
                        f"cannot read trace {self.path}: line "
                        f"{lineno} is not valid JSON ({error}); the "
                        f"file may be truncated or corrupt"
                    ) from None
                yield _decode_event(item, dtype, self.path)


class TraceWorkload:
    """Adapter replaying a frozen trace through the workload interface.

    Simulators consume workloads via ``events(nodes, space)``; this
    wrapper satisfies that interface from a :class:`WorkloadTrace`.
    Replays against a different overlay than the trace was captured
    for are a user error worth failing loudly on: the trace's
    provenance header (when present) is checked against the target
    population and space first, and every recorded originator must
    exist in the population either way.
    """

    def __init__(self, trace: WorkloadTrace) -> None:
        self.trace = trace
        self.n_files = len(trace)

    def events(self, nodes, space) -> Iterator[FileDownload]:
        """Yield the trace's events after validating the population."""
        trace = self.trace
        if trace.bits is not None and trace.bits != space.bits:
            raise WorkloadError(
                f"trace was recorded in a {trace.bits}-bit space but "
                f"this replay runs in {space.bits} bits; replay traces "
                f"at the bits they were generated for"
            )
        if trace.n_nodes is not None and trace.n_nodes != len(nodes):
            raise WorkloadError(
                f"trace was recorded over {trace.n_nodes} nodes but "
                f"this overlay has {len(nodes)}; replay traces against "
                f"the overlay they were generated for"
            )
        population = set(int(n) for n in nodes)
        for event in self.trace:
            if event.originator not in population:
                raise WorkloadError(
                    f"trace originator {event.originator} is not a node "
                    "of this overlay; replay traces against the overlay "
                    "seed they were generated for"
                )
            # A FileDownload always has at least one chunk (enforced
            # at construction), so the max is well-defined.
            if int(event.chunk_addresses.max()) >= space.size:
                raise WorkloadError(
                    f"trace chunk address {int(event.chunk_addresses.max())} "
                    f"outside the {space.bits}-bit space"
                )
            yield event

    def materialize(self, nodes, space) -> list[FileDownload]:
        """The validated event list."""
        return list(self.events(nodes, space))
