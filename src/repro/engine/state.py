"""Simulation state and update blocks (cadCAD-style).

The paper's simulator is built on cadCAD, whose model is: a dict of
*state variables*, evolved timestep by timestep through an ordered
list of *partial state update blocks*. Each block runs its *policy
functions* against the current state (producing a combined signal
dict) and then applies one *state updater* per variable it owns.

:class:`Block` and :class:`Model` are this library's from-scratch
equivalent (DESIGN.md substitution note). Policies and updaters are
plain callables receiving a :class:`StepContext`, which carries the
sweep parameters, run/timestep indices, the read-only current state,
and a per-run random generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..errors import SimulationError

__all__ = ["StepContext", "Policy", "Updater", "Block", "Model"]


@dataclass(frozen=True)
class StepContext:
    """Everything a policy or updater may read during one substep."""

    params: Mapping[str, Any]
    run: int
    timestep: int
    substep: int
    state: Mapping[str, Any]
    rng: np.random.Generator

    def param(self, name: str) -> Any:
        """A sweep parameter; raises a clear error when missing."""
        try:
            return self.params[name]
        except KeyError:
            raise SimulationError(
                f"parameter {name!r} is not defined; available: "
                f"{sorted(self.params)}"
            ) from None


#: A policy reads the context and emits a signal mapping.
Policy = Callable[[StepContext], Mapping[str, Any]]
#: An updater computes the new value of its state variable.
Updater = Callable[[StepContext, Mapping[str, Any]], Any]


@dataclass(frozen=True)
class Block:
    """One partial state update block.

    ``policies`` run first (in order); their signal dicts are merged —
    duplicate signal keys are an error, because silent overwrites are
    a classic cadCAD footgun. ``updates`` maps state-variable names to
    updaters applied with the merged signals.
    """

    name: str
    updates: Mapping[str, Updater]
    policies: tuple[Policy, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("a block needs a non-empty name")
        if not self.updates:
            raise SimulationError(
                f"block {self.name!r} must update at least one variable"
            )

    def signals(self, context: StepContext) -> dict[str, Any]:
        """Run all policies and merge their signals."""
        merged: dict[str, Any] = {}
        for policy in self.policies:
            produced = policy(context)
            for key, value in produced.items():
                if key in merged:
                    raise SimulationError(
                        f"block {self.name!r}: signal {key!r} produced by "
                        "two policies; rename one signal"
                    )
                merged[key] = value
        return merged


@dataclass(frozen=True)
class Model:
    """A complete simulation model: initial state plus update blocks."""

    initial_state: Mapping[str, Any]
    blocks: tuple[Block, ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.initial_state:
            raise SimulationError("initial_state must not be empty")
        if not self.blocks:
            raise SimulationError("a model needs at least one block")
        state_keys = set(self.initial_state)
        for block in self.blocks:
            unknown = set(block.updates) - state_keys
            if unknown:
                raise SimulationError(
                    f"block {block.name!r} updates undeclared state "
                    f"variables: {sorted(unknown)}"
                )

    def with_params(self, **overrides: Any) -> "Model":
        """A copy of the model with some parameters overridden."""
        merged = dict(self.params)
        merged.update(overrides)
        return Model(
            initial_state=self.initial_state,
            blocks=self.blocks,
            params=merged,
        )
