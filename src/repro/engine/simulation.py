"""The simulation executor (cadCAD-equivalent engine core).

:class:`Simulator` evolves a :class:`~repro.engine.state.Model` for a
number of timesteps and Monte-Carlo runs:

* each run gets an independent named RNG substream of the root seed;
* within a timestep, blocks execute in order as substeps: policies
  produce signals, updaters produce the next values of the variables
  their block owns, all other variables carry over;
* every substep's resulting state is recorded into a
  :class:`~repro.engine.results.ResultSet`, including the initial
  state as timestep 0.

The executor is single-threaded and deterministic; parallelism across
machines is achieved by splitting runs (``first_run`` offset) and
merging result sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_int
from ..errors import SimulationError
from .results import Record, ResultSet
from .rng import run_seed, substream
from .state import Model, StepContext

__all__ = ["SimulationConfig", "Simulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Execution envelope of a simulation."""

    timesteps: int
    runs: int = 1
    seed: int = 42
    first_run: int = 0
    record_substeps: bool = False

    def __post_init__(self) -> None:
        require_int(self.timesteps, "timesteps")
        require_int(self.runs, "runs")
        require_int(self.seed, "seed")
        require_int(self.first_run, "first_run")
        if self.timesteps < 1:
            raise SimulationError(
                f"timesteps must be >= 1, got {self.timesteps}"
            )
        if self.runs < 1:
            raise SimulationError(f"runs must be >= 1, got {self.runs}")
        if self.first_run < 0:
            raise SimulationError(
                f"first_run must be >= 0, got {self.first_run}"
            )


class Simulator:
    """Deterministic executor for cadCAD-style models."""

    def __init__(self, model: Model) -> None:
        self.model = model

    def run(self, config: SimulationConfig) -> ResultSet:
        """Execute the model; returns the full snapshot log."""
        results = ResultSet(
            metadata={
                "timesteps": config.timesteps,
                "runs": config.runs,
                "seed": config.seed,
                "first_run": config.first_run,
                "params": {k: repr(v) for k, v in self.model.params.items()},
            }
        )
        for offset in range(config.runs):
            run = config.first_run + offset
            self._execute_run(run, config, results)
        return results

    def _execute_run(self, run: int, config: SimulationConfig,
                     results: ResultSet) -> None:
        rng = substream(run_seed(config.seed, run))
        state = dict(self.model.initial_state)
        results.append(Record(run=run, timestep=0, substep=0, state=dict(state)))
        for timestep in range(1, config.timesteps + 1):
            for substep, block in enumerate(self.model.blocks, start=1):
                context = StepContext(
                    params=self.model.params,
                    run=run,
                    timestep=timestep,
                    substep=substep,
                    state=state,
                    rng=rng,
                )
                signals = block.signals(context)
                updated = dict(state)
                for variable, updater in block.updates.items():
                    updated[variable] = updater(context, signals)
                state = updated
                if config.record_substeps:
                    results.append(
                        Record(
                            run=run, timestep=timestep, substep=substep,
                            state=dict(state),
                        )
                    )
            if not config.record_substeps:
                results.append(
                    Record(
                        run=run, timestep=timestep,
                        substep=len(self.model.blocks), state=dict(state),
                    )
                )
