"""Discrete-event scheduler.

The paper's time-based behaviours — SWAP amortization, threshold
settlement, and the churn experiments sketched in §V — need wall-clock
time, not just cadCAD's lockstep timesteps. :class:`EventScheduler` is
a classic priority-queue DES kernel: events fire in timestamp order
(FIFO among equal timestamps), handlers may schedule further events,
and periodic events (amortization ticks) are first-class.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from .._validation import require_non_negative, require_positive
from ..errors import SimulationError

__all__ = ["Event", "EventScheduler", "PeriodicEvent"]

#: An event handler receives the scheduler (to schedule follow-ups)
#: and the firing time.
Handler = Callable[["EventScheduler", float], None]


@dataclass(frozen=True)
class Event:
    """A scheduled event (internal queue entry)."""

    time: float
    sequence: int
    name: str
    handler: Handler = field(compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


@dataclass
class PeriodicEvent:
    """Handle for a repeating event; cancel via :meth:`cancel`."""

    name: str
    interval: float
    handler: Handler
    cancelled: bool = False

    def cancel(self) -> None:
        """Stop future firings (the current one completes)."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue discrete-event kernel."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self.events_fired: int = 0

    def __len__(self) -> int:
        return len(self._queue)

    def schedule_at(self, time: float, handler: Handler,
                    name: str = "event") -> Event:
        """Schedule *handler* at absolute *time* (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {name!r} at {time} before now ({self.now})"
            )
        event = Event(
            time=time, sequence=next(self._counter), name=name, handler=handler
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, handler: Handler,
                    name: str = "event") -> Event:
        """Schedule *handler* after *delay* time units."""
        require_non_negative(delay, "delay")
        return self.schedule_at(self.now + delay, handler, name)

    def schedule_periodic(self, interval: float, handler: Handler,
                          name: str = "periodic",
                          start_in: float | None = None) -> PeriodicEvent:
        """Schedule *handler* every *interval*, starting after one interval.

        Tick *k* fires at exactly ``start + k * interval`` (or
        ``start + start_in + (k - 1) * interval`` with an override),
        computed by multiplication from the scheduling time — never by
        repeated addition, whose accumulated float error would drift
        tick N away from ``N * interval`` and desynchronize periodic
        work (amortization ticks) from epoch timestamps.

        Returns a handle whose :meth:`PeriodicEvent.cancel` stops the
        repetition.
        """
        require_positive(interval, "interval")
        periodic = PeriodicEvent(name=name, interval=interval, handler=handler)
        base = self.now
        if start_in is not None:
            require_non_negative(start_in, "start_in")
            offset = start_in

            def tick_time(tick: int) -> float:
                return base + offset + (tick - 1) * interval
        else:

            def tick_time(tick: int) -> float:
                return base + tick * interval

        tick = 1

        def fire(scheduler: "EventScheduler", time: float) -> None:
            nonlocal tick
            if periodic.cancelled:
                return
            periodic.handler(scheduler, time)
            tick += 1
            if not periodic.cancelled:
                scheduler.schedule_at(
                    tick_time(tick), fire, periodic.name
                )

        self.schedule_at(tick_time(1), fire, name)
        return periodic

    def step(self) -> Event | None:
        """Fire the next event; returns it, or None if the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self.now = event.time
        self.events_fired += 1
        event.handler(self, event.time)
        return event

    def run_until(self, horizon: float, *, max_events: int | None = None) -> int:
        """Fire every event with ``time <= horizon``; returns count fired.

        ``max_events`` bounds runaway self-scheduling loops; exceeding
        it raises so the bug is loud.
        """
        if horizon < self.now:
            raise SimulationError(
                f"horizon {horizon} is before now ({self.now})"
            )
        fired = 0
        while self._queue and self._queue[0].time <= horizon:
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before horizon "
                    f"{horizon}; runaway event loop?"
                )
            self.step()
            fired += 1
        self.now = horizon
        return fired

    def run_all(self, *, max_events: int = 1_000_000) -> int:
        """Fire until the queue drains; returns count fired."""
        fired = 0
        while self._queue:
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway event loop?"
                )
            self.step()
            fired += 1
        return fired
