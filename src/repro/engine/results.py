"""Result collection for simulation runs.

A :class:`ResultSet` is an append-only log of state snapshots, one per
(run, timestep, substep). It supports the access patterns the
experiments need — time series of one variable, final states per run —
and merging result sets produced independently (the paper collects
"data from runs on multiple machines into a single simulation" by
sharing the overlay seed; :meth:`ResultSet.merge` is that operation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..errors import SimulationError

__all__ = ["Record", "ResultSet"]


@dataclass(frozen=True)
class Record:
    """One state snapshot."""

    run: int
    timestep: int
    substep: int
    state: Mapping[str, Any]

    def value(self, key: str) -> Any:
        """A state variable from this snapshot."""
        try:
            return self.state[key]
        except KeyError:
            raise SimulationError(
                f"state variable {key!r} not recorded; available: "
                f"{sorted(self.state)}"
            ) from None


@dataclass
class ResultSet:
    """Append-only log of simulation snapshots."""

    records: list[Record] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def append(self, record: Record) -> None:
        """Add one snapshot."""
        self.records.append(record)

    # ------------------------------------------------------------------
    # Queries

    def runs(self) -> list[int]:
        """Sorted distinct run indices."""
        return sorted({record.run for record in self.records})

    def for_run(self, run: int) -> "ResultSet":
        """Snapshots of one Monte-Carlo run."""
        return ResultSet(
            records=[r for r in self.records if r.run == run],
            metadata=dict(self.metadata),
        )

    def at_substep_end(self) -> "ResultSet":
        """Only the last substep of each (run, timestep)."""
        last: dict[tuple[int, int], Record] = {}
        for record in self.records:
            key = (record.run, record.timestep)
            current = last.get(key)
            if current is None or record.substep >= current.substep:
                last[key] = record
        ordered = sorted(
            last.values(), key=lambda r: (r.run, r.timestep, r.substep)
        )
        return ResultSet(records=ordered, metadata=dict(self.metadata))

    def series(self, key: str, run: int | None = None) -> list[Any]:
        """Time series of one variable (end-of-timestep snapshots)."""
        snapshots = self.at_substep_end()
        records = (
            snapshots.records
            if run is None
            else [r for r in snapshots.records if r.run == run]
        )
        return [record.value(key) for record in records]

    def final_state(self, run: int) -> Mapping[str, Any]:
        """The last snapshot of one run."""
        candidates = [r for r in self.records if r.run == run]
        if not candidates:
            raise SimulationError(f"no records for run {run}")
        return max(candidates, key=lambda r: (r.timestep, r.substep)).state

    def final_states(self) -> dict[int, Mapping[str, Any]]:
        """Final snapshot of every run."""
        return {run: self.final_state(run) for run in self.runs()}

    def map_final(self, function: Callable[[Mapping[str, Any]], Any]) -> list[Any]:
        """Apply *function* to each run's final state."""
        return [function(state) for _, state in sorted(self.final_states().items())]

    # ------------------------------------------------------------------
    # Multi-machine aggregation

    def merge(self, other: "ResultSet") -> "ResultSet":
        """Combine two result sets from independent executions.

        Run indices must not collide — the caller assigns disjoint run
        ranges to each machine, as the paper's shared-overlay protocol
        implies.
        """
        overlap = set(self.runs()) & set(other.runs())
        if overlap:
            raise SimulationError(
                f"cannot merge result sets with overlapping runs: "
                f"{sorted(overlap)}"
            )
        merged_meta = dict(self.metadata)
        for key, value in other.metadata.items():
            if key in merged_meta and merged_meta[key] != value:
                raise SimulationError(
                    f"metadata conflict on {key!r}: "
                    f"{merged_meta[key]!r} != {value!r}"
                )
            merged_meta[key] = value
        return ResultSet(
            records=[*self.records, *other.records], metadata=merged_meta
        )

    # ------------------------------------------------------------------
    # Persistence

    def save(self, path: str | Path) -> None:
        """Write the result set as JSON (state must be JSON-encodable)."""
        payload = {
            "metadata": self.metadata,
            "records": [
                {
                    "run": r.run,
                    "timestep": r.timestep,
                    "substep": r.substep,
                    "state": dict(r.state),
                }
                for r in self.records
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "ResultSet":
        """Read a result set written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            records=[Record(**record) for record in payload["records"]],
            metadata=payload["metadata"],
        )
