"""Deterministic random-stream management.

The paper stresses that "random numbers are generated using the same
seed to ensure consistency throughout all experiments". This module
gives every component of a simulation its own *named substream* of a
single root seed, so:

* the same (seed, name) pair always yields the same stream;
* adding a new consumer of randomness never perturbs existing ones
  (no shared global generator);
* independent Monte-Carlo runs get provably independent streams via
  :class:`numpy.random.SeedSequence` spawning.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .._validation import require_int

__all__ = ["substream", "run_seed", "derive_seed"]


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a child seed from a root seed and a path of names.

    Uses SHA-256 over the textual path, so the mapping is stable
    across platforms and Python versions (unlike ``hash()``). Path
    components are joined with the ASCII unit separator so that
    ``("a", "b")`` and ``("a:b",)`` derive different seeds.
    """
    require_int(root_seed, "root_seed")
    text = "\x1f".join([str(root_seed), *map(str, names)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def substream(root_seed: int, *names: str | int) -> np.random.Generator:
    """A generator for the named substream of *root_seed*."""
    return np.random.default_rng(derive_seed(root_seed, *names))


def run_seed(root_seed: int, run: int) -> int:
    """Seed of one Monte-Carlo run (a reserved substream path)."""
    require_int(run, "run")
    return derive_seed(root_seed, "monte-carlo-run", run)
