"""Parameter sweeps and Monte-Carlo experiment orchestration.

cadCAD calls this "A/B testing": run the same model under a grid of
parameter combinations. :class:`ParameterSweep` expands a mapping of
``name -> list of values`` into the cross product;
:class:`ExperimentRunner` executes a model per combination and labels
each :class:`~repro.engine.results.ResultSet` with its parameters —
exactly how the paper compares ``k = 4`` vs ``k = 20`` and 20 % vs
100 % originators in one study.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ExperimentError
from .results import ResultSet
from .simulation import SimulationConfig, Simulator
from .state import Model

__all__ = ["ParameterSweep", "SweepPoint", "ExperimentRunner"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter combination plus its position in the sweep."""

    index: int
    params: Mapping[str, Any]

    def label(self) -> str:
        """Stable human-readable label, e.g. ``k=4, originators=0.2``."""
        return ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))


class ParameterSweep:
    """Cross product of per-parameter value lists."""

    def __init__(self, grid: Mapping[str, Sequence[Any]]) -> None:
        if not grid:
            raise ExperimentError("a sweep needs at least one parameter")
        for name, values in grid.items():
            if len(values) == 0:
                raise ExperimentError(
                    f"sweep parameter {name!r} has no values"
                )
        self.grid = {name: list(values) for name, values in grid.items()}

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[SweepPoint]:
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        for index, combo in enumerate(combos):
            yield SweepPoint(index=index, params=dict(zip(names, combo)))


@dataclass
class ExperimentRunner:
    """Runs a model across a sweep and collects labelled results."""

    model: Model
    config: SimulationConfig
    results: dict[int, ResultSet] = field(default_factory=dict)

    def run_sweep(self, sweep: ParameterSweep) -> dict[int, ResultSet]:
        """Execute every sweep point; returns index -> results."""
        for point in sweep:
            self.results[point.index] = self.run_point(point)
        return self.results

    def run_point(self, point: SweepPoint) -> ResultSet:
        """Execute one parameter combination."""
        model = self.model.with_params(**point.params)
        result = Simulator(model).run(self.config)
        result.metadata["sweep_index"] = point.index
        result.metadata["sweep_label"] = point.label()
        for name, value in point.params.items():
            result.metadata[f"param:{name}"] = repr(value)
        return result
