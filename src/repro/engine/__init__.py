"""Simulation engine: cadCAD-style state-update executor plus a
discrete-event kernel.

The paper built its simulator on the cadCAD engine; this subpackage is
the from-scratch equivalent (see DESIGN.md substitutions): models are
state dictionaries evolved through ordered blocks of policy and update
functions, executed deterministically across timesteps, Monte-Carlo
runs and parameter sweeps. :mod:`repro.engine.des` adds an event
queue for time-based behaviour (amortization, churn).
"""

from .des import Event, EventScheduler, PeriodicEvent
from .experiment import ExperimentRunner, ParameterSweep, SweepPoint
from .results import Record, ResultSet
from .rng import derive_seed, run_seed, substream
from .simulation import SimulationConfig, Simulator
from .state import Block, Model, Policy, StepContext, Updater

__all__ = [
    "Block",
    "Event",
    "EventScheduler",
    "ExperimentRunner",
    "Model",
    "ParameterSweep",
    "PeriodicEvent",
    "Policy",
    "Record",
    "ResultSet",
    "SimulationConfig",
    "Simulator",
    "StepContext",
    "SweepPoint",
    "Updater",
    "derive_seed",
    "run_seed",
    "substream",
]
