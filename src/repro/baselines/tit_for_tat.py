"""BitTorrent-style tit-for-tat baseline (paper §I).

The paper contrasts Swarm's token incentives with BitTorrent's
tit-for-tat, where "rewards are only given as access to the service":
a peer's payoff is the download bandwidth reciprocated by the peers it
uploads to. To compare fairness properties across mechanism families,
this module implements a self-contained single-swarm BitTorrent model
with the classic components of Cohen's choking algorithm:

* fixed number of unchoke slots, re-evaluated every round by peer
  upload rate toward us (reciprocation);
* one rotating *optimistic unchoke* slot;
* rarest-first piece selection over the local neighborhood view.

The :class:`TitForTatSwarm` runs rounds until all leechers complete
(or a round cap). ``income`` is defined as bytes downloaded (service
received — the only reward TFT pays) and ``contribution`` as bytes
uploaded, which slots directly into the paper's F1/F2 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import require_fraction, require_int
from ..errors import ConfigurationError

__all__ = ["TitForTatConfig", "TitForTatPeer", "TitForTatSwarm"]


@dataclass(frozen=True)
class TitForTatConfig:
    """Parameters of the BitTorrent swarm model."""

    n_peers: int = 50
    n_pieces: int = 200
    seed_fraction: float = 0.1
    unchoke_slots: int = 4
    optimistic_interval: int = 3
    peer_view: int = 12
    uploads_per_round: int = 1
    max_rounds: int = 2000
    seed: int = 42

    def __post_init__(self) -> None:
        require_int(self.n_peers, "n_peers")
        require_int(self.n_pieces, "n_pieces")
        require_int(self.unchoke_slots, "unchoke_slots")
        require_int(self.optimistic_interval, "optimistic_interval")
        require_int(self.peer_view, "peer_view")
        require_int(self.uploads_per_round, "uploads_per_round")
        require_int(self.max_rounds, "max_rounds")
        require_fraction(self.seed_fraction, "seed_fraction")
        if self.n_peers < 2:
            raise ConfigurationError(
                f"n_peers must be >= 2, got {self.n_peers}"
            )
        if self.n_pieces < 1:
            raise ConfigurationError(
                f"n_pieces must be >= 1, got {self.n_pieces}"
            )
        if self.unchoke_slots < 1:
            raise ConfigurationError(
                f"unchoke_slots must be >= 1, got {self.unchoke_slots}"
            )
        if self.peer_view < 1:
            raise ConfigurationError(
                f"peer_view must be >= 1, got {self.peer_view}"
            )


@dataclass
class TitForTatPeer:
    """One peer's state in the swarm."""

    peer_id: int
    pieces: set[int] = field(default_factory=set)
    uploaded: int = 0
    downloaded: int = 0
    neighbors: tuple[int, ...] = ()
    optimistic: int | None = None

    def is_seed(self, n_pieces: int) -> bool:
        """Whether this peer holds every piece."""
        return len(self.pieces) >= n_pieces


class TitForTatSwarm:
    """A single-file BitTorrent swarm with the classic choke algorithm."""

    def __init__(self, config: TitForTatConfig | None = None) -> None:
        self.config = config if config is not None else TitForTatConfig()
        rng = np.random.default_rng(self.config.seed)
        self._rng = rng
        n = self.config.n_peers
        n_seeds = max(1, round(self.config.seed_fraction * n))
        all_pieces = set(range(self.config.n_pieces))
        self.peers: list[TitForTatPeer] = []
        for peer_id in range(n):
            pieces = set(all_pieces) if peer_id < n_seeds else set()
            self.peers.append(TitForTatPeer(peer_id=peer_id, pieces=pieces))
        # Static random peer views, like a tracker handing out peer lists.
        for peer in self.peers:
            others = [p for p in range(n) if p != peer.peer_id]
            view_size = min(self.config.peer_view, len(others))
            peer.neighbors = tuple(
                int(x) for x in rng.choice(others, size=view_size, replace=False)
            )
        # received[a][b] = pieces b uploaded to a in the last round
        # (drives a's reciprocation ranking of b).
        self._received_last_round: list[dict[int, int]] = [
            {} for _ in range(n)
        ]
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # Choking

    def _unchoked_by(self, peer: TitForTatPeer, round_index: int) -> list[int]:
        """Neighbors *peer* unchokes this round (regular + optimistic)."""
        interested = [
            neighbor for neighbor in peer.neighbors
            if self._wants_from(self.peers[neighbor], peer)
        ]
        if not interested:
            return []
        received = self._received_last_round[peer.peer_id]
        ranked = sorted(
            interested, key=lambda nb: received.get(nb, 0), reverse=True
        )
        slots = ranked[: self.config.unchoke_slots]
        if round_index % self.config.optimistic_interval == 0:
            choked = [nb for nb in interested if nb not in slots]
            if choked:
                peer.optimistic = int(self._rng.choice(choked))
        if peer.optimistic is not None and peer.optimistic in interested:
            if peer.optimistic not in slots:
                slots.append(peer.optimistic)
        return slots

    def _wants_from(self, downloader: TitForTatPeer,
                    uploader: TitForTatPeer) -> bool:
        """Whether *downloader* is interested in *uploader*'s pieces."""
        if downloader.is_seed(self.config.n_pieces):
            return False
        return bool(uploader.pieces - downloader.pieces)

    def _pick_piece(self, downloader: TitForTatPeer,
                    uploader: TitForTatPeer) -> int | None:
        """Rarest-first piece selection over the downloader's view."""
        candidates = uploader.pieces - downloader.pieces
        if not candidates:
            return None
        counts = {
            piece: sum(
                1 for nb in downloader.neighbors
                if piece in self.peers[nb].pieces
            )
            for piece in candidates
        }
        rarest = min(counts.values())
        rarest_pieces = sorted(p for p, c in counts.items() if c == rarest)
        return int(self._rng.choice(rarest_pieces))

    # ------------------------------------------------------------------
    # Simulation

    def step(self, round_index: int) -> int:
        """Run one round; returns pieces transferred."""
        transfers: list[tuple[int, int, int]] = []  # (uploader, downloader, piece)
        for peer in self.peers:
            if not peer.pieces:
                continue
            for downloader_id in self._unchoked_by(peer, round_index):
                downloader = self.peers[downloader_id]
                for _ in range(self.config.uploads_per_round):
                    piece = self._pick_piece(downloader, peer)
                    if piece is None:
                        break
                    transfers.append((peer.peer_id, downloader_id, piece))
        received_now: list[dict[int, int]] = [{} for _ in self.peers]
        for uploader_id, downloader_id, piece in transfers:
            downloader = self.peers[downloader_id]
            if piece in downloader.pieces:
                continue  # Duplicate within the round; only count once.
            downloader.pieces.add(piece)
            downloader.downloaded += 1
            self.peers[uploader_id].uploaded += 1
            bucket = received_now[downloader_id]
            bucket[uploader_id] = bucket.get(uploader_id, 0) + 1
        self._received_last_round = received_now
        return len(transfers)

    def run(self) -> int:
        """Run until everyone completes or the round cap; returns rounds."""
        for round_index in range(self.config.max_rounds):
            all_done = all(
                peer.is_seed(self.config.n_pieces) for peer in self.peers
            )
            if all_done:
                break
            self.step(round_index)
            self.rounds_run += 1
        return self.rounds_run

    # ------------------------------------------------------------------
    # Fairness views (service access is the only TFT reward)

    def incomes(self) -> list[float]:
        """Reward per peer = bytes (pieces) of service received."""
        return [float(peer.downloaded) for peer in self.peers]

    def contributions(self) -> list[float]:
        """Contribution per peer = pieces uploaded."""
        return [float(peer.uploaded) for peer in self.peers]

    def completion_fraction(self) -> float:
        """Fraction of peers holding the complete file."""
        done = sum(
            1 for peer in self.peers if peer.is_seed(self.config.n_pieces)
        )
        return done / len(self.peers)
