"""Misbehaving peers (paper §V, second future-work thread).

"For the duration of the experiment, it is assumed that all peers will
adhere to the protocol ... In a second thread of future work, we will
consider what happens when some peers misbehave."

This module implements that thread for the behaviours the paper names:

* **free-riders** — nodes that never pay the zero-proximity node.
  Expressed through the chequebook: a free-rider's deposit is zero,
  so every purchase attempt defaults and the service falls back to
  (amortizing) channel debt.
* **selective free-riders** — pay only a fraction of the time,
  modelled with a probabilistic deposit top-up.

:func:`apply_free_riders` mutates a :class:`SwapIncentives` instance
before a run; :func:`freerider_impact` is the convenience harness the
freerider benchmark uses to compare fairness with and without them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_fraction
from ..core.incentives import SwapIncentives
from ..errors import ConfigurationError

__all__ = ["FreeRiderPlan", "apply_free_riders", "select_free_riders"]


@dataclass(frozen=True)
class FreeRiderPlan:
    """Which nodes misbehave and how severely.

    ``fraction`` of nodes are made free-riders; with ``pay_probability``
    above zero they are *selective*: their chequebook is funded to
    cover roughly that fraction of their obligations.
    """

    fraction: float
    pay_probability: float = 0.0
    seed: int = 13

    def __post_init__(self) -> None:
        require_fraction(self.fraction, "fraction")
        require_fraction(self.pay_probability, "pay_probability")


def select_free_riders(nodes: list[int], plan: FreeRiderPlan) -> list[int]:
    """Deterministically choose the misbehaving subset."""
    if not nodes:
        raise ConfigurationError("cannot select free riders from no nodes")
    count = round(plan.fraction * len(nodes))
    if count == 0:
        return []
    rng = np.random.default_rng(plan.seed)
    chosen = rng.choice(np.asarray(nodes), size=count, replace=False)
    return [int(node) for node in chosen]


def apply_free_riders(incentives: SwapIncentives, nodes: list[int],
                      plan: FreeRiderPlan,
                      expected_spend: float = 0.0) -> list[int]:
    """Configure *incentives* so the selected nodes cannot (fully) pay.

    ``expected_spend`` is the rough total a compliant node would spend
    during the run; selective free-riders get a deposit of
    ``pay_probability * expected_spend`` so they default once that
    budget is exhausted. Full free-riders are handled exactly: with a
    zero deposit every purchase attempt raises inside the mechanism
    and is counted in ``incentives.defaults``.

    Returns the chosen free-rider addresses.
    """
    riders = select_free_riders(nodes, plan)
    for rider in riders:
        if plan.pay_probability == 0.0:
            # Chequebook deposits must be non-negative; zero means the
            # first issued cheque already bounces.
            incentives.set_deposit(rider, 0.0)
        else:
            incentives.set_deposit(
                rider, plan.pay_probability * expected_spend
            )
    return riders
