"""Comparison mechanisms and misbehaviour models.

BitTorrent tit-for-tat (service-for-service), Filecoin-style storage
rewards, idealized per-chunk / equal-split references, and the §V
free-rider models — all speaking the same
:class:`~repro.core.incentives.IncentiveMechanism` interface (or, for
the standalone BitTorrent swarm, exposing the same income /
contribution vectors) so the fairness metrics compare like for like.
"""

from .filecoin import FilecoinConfig, FilecoinMechanism
from .flat import (
    EqualSplitMechanism,
    NoRewardMechanism,
    PerChunkRewardMechanism,
)
from .freerider import FreeRiderPlan, apply_free_riders, select_free_riders
from .tit_for_tat import TitForTatConfig, TitForTatPeer, TitForTatSwarm

__all__ = [
    "EqualSplitMechanism",
    "FilecoinConfig",
    "FilecoinMechanism",
    "FreeRiderPlan",
    "NoRewardMechanism",
    "PerChunkRewardMechanism",
    "TitForTatConfig",
    "TitForTatPeer",
    "TitForTatSwarm",
    "apply_free_riders",
    "select_free_riders",
]
