"""Filecoin-style incentive baseline (paper §I).

Filecoin is "an incentive layer in IPFS" rewarding storage providers
through two channels, both modelled here:

* **block rewards** — each epoch one provider wins the block,
  sampled proportionally to *storage power* (Expected Consensus),
  and receives a fixed reward;
* **retrieval deals** — serving a chunk earns a per-chunk retrieval
  payment from the requester (the retrieval market).

The model plugs into the same :class:`~repro.core.incentives.
IncentiveMechanism` interface the Swarm mechanism uses, so the
baseline benchmark compares F1/F2 across mechanisms on identical
routed traffic: retrieval payments go to the node that *served* the
chunk (the end of the route), block rewards accrue to storage power
regardless of traffic — which is exactly why its bandwidth-fairness
profile differs from SWAP's.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import require_int, require_non_negative, require_positive
from ..core.incentives import IncentiveMechanism
from ..errors import ConfigurationError
from ..kademlia.routing import Route

__all__ = ["FilecoinConfig", "FilecoinMechanism"]


@dataclass(frozen=True)
class FilecoinConfig:
    """Parameters of the Filecoin-style reward model."""

    block_reward: float = 10.0
    epoch_length: int = 100
    retrieval_price: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        require_non_negative(self.block_reward, "block_reward")
        require_int(self.epoch_length, "epoch_length")
        require_positive(self.epoch_length, "epoch_length")
        require_non_negative(self.retrieval_price, "retrieval_price")


class FilecoinMechanism(IncentiveMechanism):
    """Storage-power block rewards plus retrieval-market payments.

    ``power`` maps node address to committed storage power; nodes
    absent from the map have zero power and can only earn retrieval
    fees. One *epoch* elapses every ``epoch_length`` processed routes.
    """

    def __init__(self, power: dict[int, float],
                 config: FilecoinConfig | None = None) -> None:
        self.config = config if config is not None else FilecoinConfig()
        for node, value in power.items():
            if value < 0:
                raise ConfigurationError(
                    f"storage power must be >= 0, got {value} for {node}"
                )
        self.power = dict(power)
        self._rng = np.random.default_rng(self.config.seed)
        self._income: defaultdict[int, float] = defaultdict(float)
        self._served: defaultdict[int, int] = defaultdict(int)
        self._forwarded: defaultdict[int, int] = defaultdict(int)
        self.routes_processed = 0
        self.epochs_elapsed = 0
        self.blocks_won: defaultdict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Traffic

    def process_route(self, route: Route) -> None:
        """Retrieval payment to the server; epoch rewards on schedule."""
        for node in route.forwarders:
            self._forwarded[node] += 1
        if route.hops > 0:
            server = route.storer
            self._served[server] += 1
            self._income[server] += self.config.retrieval_price
        self.routes_processed += 1
        if self.routes_processed % self.config.epoch_length == 0:
            self._run_epoch()

    def _run_epoch(self) -> None:
        """Sample a block winner proportional to storage power."""
        self.epochs_elapsed += 1
        if self.config.block_reward == 0:
            return
        nodes = sorted(self.power)
        weights = np.array([self.power[n] for n in nodes], dtype=np.float64)
        total = weights.sum()
        if total == 0:
            return
        winner = int(self._rng.choice(nodes, p=weights / total))
        self.blocks_won[winner] += 1
        self._income[winner] += self.config.block_reward

    # ------------------------------------------------------------------
    # IncentiveMechanism interface

    def incomes(self, nodes: Sequence[int]) -> list[float]:
        return [self._income[node] for node in nodes]

    def contributions(self, nodes: Sequence[int]) -> list[float]:
        """Bandwidth contribution: chunks forwarded (incl. serving)."""
        return [float(self._forwarded[node]) for node in nodes]

    def served_counts(self, nodes: Sequence[int]) -> list[int]:
        """Chunks served as the terminal node, per node."""
        return [self._served[node] for node in nodes]
