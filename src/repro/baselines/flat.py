"""Reference reward mechanisms bracketing the fairness space.

Two idealized mechanisms that bound what any real scheme can achieve
on the paper's properties, plus a do-nothing control:

* :class:`PerChunkRewardMechanism` — every forwarded chunk earns the
  same reward. F1 is 0 by construction (reward exactly proportional
  to contribution); F2 equals the inequality of the traffic itself.
* :class:`EqualSplitMechanism` — a fixed pool is split equally over
  all nodes each epoch regardless of work. F2 is 0 by construction;
  F1 is as bad as the traffic is skewed.
* :class:`NoRewardMechanism` — nobody earns anything (churn/free-ride
  control).

Comparing SWAP against these extremes shows how much of its measured
unfairness is mechanism-induced versus workload-induced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from .._validation import require_non_negative, require_positive
from ..core.incentives import IncentiveMechanism
from ..kademlia.routing import Route

__all__ = [
    "PerChunkRewardMechanism",
    "EqualSplitMechanism",
    "NoRewardMechanism",
]


class _TrafficCountingMechanism(IncentiveMechanism):
    """Shared forwarded-chunk bookkeeping."""

    def __init__(self) -> None:
        self._forwarded: defaultdict[int, int] = defaultdict(int)
        self.routes_processed = 0

    def process_route(self, route: Route) -> None:
        for node in route.forwarders:
            self._forwarded[node] += 1
        self.routes_processed += 1

    def contributions(self, nodes: Sequence[int]) -> list[float]:
        return [float(self._forwarded[node]) for node in nodes]


@dataclass(frozen=True)
class _PerChunkParams:
    reward_per_chunk: float = 1.0


class PerChunkRewardMechanism(_TrafficCountingMechanism):
    """Perfectly proportional: fixed reward per forwarded chunk."""

    def __init__(self, reward_per_chunk: float = 1.0) -> None:
        super().__init__()
        require_positive(reward_per_chunk, "reward_per_chunk")
        self.reward_per_chunk = reward_per_chunk

    def incomes(self, nodes: Sequence[int]) -> list[float]:
        return [
            self._forwarded[node] * self.reward_per_chunk for node in nodes
        ]


class EqualSplitMechanism(_TrafficCountingMechanism):
    """Perfectly equal: a pool split evenly regardless of work.

    The pool grows by ``pool_per_route`` for each processed route, so
    total rewards scale with system activity like the other
    mechanisms'.
    """

    def __init__(self, pool_per_route: float = 1.0) -> None:
        super().__init__()
        require_non_negative(pool_per_route, "pool_per_route")
        self.pool_per_route = pool_per_route

    def incomes(self, nodes: Sequence[int]) -> list[float]:
        if len(nodes) == 0:
            return []
        share = self.routes_processed * self.pool_per_route / len(nodes)
        return [share for _ in nodes]


class NoRewardMechanism(_TrafficCountingMechanism):
    """Control: traffic is counted, nobody is rewarded."""

    def incomes(self, nodes: Sequence[int]) -> list[float]:
        return [0.0 for _ in nodes]
