"""Distribution analysis for per-node traffic (paper Fig. 4).

Fig. 4 plots, for each configuration, how many chunks individual
nodes forwarded — a frequency histogram over nodes. The paper also
compares configurations by the *area* under those frequency curves
("the area under k = 4 is 1.6x bigger than the area for k = 20"),
which equals total forwarded chunks; :func:`area_ratio` reproduces
that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import require_int
from ..errors import ConfigurationError

__all__ = ["Histogram", "histogram", "area_ratio"]


@dataclass(frozen=True)
class Histogram:
    """A binned frequency distribution."""

    bin_edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.bin_edges) != len(self.counts) + 1:
            raise ConfigurationError(
                "bin_edges must have exactly one more entry than counts"
            )

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total observations."""
        return int(self.counts.sum())

    def bin_centers(self) -> np.ndarray:
        """Midpoint of each bin."""
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0

    def mode_bin(self) -> tuple[float, float]:
        """(low, high) edges of the most populated bin."""
        index = int(np.argmax(self.counts))
        return (float(self.bin_edges[index]), float(self.bin_edges[index + 1]))

    def frequencies(self) -> np.ndarray:
        """Counts normalized to fractions of the total."""
        if self.total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / self.total

    def rows(self) -> list[tuple[float, float, int]]:
        """(low, high, count) per bin, for tabular rendering."""
        return [
            (float(self.bin_edges[i]), float(self.bin_edges[i + 1]),
             int(self.counts[i]))
            for i in range(self.n_bins)
        ]


def histogram(values: Sequence[float] | np.ndarray, bins: int = 20,
              value_range: tuple[float, float] | None = None) -> Histogram:
    """Bin *values* into a :class:`Histogram`.

    ``value_range`` pins the edges so histograms of different
    configurations share bins and are directly comparable, as in
    Fig. 4's side-by-side panels.
    """
    require_int(bins, "bins")
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("cannot build a histogram of no values")
    counts, edges = np.histogram(array, bins=bins, range=value_range)
    return Histogram(bin_edges=edges, counts=counts)


def area_ratio(values_a: Sequence[float] | np.ndarray,
               values_b: Sequence[float] | np.ndarray) -> float:
    """Ratio of total mass between two per-node traffic distributions.

    The paper's "area under the frequency curve" equals the sum of
    the underlying values (total forwarded chunks), so the ratio is
    computed exactly rather than from binned counts.
    """
    total_a = float(np.asarray(values_a, dtype=np.float64).sum())
    total_b = float(np.asarray(values_b, dtype=np.float64).sum())
    if total_b == 0:
        raise ConfigurationError(
            "cannot compute an area ratio against zero total traffic"
        )
    return total_a / total_b
