"""Summary statistics for experiment outputs.

Small, dependency-light helpers: five-number summaries for per-node
vectors, and mean confidence intervals across Monte-Carlo runs (used
when experiments repeat with different workload seeds). SciPy is used
for exact t quantiles when available, with a normal-approximation
fallback so the core library keeps numpy as its only hard dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Summary",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_gini_interval",
]


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean/std."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} p25={self.p25:.2f} "
            f"median={self.median:.2f} p75={self.p75:.2f} "
            f"max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    """Five-number summary of *values*."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("cannot summarize no values")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        maximum=float(array.max()),
    )


def _t_quantile(confidence: float, dof: int) -> float:
    """Two-sided t quantile; scipy when present, normal fallback."""
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf((1 + confidence) / 2, dof))
    except ImportError:  # pragma: no cover - scipy installed in dev env
        from statistics import NormalDist

        return float(NormalDist().inv_cdf((1 + confidence) / 2))


def mean_confidence_interval(values: Sequence[float] | np.ndarray,
                             confidence: float = 0.95
                             ) -> tuple[float, float, float]:
    """(mean, low, high) of the mean at the given confidence level.

    Requires at least two observations; with exactly one there is no
    variance estimate and the call raises.
    """
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    array = np.asarray(values, dtype=np.float64)
    if array.size < 2:
        raise ConfigurationError(
            "a confidence interval needs at least two observations"
        )
    mean = float(array.mean())
    stderr = float(array.std(ddof=1) / np.sqrt(array.size))
    margin = _t_quantile(confidence, array.size - 1) * stderr
    return (mean, mean - margin, mean + margin)


def bootstrap_gini_interval(values: Sequence[float] | np.ndarray,
                            *, confidence: float = 0.95,
                            n_resamples: int = 1000,
                            seed: int = 0) -> tuple[float, float, float]:
    """(gini, low, high): percentile-bootstrap CI for a Gini coefficient.

    The Gini of a single simulation run is a point estimate over the
    sampled per-node values; the bootstrap quantifies how much it
    would wobble under resampling of the node population. Used to
    decide whether two configurations' Ginis are distinguishable
    without rerunning the simulation.
    """
    from ..core.fairness import gini

    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n_resamples < 10:
        raise ConfigurationError(
            f"n_resamples must be >= 10, got {n_resamples}"
        )
    array = np.asarray(values, dtype=np.float64)
    if array.size < 2:
        raise ConfigurationError(
            "a bootstrap interval needs at least two observations"
        )
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        resample = rng.choice(array, size=array.size, replace=True)
        estimates[i] = gini(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return (gini(array), float(low), float(high))
