"""Bounded-memory online aggregates for streaming runs.

A batch run finishes with a full :class:`SimulationResult` and only
then computes metrics; a streaming run never finishes — it needs
rolling metrics *while* micro-epochs flow through, in state that does
not grow with the stream. This module provides that state:

* :class:`StreamingAggregator` — O(n_nodes) per-node vectors plus
  scalar counters, absorbed one micro-epoch result at a time.
  Because the per-node vectors are held exactly (they are the same
  fixed-size arrays the batch run fills), every emitted metric —
  mean hops, availability, the paper's F1/F2 Gini — is *exactly* the
  batch value over the events seen so far, not an approximation.
  Aggregators merge associatively, so shards of a stream processed
  on different workers combine to the same totals (the Hypothesis
  property suite pins merge algebra and batch-size invariance).
* :class:`QuantileSketch` — a DDSketch-style logarithmic-bucket
  sketch for the one per-chunk (stream-length-proportional) output
  the engine produces, measured latency. Relative-error quantiles
  and a grouped-data Gini estimate in O(log range) buckets, exactly
  mergeable (bucket counts add).

``repro-swarm serve`` holds one aggregator per session and emits
:meth:`StreamingAggregator.snapshot` lines as batches complete.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..core.fairness import evaluate_fairness, gini
from ..errors import ConfigurationError

__all__ = ["QuantileSketch", "StreamingAggregator"]


class QuantileSketch:
    """Mergeable log-bucket quantile sketch (DDSketch flavor).

    Values are counted into geometric buckets ``gamma**k`` with
    ``gamma = (1+alpha)/(1-alpha)``, which bounds every quantile
    estimate's *relative* error by ``alpha``. Buckets are a sparse
    ``dict`` — memory grows with the dynamic range's logarithm, not
    the sample count — and two sketches with the same ``alpha`` merge
    by adding bucket counts, exactly and associatively.
    """

    def __init__(self, alpha: float = 0.01) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(
                f"sketch relative accuracy must be in (0, 1), got {alpha}"
            )
        self.alpha = float(alpha)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        # Values at or below this count as "zero" (one shared bucket):
        # far below any measured millisecond latency.
        self.min_value = 1e-9
        self.zero_count = 0
        self.buckets: dict[int, int] = {}
        self.count = 0

    def add(self, values: Iterable[float] | np.ndarray) -> None:
        """Count a batch of non-negative samples into the sketch."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        if float(array.min()) < 0.0:
            raise ConfigurationError(
                "quantile sketch samples must be non-negative"
            )
        self.count += int(array.size)
        small = array <= self.min_value
        n_small = int(np.count_nonzero(small))
        if n_small:
            self.zero_count += n_small
            array = array[~small]
        if array.size == 0:
            return
        keys = np.ceil(
            np.log(array) / self._log_gamma
        ).astype(np.int64)
        uniques, counts = np.unique(keys, return_counts=True)
        for key, n in zip(uniques.tolist(), counts.tolist()):
            self.buckets[key] = self.buckets.get(key, 0) + int(n)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch counting both inputs' samples."""
        if other.alpha != self.alpha:
            raise ConfigurationError(
                f"cannot merge sketches with different accuracies "
                f"({self.alpha} vs {other.alpha})"
            )
        merged = QuantileSketch(self.alpha)
        merged.zero_count = self.zero_count + other.zero_count
        merged.count = self.count + other.count
        merged.buckets = dict(self.buckets)
        for key, n in other.buckets.items():
            merged.buckets[key] = merged.buckets.get(key, 0) + n
        return merged

    def _bucket_value(self, key: int) -> float:
        """Representative value of bucket *key* (geometric midpoint)."""
        return 2.0 * self.gamma ** key / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The *q*-quantile estimate (relative error <= alpha)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile must be in [0, 1], got {q}"
            )
        if self.count == 0:
            raise ConfigurationError("empty sketch has no quantiles")
        rank = q * (self.count - 1)
        seen = self.zero_count
        if rank < seen:
            return 0.0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if rank < seen:
                return self._bucket_value(key)
        return self._bucket_value(max(self.buckets))

    def gini(self) -> float:
        """Grouped-data Gini estimate over the sketched samples.

        Uses the Lorenz trapezoid formula with each bucket collapsed
        to its representative value — the sketch analogue of the
        exact :func:`~repro.core.fairness.gini`.
        """
        if self.count == 0:
            return 0.0
        values = [0.0] + [
            self._bucket_value(key) for key in sorted(self.buckets)
        ]
        weights = [self.zero_count] + [
            self.buckets[key] for key in sorted(self.buckets)
        ]
        total_weight = float(sum(weights))
        total_mass = sum(v * w for v, w in zip(values, weights))
        if total_mass <= 0.0:
            return 0.0
        area = 0.0
        lorenz_prev = 0.0
        mass = 0.0
        for value, weight in zip(values, weights):
            mass += value * weight
            lorenz = mass / total_mass
            area += (weight / total_weight) * (lorenz_prev + lorenz)
            lorenz_prev = lorenz
        return 1.0 - area

    def summary(self) -> dict:
        """Plain-data form for NDJSON snapshots."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class StreamingAggregator:
    """Exact online aggregates over a stream of micro-epoch results.

    Holds the same per-node vectors a batch result holds (O(n_nodes),
    independent of stream length) plus the scalar counters; absorbing
    a micro-epoch's :class:`SimulationResult` adds them. The final
    :meth:`summary` over a fully absorbed stream equals the batch
    run's metrics — exactly, including the float income/expenditure
    totals, because chunk prices are dyadic rationals whose sums
    never round (the streaming golden tests pin this bit-for-bit).
    """

    def __init__(self, node_addresses: np.ndarray, *,
                 latency_alpha: float = 0.01) -> None:
        n = len(node_addresses)
        self.node_addresses = np.asarray(node_addresses, dtype=np.int64)
        self.forwarded = np.zeros(n, dtype=np.int64)
        self.first_hop = np.zeros(n, dtype=np.int64)
        self.income = np.zeros(n, dtype=np.float64)
        self.expenditure = np.zeros(n, dtype=np.float64)
        self.files = 0
        self.chunks = 0
        self.total_hops = 0
        self.local_hits = 0
        self.fallbacks = 0
        self.cache_hits = 0
        self.unavailable = 0
        self.hop_histogram: dict[int, int] = {}
        self.epochs = 0
        self.latency = QuantileSketch(latency_alpha)

    @property
    def n_nodes(self) -> int:
        return len(self.node_addresses)

    def absorb(self, result, *, epochs: int = 1) -> "StreamingAggregator":
        """Fold one micro-epoch's result into the running totals."""
        if not np.array_equal(
            np.asarray(result.node_addresses, dtype=np.int64),
            self.node_addresses,
        ):
            raise ConfigurationError(
                "cannot absorb a result from a different overlay "
                "(node addresses differ)"
            )
        self.forwarded += result.forwarded
        self.first_hop += result.first_hop
        self.income += result.income
        self.expenditure += result.expenditure
        self.files += result.files
        self.chunks += result.chunks
        self.total_hops += result.total_hops
        self.local_hits += result.local_hits
        self.fallbacks += result.fallbacks
        self.cache_hits += result.cache_hits
        self.unavailable += result.unavailable
        for hops, count in result.hop_histogram.items():
            self.hop_histogram[hops] = (
                self.hop_histogram.get(hops, 0) + count
            )
        if result.latency_ms is not None:
            self.latency.add(result.latency_ms)
        self.epochs += epochs
        return self

    def merge(self, other: "StreamingAggregator") -> "StreamingAggregator":
        """A new aggregator over both inputs' streams.

        Integer counters, histograms and sketch buckets add exactly,
        so merge is associative and commutative; the float vectors
        add in argument order (exact too under the engine's dyadic
        prices).
        """
        if not np.array_equal(other.node_addresses, self.node_addresses):
            raise ConfigurationError(
                "cannot merge aggregators over different overlays "
                "(node addresses differ)"
            )
        merged = StreamingAggregator(
            self.node_addresses, latency_alpha=self.latency.alpha
        )
        merged.forwarded = self.forwarded + other.forwarded
        merged.first_hop = self.first_hop + other.first_hop
        merged.income = self.income + other.income
        merged.expenditure = self.expenditure + other.expenditure
        merged.files = self.files + other.files
        merged.chunks = self.chunks + other.chunks
        merged.total_hops = self.total_hops + other.total_hops
        merged.local_hits = self.local_hits + other.local_hits
        merged.fallbacks = self.fallbacks + other.fallbacks
        merged.cache_hits = self.cache_hits + other.cache_hits
        merged.unavailable = self.unavailable + other.unavailable
        merged.hop_histogram = dict(self.hop_histogram)
        for hops, count in other.hop_histogram.items():
            merged.hop_histogram[hops] = (
                merged.hop_histogram.get(hops, 0) + count
            )
        merged.epochs = self.epochs + other.epochs
        merged.latency = self.latency.merge(other.latency)
        return merged

    # ------------------------------------------------------------------
    # Metrics (each exact over the events absorbed so far)

    @property
    def mean_hops(self) -> float:
        retrieved = self.chunks - self.unavailable
        if retrieved <= 0:
            return 0.0
        return self.total_hops / retrieved

    @property
    def availability(self) -> float:
        if self.chunks == 0:
            return 1.0
        return 1.0 - self.unavailable / self.chunks

    def f2_gini(self) -> float:
        """Fig. 5 metric: exact Gini of per-node income so far."""
        return gini(self.income)

    def f1_gini(self) -> float:
        """Fig. 6 metric: exact Gini of forwarded/first-hop ratios.

        0.0 before any paid hop exists — a server must be able to
        flush its final summary even if the stream was empty.
        """
        if not self.first_hop.any():
            return 0.0
        return evaluate_fairness(
            self.forwarded.astype(np.float64),
            self.first_hop.astype(np.float64),
        ).f1_gini

    def snapshot(self) -> dict:
        """Rolling aggregate line (the serve NDJSON output schema)."""
        out = {
            "epochs": self.epochs,
            "files": self.files,
            "chunks": self.chunks,
            "total_hops": self.total_hops,
            "mean_hops": self.mean_hops,
            "availability": self.availability,
            "local_hits": self.local_hits,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "unavailable": self.unavailable,
            "f2_gini": self.f2_gini(),
            "total_income": float(self.income.sum()),
            "total_expenditure": float(self.expenditure.sum()),
        }
        if self.latency.count:
            out["latency_ms"] = self.latency.summary()
        return out

    def summary(self) -> dict:
        """Final aggregate: the snapshot plus the full-stream extras.

        Drops the ``epochs`` count — it reflects how the stream was
        batched, not what was served — so a streamed final summary is
        byte-comparable against a one-shot batch reference (the CI
        serve smoke relies on this).
        """
        out = self.snapshot()
        del out["epochs"]
        out["f1_gini"] = self.f1_gini()
        out["mean_forwarded"] = float(self.forwarded.mean())
        out["hop_histogram"] = {
            str(h): self.hop_histogram[h]
            for h in sorted(self.hop_histogram)
        }
        return out

    def matches_result(self, result) -> bool:
        """Exact equality against a batch result's totals (tests/CI)."""
        return (
            np.array_equal(self.forwarded, result.forwarded)
            and np.array_equal(self.first_hop, result.first_hop)
            and np.array_equal(self.income, result.income)
            and np.array_equal(self.expenditure, result.expenditure)
            and self.files == result.files
            and self.chunks == result.chunks
            and self.total_hops == result.total_hops
            and self.local_hits == result.local_hits
            and self.fallbacks == result.fallbacks
            and self.cache_hits == result.cache_hits
            and self.unavailable == result.unavailable
            and dict(self.hop_histogram) == dict(result.hop_histogram)
        )
