"""Retrieval-latency modelling and measurement.

The paper measures bandwidth, not latency, but its §V trade-off
discussion ("increasing k means ... higher cost") has a flip side the
simulator can quantify: every saved hop is a saved network round trip.
Two complementary tools live here:

* the hop-histogram *model* (:class:`LatencyModel` /
  :func:`latency_distribution`): converts any simulation's per-chunk
  hop histogram into latency percentiles under a fixed per-hop delay —
  free, but blind to bandwidth contention; and
* the *measured* path (:class:`LatencySummary` /
  :func:`summarize_latencies`): percentile/CDF statistics over the
  per-chunk latency samples the time-domain backend records, which do
  include queueing and fair-share bandwidth effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import require_non_negative, require_positive
from ..errors import ConfigurationError

__all__ = [
    "LatencyModel",
    "LatencyDistribution",
    "latency_distribution",
    "LatencySummary",
    "summarize_latencies",
]


@dataclass(frozen=True)
class LatencyModel:
    """Per-hop delay parameters.

    ``per_hop_ms`` is the one-way forwarding delay per overlay hop;
    ``base_ms`` covers the requester's fixed costs (lookup, TCP).
    The chunk travels to the storer and back along the same path
    (paper Fig. 1), so a ``hops``-hop retrieval costs
    ``base + 2 * hops * per_hop``.
    """

    per_hop_ms: float = 30.0
    base_ms: float = 5.0

    def __post_init__(self) -> None:
        require_positive(self.per_hop_ms, "per_hop_ms")
        require_non_negative(self.base_ms, "base_ms")

    def retrieval_ms(self, hops: int) -> float:
        """Round-trip latency of one retrieval with *hops* hops."""
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        return self.base_ms + 2.0 * hops * self.per_hop_ms


@dataclass(frozen=True)
class LatencyDistribution:
    """Latency summary derived from a hop histogram."""

    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float
    chunks: int

    def __str__(self) -> str:
        return (
            f"mean {self.mean_ms:.0f}ms, p50 {self.p50_ms:.0f}ms, "
            f"p90 {self.p90_ms:.0f}ms, p99 {self.p99_ms:.0f}ms, "
            f"max {self.max_ms:.0f}ms over {self.chunks} chunks"
        )


def latency_distribution(hop_histogram: dict[int, int],
                         model: LatencyModel | None = None
                         ) -> LatencyDistribution:
    """Latency percentiles implied by a ``hops -> chunk count`` histogram.

    Exact (not sampled): percentiles are computed on the weighted
    discrete distribution the histogram defines.
    """
    if model is None:
        model = LatencyModel()
    if not hop_histogram:
        raise ConfigurationError("hop histogram is empty")
    hops = np.array(sorted(hop_histogram), dtype=np.int64)
    counts = np.array(
        [hop_histogram[int(h)] for h in hops], dtype=np.int64
    )
    if np.any(counts < 0) or counts.sum() == 0:
        raise ConfigurationError("hop histogram counts must be positive")
    latencies = np.array(
        [model.retrieval_ms(int(h)) for h in hops], dtype=np.float64
    )
    total = int(counts.sum())
    cumulative = np.cumsum(counts)

    def percentile(q: float) -> float:
        rank = q * total
        index = int(np.searchsorted(cumulative, rank, side="left"))
        return float(latencies[min(index, len(latencies) - 1)])

    mean = float(np.dot(latencies, counts) / total)
    return LatencyDistribution(
        mean_ms=mean,
        p50_ms=percentile(0.50),
        p90_ms=percentile(0.90),
        p99_ms=percentile(0.99),
        max_ms=float(latencies[-1]),
        chunks=total,
    )


@dataclass(frozen=True)
class LatencySummary:
    """Percentile statistics over measured per-chunk latency samples.

    ``samples`` retains the raw sorted milliseconds for CDF plotting;
    it is excluded from equality so summaries compare by their
    statistics.
    """

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    samples: np.ndarray = field(repr=False, compare=False,
                                default_factory=lambda: np.empty(0))

    def __str__(self) -> str:
        return (
            f"latency over {self.count} chunks: mean {self.mean_ms:.1f}ms, "
            f"p50 {self.p50_ms:.1f}ms, p95 {self.p95_ms:.1f}ms, "
            f"p99 {self.p99_ms:.1f}ms, max {self.max_ms:.1f}ms"
        )

    def cdf(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(latency_ms, cumulative fraction) pairs for plotting.

        Evaluates the empirical CDF at *points* evenly spaced
        quantiles — a fixed-size summary regardless of sample count.
        """
        require_positive(points, "points")
        if self.samples.size == 0:
            raise ConfigurationError(
                "this summary was built without retained samples"
            )
        qs = np.linspace(0.0, 1.0, points + 1)
        return np.quantile(self.samples, qs), qs


def summarize_latencies(samples_ms: np.ndarray) -> LatencySummary:
    """Summarize measured per-chunk retrieval latencies (milliseconds).

    Percentiles use the empirical (inverted-CDF) definition so small
    sample sets report latencies that actually occurred.
    """
    samples = np.asarray(samples_ms, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("no latency samples to summarize")
    if np.any(samples < 0):
        raise ConfigurationError("latency samples must be >= 0")
    samples = np.sort(samples)
    p50, p95, p99 = np.quantile(
        samples, (0.50, 0.95, 0.99), method="inverted_cdf"
    )
    return LatencySummary(
        count=int(samples.size),
        mean_ms=float(samples.mean()),
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        max_ms=float(samples[-1]),
        samples=samples,
    )
