"""Seed-sensitivity analysis: are the paper's deltas robust?

The paper runs each configuration once with a fixed seed. This module
replicates a configuration across independent workload seeds and
reports the mean and confidence interval of any metric, so claims
like "k=20 lowers the F2 Gini by 7 %" can be checked for seed
robustness rather than read off a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from .._validation import require_int
from ..errors import ConfigurationError
from .stats import mean_confidence_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.fast import FastSimulationConfig, SimulationResult

__all__ = ["MetricEstimate", "replicate", "compare_configs"]

#: A metric maps a simulation result to one number.
Metric = Callable[["SimulationResult"], float]


def _fast_simulation():
    """Late import: repro.experiments imports repro.analysis, so the
    reverse dependency must resolve at call time, not import time."""
    from ..backends.fast import FastSimulation

    return FastSimulation


@dataclass(frozen=True)
class MetricEstimate:
    """Mean and confidence interval of a metric across replications."""

    name: str
    mean: float
    low: float
    high: float
    samples: tuple[float, ...]

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.name} = {self.mean:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] "
            f"(n={len(self.samples)})"
        )


def replicate(config: "FastSimulationConfig", metrics: dict[str, Metric],
              n_replications: int = 5, *, base_seed: int = 1000,
              confidence: float = 0.95) -> dict[str, MetricEstimate]:
    """Run *config* under several workload seeds; estimate each metric."""
    require_int(n_replications, "n_replications")
    if n_replications < 2:
        raise ConfigurationError(
            "sensitivity analysis needs at least 2 replications"
        )
    simulation_cls = _fast_simulation()
    samples: dict[str, list[float]] = {name: [] for name in metrics}
    for replication in range(n_replications):
        seeded = replace(config, workload_seed=base_seed + replication)
        result = simulation_cls(seeded).run()
        for name, metric in metrics.items():
            samples[name].append(metric(result))
    estimates = {}
    for name, values in samples.items():
        mean, low, high = mean_confidence_interval(values, confidence)
        estimates[name] = MetricEstimate(
            name=name, mean=mean, low=low, high=high,
            samples=tuple(values),
        )
    return estimates


def compare_configs(baseline: "FastSimulationConfig",
                    treatment: "FastSimulationConfig",
                    metric: Metric, *, metric_name: str = "metric",
                    n_replications: int = 5,
                    base_seed: int = 1000) -> dict[str, object]:
    """Paired comparison of one metric under two configurations.

    Both configurations see the *same* workload seeds (paired design),
    so the per-seed deltas isolate the configuration effect. Returns
    the per-seed relative reductions and their mean CI — the §VI
    headline quantity with uncertainty attached.
    """
    simulation_cls = _fast_simulation()
    deltas: list[float] = []
    for replication in range(n_replications):
        seed = base_seed + replication
        base_result = simulation_cls(
            replace(baseline, workload_seed=seed)
        ).run()
        treat_result = simulation_cls(
            replace(treatment, workload_seed=seed)
        ).run()
        base_value = metric(base_result)
        if base_value == 0:
            raise ConfigurationError(
                "baseline metric is zero; relative reduction undefined"
            )
        deltas.append((base_value - metric(treat_result)) / base_value)
    mean, low, high = mean_confidence_interval(deltas)
    return {
        "metric": metric_name,
        "reductions": tuple(deltas),
        "mean_reduction": mean,
        "ci": (low, high),
        "robust": bool(low > 0.0 or high < 0.0),
    }
