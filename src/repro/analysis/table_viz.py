"""Routing-table rendering (paper Fig. 3).

Fig. 3 illustrates a node's routing table as its bucket layout: the
owner's address bit by bit, then each bucket with the peers that share
exactly that prefix length. :func:`render_routing_table` reproduces
that diagram as text for any :class:`~repro.kademlia.table.RoutingTable`,
which makes overlay construction auditable by eye — every peer is
printed under the bucket its proximity order dictates, with the shared
prefix visually separated from the first differing bit.
"""

from __future__ import annotations

from ..kademlia.table import RoutingTable

__all__ = ["render_routing_table", "render_bucket_occupancy"]


def render_routing_table(table: RoutingTable, *,
                         max_buckets: int | None = None) -> str:
    """Render *table* in the style of the paper's Fig. 3.

    Each populated bucket lists its peers in binary with the shared
    prefix, the differing bit, and the remainder visually separated
    (``prefix|d|rest``). ``max_buckets`` truncates deep empty space.
    """
    bits = table.space.bits
    owner_bits = table.space.format_address(table.owner)
    lines = [f"routing table of {owner_bits} (={table.owner})"]
    depth = table.neighborhood_depth()
    buckets = table.buckets
    if max_buckets is not None:
        buckets = buckets[:max_buckets]
    for bucket in buckets:
        if len(bucket) == 0:
            continue
        marker = " [neighborhood]" if bucket.index >= depth else ""
        capacity = "∞" if bucket.capacity is None else str(bucket.capacity)
        lines.append(
            f"bucket {bucket.index:>2} "
            f"({len(bucket)}/{capacity}){marker}:"
        )
        for peer in bucket:
            peer_bits = table.space.format_address(peer)
            prefix = peer_bits[: bucket.index]
            differing = peer_bits[bucket.index] if bucket.index < bits else ""
            rest = peer_bits[bucket.index + 1:]
            lines.append(f"    {prefix}|{differing}|{rest}  (={peer})")
    lines.append(
        f"{len(table)} peers, neighborhood depth {depth}"
    )
    return "\n".join(lines)


def render_bucket_occupancy(table: RoutingTable, *, width: int = 30) -> str:
    """One-line-per-bucket occupancy bars (capacity utilisation)."""
    lines = [f"bucket occupancy of node {table.owner}"]
    for bucket in table.buckets:
        if bucket.capacity is None:
            utilisation = 1.0 if len(bucket) else 0.0
            capacity_label = "∞"
        else:
            utilisation = len(bucket) / bucket.capacity
            capacity_label = str(bucket.capacity)
        filled = round(width * min(utilisation, 1.0))
        overflow = "+" if bucket.capacity and len(bucket) > bucket.capacity else ""
        lines.append(
            f"  {bucket.index:>2} |{'#' * filled}{' ' * (width - filled)}| "
            f"{len(bucket)}/{capacity_label}{overflow}"
        )
    return "\n".join(lines)
