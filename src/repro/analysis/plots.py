"""Terminal rendering of the paper's figures.

The benchmark harness runs headless, so the Lorenz curves of Figs. 5
and 6 and the frequency plots of Fig. 4 are rendered as ASCII art:
good enough to eyeball who-dominates-whom and where curves sit
relative to the equality diagonal, with the Gini printed per series.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .._validation import require_int
from ..core.fairness import LorenzCurve
from ..errors import ConfigurationError
from .histogram import Histogram

__all__ = ["ascii_lorenz", "ascii_histogram", "ascii_bars"]

_SERIES_GLYPHS = "*o+x#@%&"


def ascii_lorenz(curves: Mapping[str, LorenzCurve], *, width: int = 61,
                 height: int = 21) -> str:
    """Render Lorenz curves on one canvas with the equality diagonal.

    Each labelled curve gets a glyph; the legend reports its Gini.
    """
    require_int(width, "width")
    require_int(height, "height")
    if width < 11 or height < 6:
        raise ConfigurationError("canvas must be at least 11x6")
    if not curves:
        raise ConfigurationError("ascii_lorenz needs at least one curve")
    canvas = [[" "] * width for _ in range(height)]
    # Equality diagonal.
    for column in range(width):
        row = round((height - 1) * (1 - column / (width - 1)))
        canvas[row][column] = "."
    # Curves.
    for glyph, (label, curve) in zip(_SERIES_GLYPHS, curves.items()):
        xs = np.linspace(0.0, 1.0, width)
        ys = np.interp(xs, curve.population, curve.cumulative)
        for column, y in enumerate(ys):
            row = round((height - 1) * (1 - y))
            canvas[row][column] = glyph
    lines = ["cumulative share of reward"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width + "> population share (poorest first)")
    for glyph, (label, curve) in zip(_SERIES_GLYPHS, curves.items()):
        lines.append(f"  {glyph} {label}: Gini = {curve.gini:.4f}")
    return "\n".join(lines)


def ascii_histogram(hist: Histogram, *, width: int = 50,
                    label: str = "value") -> str:
    """Render a histogram as horizontal bars (one line per bin)."""
    require_int(width, "width")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    peak = int(hist.counts.max()) if hist.n_bins else 0
    lines = [f"{label} distribution ({hist.total} observations)"]
    for low, high, count in hist.rows():
        bar_length = 0 if peak == 0 else round(width * count / peak)
        lines.append(
            f"[{low:>10.0f}, {high:>10.0f}) "
            f"{'#' * bar_length}{' ' * (width - bar_length)} {count}"
        )
    return "\n".join(lines)


def ascii_bars(series: Mapping[str, float], *, width: int = 40,
               fmt: str = "{:.4f}") -> str:
    """Render labelled scalar values as comparable horizontal bars."""
    require_int(width, "width")
    if not series:
        raise ConfigurationError("ascii_bars needs at least one value")
    peak = max(abs(value) for value in series.values())
    label_width = max(len(label) for label in series)
    lines = []
    for label, value in series.items():
        bar_length = 0 if peak == 0 else round(width * abs(value) / peak)
        rendered = fmt.format(value)
        lines.append(
            f"{label:<{label_width}} {'#' * bar_length} {rendered}"
        )
    return "\n".join(lines)
