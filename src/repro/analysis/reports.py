"""Tabular report rendering (Table I and friends).

Experiments produce :class:`Table` objects — ordered headers plus
rows — that render to aligned plain text (for the terminal), Markdown
(for EXPERIMENTS.md) and CSV (for downstream tooling). Keeping the
renderer dumb and the data structured means every benchmark prints
the same rows the paper reports, in a diff-able form.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..errors import ConfigurationError

__all__ = ["Table"]


@dataclass
class Table:
    """An ordered, render-agnostic table."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.headers:
            raise ConfigurationError("a table needs at least one column")

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the header width."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(values)

    def _formatted(self) -> list[list[str]]:
        def render(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        return [[render(v) for v in row] for row in self.rows]

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        body = self._formatted()
        widths = [
            max(len(str(header)), *(len(row[i]) for row in body))
            if body else len(str(header))
            for i, header in enumerate(self.headers)
        ]
        def line(cells: Sequence[str]) -> str:
            return "  ".join(
                str(cell).ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        parts = [self.title, line([str(h) for h in self.headers])]
        parts.append(line(["-" * width for width in widths]))
        parts.extend(line(row) for row in body)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        body = self._formatted()
        parts = [f"### {self.title}", ""]
        parts.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        parts.append("|" + "|".join("---" for _ in self.headers) + "|")
        parts.extend("| " + " | ".join(row) + " |" for row in body)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """CSV rendering (RFC-4180-ish, minimal quoting)."""
        buffer = io.StringIO()

        def cell(value: str) -> str:
            if any(ch in value for ch in ",\"\n"):
                escaped = value.replace('"', '""')
                return f'"{escaped}"'
            return value

        buffer.write(",".join(cell(str(h)) for h in self.headers) + "\n")
        for row in self._formatted():
            buffer.write(",".join(cell(v) for v in row) + "\n")
        return buffer.getvalue()

    def save_csv(self, path: str | Path) -> None:
        """Write the CSV rendering to *path*."""
        Path(path).write_text(self.to_csv())
