"""Analysis and rendering: histograms, Lorenz plots, tables, stats.

Everything the experiment runners use to turn per-node vectors into
the artifacts the paper reports — Fig. 4 frequency histograms,
Figs. 5/6 Lorenz curves (ASCII), Table I rows, and run-level summary
statistics.
"""

from .histogram import Histogram, area_ratio, histogram
from .latency import LatencyDistribution, LatencyModel, latency_distribution
from .plots import ascii_bars, ascii_histogram, ascii_lorenz
from .reports import Table
from .sensitivity import MetricEstimate, compare_configs, replicate
from .stats import (
    Summary,
    bootstrap_gini_interval,
    mean_confidence_interval,
    summarize,
)
from .streaming import QuantileSketch, StreamingAggregator
from .table_viz import render_bucket_occupancy, render_routing_table

__all__ = [
    "Histogram",
    "LatencyDistribution",
    "LatencyModel",
    "MetricEstimate",
    "QuantileSketch",
    "StreamingAggregator",
    "Summary",
    "Table",
    "area_ratio",
    "ascii_bars",
    "ascii_histogram",
    "ascii_lorenz",
    "bootstrap_gini_interval",
    "compare_configs",
    "histogram",
    "latency_distribution",
    "mean_confidence_interval",
    "render_bucket_occupancy",
    "render_routing_table",
    "replicate",
    "summarize",
]
