"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them; they carry enough context in their message
to diagnose a failure without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at object construction time so that misconfiguration
    fails fast rather than corrupting a long simulation run.
    """


class AddressError(ConfigurationError):
    """An overlay address is outside the configured address space."""


class OverlayError(ReproError):
    """The overlay network is malformed or cannot satisfy a request."""


class RoutingError(ReproError):
    """Chunk routing could not make progress toward the target."""

    def __init__(self, message: str, *, origin: int | None = None,
                 target: int | None = None) -> None:
        super().__init__(message)
        self.origin = origin
        self.target = target


class AccountingError(ReproError):
    """A SWAP accounting operation violated an invariant."""


class SettlementError(AccountingError):
    """A settlement (cheque) operation failed, e.g. over-drawing."""


class InsufficientFundsError(SettlementError):
    """A peer attempted to issue a cheque beyond its funds/limits."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ExperimentError(ReproError):
    """An experiment definition or run is invalid."""


class SweepExecutionError(ExperimentError):
    """A sweep could not complete: a point exhausted its retry budget
    under ``--fail-fast``, or the worker pool died more often than the
    bounded-restart budget allows."""


class StoreMergeError(ConfigurationError):
    """Shard sweep stores cannot be merged into one.

    Raised by :meth:`repro.sweeps.store.SweepStore.merge` when shards
    disagree on the spec they were sharded from, or hold irreconcilable
    records for the same point — conditions under which no merged store
    could be byte-identical to a serial run.
    """


class SweepInterrupted(BaseException):
    """SIGINT/SIGTERM arrived mid-sweep (graceful-shutdown signal).

    Deliberately a :class:`BaseException` (like
    :class:`KeyboardInterrupt`): the executor's per-point failure
    handling catches :class:`Exception`, and a shutdown request must
    never be mistaken for a retryable point failure. Carries the signal
    number so the CLI can exit ``128 + signum``.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"sweep interrupted by signal {signum}")
        self.signum = signum


class WorkloadError(ConfigurationError):
    """A workload description is invalid (empty ranges, bad shares...)."""
