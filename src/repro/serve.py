"""The ``repro-swarm serve`` daemon: a long-lived streaming session.

NDJSON requests in (stdin or a file), NDJSON rolling aggregates out.
Each input line is one download request in the wire format of
:func:`~repro.workloads.streams.parse_request_line`; the daemon
batches arrivals into micro-epochs of at most ``--max-batch`` files,
routes each micro-epoch through a persistent
:class:`~repro.backends.fast.StreamSession` (tables built once,
scenario coded patches reused across batches), and absorbs each
micro-epoch's result into a
:class:`~repro.analysis.streaming.StreamingAggregator`. Every
``--flush-interval`` batches it emits a ``snapshot`` line; at end of
input — or on SIGTERM/SIGINT, which flush gracefully — it emits one
``final`` line.

Memory is bounded independent of stream length: one micro-batch of
decoded events, the O(n_nodes) session/aggregator state, and (for
scenario serving) the coded patches. The ``final`` line's metrics are
exactly what a batch run over the same requests reports — the
``--batch`` reference mode materializes the input and runs the
one-shot engine to let CI ``cmp`` the two byte-for-byte.

Convenience: input starting with an NDJSON workload-trace header line
(``repro-swarm trace import-requests`` output) is accepted directly —
the header is validated against the serving overlay and skipped, so
``repro-swarm serve < trace.ndjson`` just works.
"""

from __future__ import annotations

import itertools
import json
import signal
import sys
from typing import IO, Iterable, Iterator

import numpy as np

from .analysis.streaming import StreamingAggregator
from .backends.config import FastSimulationConfig
from .backends.fast import FastSimulation, StreamSession
from .errors import WorkloadError
from .workloads.streams import RequestStream

__all__ = ["run_serve"]


class _Shutdown(Exception):
    """Raised by the signal handler to unwind into the final flush."""


def _install_handlers() -> list:
    """Route SIGTERM/SIGINT into a clean final flush; return originals."""
    def handler(signum, frame):
        raise _Shutdown()

    previous = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous.append((signum, signal.signal(signum, handler)))
        except ValueError:  # pragma: no cover - non-main thread
            pass
    return previous


def _skip_trace_header(lines: Iterable[str] | IO[str],
                       config: FastSimulationConfig) -> Iterator[str]:
    """Pass request lines through, consuming a leading trace header.

    The first line is peeked: an NDJSON workload-trace header is
    validated against the serving overlay and dropped; anything else
    is fed back into the stream untouched.
    """
    iterator = iter(lines)
    first = next(iterator, None)
    if first is None:
        return iter(())
    header = None
    if first.strip():
        try:
            candidate = json.loads(first)
        except json.JSONDecodeError:
            candidate = None
        if isinstance(candidate, dict) and "format" in candidate:
            header = candidate
    if header is None:
        return itertools.chain([first], iterator)
    bits = header.get("bits")
    n_nodes = header.get("n_nodes")
    if bits is not None and bits != config.bits:
        raise WorkloadError(
            f"input trace was recorded in a {bits}-bit space but this "
            f"server runs in {config.bits} bits; serve with --bits "
            f"{bits}"
        )
    if n_nodes is not None and n_nodes != config.n_nodes:
        raise WorkloadError(
            f"input trace was recorded over {n_nodes} nodes but this "
            f"server has {config.n_nodes}; serve with --nodes {n_nodes}"
        )
    return iterator


class _MaterializedWorkload:
    """Workload adapter over an already-validated event list."""

    def __init__(self, events) -> None:
        self._events = list(events)

    def events(self, nodes, space):
        return iter(self._events)


def _emit(out: IO[str], kind: str, payload: dict) -> None:
    """One deterministic NDJSON output line."""
    line = {"type": kind}
    line.update(payload)
    out.write(json.dumps(line, sort_keys=True) + "\n")
    out.flush()


def run_serve(config: FastSimulationConfig,
              lines: Iterable[str] | IO[str], out: IO[str], *,
              max_batch: int = 256, flush_interval: int = 1,
              n_epochs: int | None = None,
              batch_mode: bool = False) -> StreamingAggregator:
    """Serve a request stream; returns the final aggregator.

    *lines* is the NDJSON request source, *out* the NDJSON sink.
    ``n_epochs`` is required when *config* carries a scenario (epoch
    schedules are sized up front). ``batch_mode`` materializes the
    whole input and runs the one-shot engine instead — the reference
    the CI smoke compares the streamed ``final`` line against.
    """
    if flush_interval < 1:
        raise WorkloadError(
            f"flush_interval must be at least 1, got {flush_interval}"
        )
    simulation = FastSimulation(config)
    addresses = simulation.overlay.address_array()
    aggregator = StreamingAggregator(addresses.astype(np.int64))
    stream = RequestStream(
        _skip_trace_header(lines, config), max_batch=max_batch
    )
    batches = stream.batches(addresses, simulation.space)

    if batch_mode:
        events = [event for batch in batches for event in batch]
        if events:
            result = simulation.run(_MaterializedWorkload(events))
            aggregator.absorb(result)
        _emit(out, "final", aggregator.summary())
        return aggregator

    previous = _install_handlers()
    try:
        with StreamSession(simulation, n_epochs=n_epochs) as session:
            try:
                for batch in batches:
                    scratch = simulation.new_result()
                    file_origins, sizes, targets = (
                        simulation.flatten_events(batch)
                    )
                    scratch.files += len(sizes)
                    session.feed(np.repeat(file_origins, sizes),
                                 targets, into=scratch)
                    aggregator.absorb(scratch)
                    if session.epochs_fed % flush_interval == 0:
                        _emit(out, "snapshot", aggregator.snapshot())
            except _Shutdown:
                pass
    finally:
        for signum, original in previous:
            signal.signal(signum, original)
    _emit(out, "final", aggregator.summary())
    return aggregator


def open_input(path: str) -> IO[str]:
    """The request source for a path argument (``-`` means stdin)."""
    if path == "-":
        return sys.stdin
    return open(path, "r", encoding="utf-8")
