"""Network churn: nodes leaving and joining (paper §II).

The paper motivates incentives partly as a tool to "decrease churn
(by staying active in the network)" but keeps its own overlays static.
This module adds the missing dynamic-membership substrate so churn
experiments are possible:

* :class:`ChurnModel` — exponential session/intersession times drive
  leave and (re)join events on a discrete-event scheduler;
* :func:`depart` / :func:`rejoin` — routing-table surgery: a leaving
  node is removed from every peer's buckets; a joining node rebuilds
  its own table from the live population and announces itself to the
  peers that would have selected it (capacity permitting).

The overlay object is mutated in place; the
:class:`~repro.kademlia.routing.Router` then routes over the live
population only. Routes targeting addresses whose storer is offline
surface as fallbacks/misses, which is exactly the availability signal
churn experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import require_positive
from ..engine.des import EventScheduler
from ..errors import ConfigurationError, OverlayError
from ..kademlia.overlay import Overlay

__all__ = ["ChurnModel", "ChurnStats", "depart", "rejoin"]


def depart(overlay: Overlay, node: int) -> int:
    """Remove *node* from every live peer's routing table.

    Returns the number of tables the node was evicted from. The
    node's own table is left intact so a later :func:`rejoin` can
    restore it cheaply (real Swarm nodes keep their table across
    restarts).
    """
    if node not in overlay:
        raise OverlayError(f"no node at address {node}")
    evictions = 0
    for owner in overlay.addresses:
        if owner == node:
            continue
        table = overlay.table(owner)
        if node in table:
            table.remove(node)
            evictions += 1
    return evictions


def rejoin(overlay: Overlay, node: int, live: set[int]) -> int:
    """Re-announce *node* to the live population.

    The node is offered to every live peer's appropriate bucket (the
    bucket may be full — then the peer ignores it, like real Kademlia
    tables do) and the node's own table drops peers that died while it
    was away. Returns the number of tables that accepted the node.
    """
    if node not in overlay:
        raise OverlayError(f"no node at address {node}")
    acceptances = 0
    for owner in live:
        if owner == node:
            continue
        if overlay.table(owner).add(node):
            acceptances += 1
    own_table = overlay.table(node)
    for peer in list(own_table):
        if peer not in live:
            own_table.remove(peer)
    return acceptances


@dataclass
class ChurnStats:
    """Aggregate churn telemetry."""

    departures: int = 0
    rejoins: int = 0
    evictions: int = 0
    acceptances: int = 0

    def __str__(self) -> str:
        return (
            f"{self.departures} departures, {self.rejoins} rejoins, "
            f"{self.evictions} table evictions, "
            f"{self.acceptances} table acceptances"
        )


@dataclass
class ChurnModel:
    """Exponential on/off churn over an overlay.

    Each node alternates online sessions (mean ``mean_session``) and
    offline periods (mean ``mean_downtime``). ``protected_fraction``
    of nodes never churn, modelling stable infrastructure peers.
    Events run on an :class:`EventScheduler`; the live set is exposed
    for workload generators to draw originators from.
    """

    overlay: Overlay
    mean_session: float = 100.0
    mean_downtime: float = 20.0
    protected_fraction: float = 0.2
    seed: int = 99
    stats: ChurnStats = field(default_factory=ChurnStats)

    def __post_init__(self) -> None:
        require_positive(self.mean_session, "mean_session")
        require_positive(self.mean_downtime, "mean_downtime")
        if not 0.0 <= self.protected_fraction <= 1.0:
            raise ConfigurationError(
                f"protected_fraction must be in [0, 1], got "
                f"{self.protected_fraction}"
            )
        self._rng = np.random.default_rng(self.seed)
        addresses = list(self.overlay.addresses)
        n_protected = round(self.protected_fraction * len(addresses))
        protected = self._rng.choice(
            np.asarray(addresses), size=n_protected, replace=False
        )
        self.protected: set[int] = {int(a) for a in protected}
        self.live: set[int] = set(addresses)

    @property
    def live_fraction(self) -> float:
        """Fraction of all nodes currently online."""
        return len(self.live) / len(self.overlay)

    def live_array(self) -> np.ndarray:
        """Online node addresses (for originator sampling)."""
        return np.fromiter(self.live, dtype=np.uint64, count=len(self.live))

    def is_live(self, node: int) -> bool:
        """Whether *node* is currently online."""
        return node in self.live

    def install(self, scheduler: EventScheduler) -> None:
        """Schedule the first departure of every churning node."""
        for node in self.overlay.addresses:
            if node in self.protected:
                continue
            delay = float(self._rng.exponential(self.mean_session))
            scheduler.schedule_in(
                delay, self._make_departure(node), name=f"depart-{node}"
            )

    def _make_departure(self, node: int):
        def handler(scheduler: EventScheduler, time: float) -> None:
            if node not in self.live:
                return
            self.live.discard(node)
            self.stats.departures += 1
            self.stats.evictions += depart(self.overlay, node)
            downtime = float(self._rng.exponential(self.mean_downtime))
            scheduler.schedule_in(
                downtime, self._make_rejoin(node), name=f"rejoin-{node}"
            )
        return handler

    def _make_rejoin(self, node: int):
        def handler(scheduler: EventScheduler, time: float) -> None:
            if node in self.live:
                return
            self.live.add(node)
            self.stats.rejoins += 1
            self.stats.acceptances += rejoin(self.overlay, node, self.live)
            session = float(self._rng.exponential(self.mean_session))
            scheduler.schedule_in(
                session, self._make_departure(node), name=f"depart-{node}"
            )
        return handler
