"""Chunk placement and per-node stores (paper §IV-B).

The paper simplifies placement to "only the node closest to a data
chunk's address is storing that chunk". :class:`PlacementPolicy`
captures that rule (:class:`ClosestNodePlacement`) and the real
Swarm behaviour of replicating within the chunk's neighborhood
(:class:`NeighborhoodPlacement`) used by redundancy extensions.

:class:`ChunkStore` is one node's storage: a capacity-bounded map of
chunk address to payload that distinguishes *pinned* content (the
node is a designated storer) from *cached* content (picked up while
forwarding; evictable, see :mod:`repro.swarm.caching`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from .._validation import require_int
from ..errors import ConfigurationError
from ..kademlia.overlay import Overlay

__all__ = [
    "ChunkStore",
    "PlacementPolicy",
    "ClosestNodePlacement",
    "NeighborhoodPlacement",
]


class ChunkStore:
    """One node's chunk storage.

    ``capacity`` bounds the number of *pinned* chunks (``None`` means
    unbounded, the paper's setting). Cached chunks live in the cache
    policy object owned by the node, not here.
    """

    def __init__(self, owner: int, capacity: int | None = None) -> None:
        if capacity is not None:
            require_int(capacity, "capacity")
            if capacity < 1:
                raise ConfigurationError(
                    f"capacity must be >= 1, got {capacity}"
                )
        self.owner = owner
        self.capacity = capacity
        self._chunks: dict[int, bytes | None] = {}

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, address: object) -> bool:
        return address in self._chunks

    @property
    def is_full(self) -> bool:
        """Whether the pinned-chunk capacity is exhausted."""
        return self.capacity is not None and len(self._chunks) >= self.capacity

    def put(self, address: int, data: bytes | None = None) -> bool:
        """Pin a chunk; return False when the store is full.

        Re-putting an existing address updates its payload and always
        succeeds (idempotent sync).
        """
        if address in self._chunks:
            self._chunks[address] = data
            return True
        if self.is_full:
            return False
        self._chunks[address] = data
        return True

    def get(self, address: int) -> bytes | None:
        """Payload of a stored chunk; raises KeyError when absent."""
        return self._chunks[address]

    def delete(self, address: int) -> None:
        """Unpin a chunk; raises KeyError when absent."""
        del self._chunks[address]

    def addresses(self) -> list[int]:
        """All pinned chunk addresses."""
        return list(self._chunks)


class PlacementPolicy(ABC):
    """Which nodes are responsible for storing a chunk."""

    @abstractmethod
    def storers(self, chunk_address: int, overlay: Overlay) -> list[int]:
        """Node addresses that must pin *chunk_address*, primary first."""

    def primary(self, chunk_address: int, overlay: Overlay) -> int:
        """The single node a retrieval must reach (the XOR-closest)."""
        return self.storers(chunk_address, overlay)[0]


@dataclass(frozen=True)
class ClosestNodePlacement(PlacementPolicy):
    """The paper's rule: only the XOR-closest node stores the chunk."""

    def storers(self, chunk_address: int, overlay: Overlay) -> list[int]:
        return [overlay.closest_node(chunk_address)]


@dataclass(frozen=True)
class NeighborhoodPlacement(PlacementPolicy):
    """Real Swarm: the chunk's whole neighborhood pins it.

    The *replicas* XOR-closest nodes store the chunk, the closest
    first. Used by availability extensions; retrieval still routes
    toward the closest.
    """

    replicas: int = 4

    def __post_init__(self) -> None:
        require_int(self.replicas, "replicas")
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )

    def storers(self, chunk_address: int, overlay: Overlay) -> list[int]:
        space = overlay.space
        space.validate(chunk_address, name="chunk_address")
        ordered = space.sort_by_distance(chunk_address, overlay.addresses)
        return ordered[: self.replicas]
