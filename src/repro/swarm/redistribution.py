"""The storage-incentive redistribution game (paper §V's missing half).

Swarm pays storage providers through a periodic lottery (the
"redistribution game"): every round an *anchor* address is drawn; the
nodes whose neighborhood covers the anchor apply with a proof of
their stored *reserve*; honest applicants form the truth set and one
winner, sampled **stake-weighted**, takes the round's pot of
collected postage rent.

This module implements that loop over this library's overlays and
chunk stores:

* :class:`StakeRegistry` — per-node stake deposits (required to play);
* :class:`RedistributionGame` — anchor sampling, eligibility by
  proximity, reserve commitment checks against the actual stores,
  stake-weighted winner selection, pot payout, and per-node reward
  telemetry that plugs straight into the paper's F2 fairness metric.

Cheating (committing to chunks the node does not hold) is detected by
comparing commitments against the node's true reserve; cheaters are
*frozen* for a number of rounds, mirroring Swarm's penalty.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .._validation import require_int, require_positive
from ..errors import ConfigurationError
from ..kademlia.overlay import Overlay
from .node import SwarmNode
from .postage import PostageOffice

__all__ = ["StakeRegistry", "RoundOutcome", "RedistributionGame"]


class StakeRegistry:
    """Stake deposits gating participation in the game."""

    def __init__(self, minimum_stake: float = 1.0) -> None:
        require_positive(minimum_stake, "minimum_stake")
        self.minimum_stake = minimum_stake
        self._stakes: dict[int, float] = {}

    def deposit(self, node: int, amount: float) -> None:
        """Add stake for *node*."""
        require_positive(amount, "amount")
        self._stakes[node] = self._stakes.get(node, 0.0) + amount

    def stake_of(self, node: int) -> float:
        """Current stake of *node* (0 when never deposited)."""
        return self._stakes.get(node, 0.0)

    def eligible(self, node: int) -> bool:
        """Whether *node* staked at least the minimum."""
        return self.stake_of(node) >= self.minimum_stake

    def slash(self, node: int, fraction: float) -> float:
        """Burn a fraction of a node's stake; returns the amount."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1], got {fraction}"
            )
        current = self.stake_of(node)
        burned = current * fraction
        self._stakes[node] = current - burned
        return burned


@dataclass(frozen=True)
class RoundOutcome:
    """What happened in one redistribution round."""

    round_index: int
    anchor: int
    applicants: tuple[int, ...]
    truth_players: tuple[int, ...]
    cheaters: tuple[int, ...]
    winner: int | None
    reward: float


@dataclass
class RedistributionGame:
    """The periodic storage-reward lottery.

    Parameters
    ----------
    overlay:
        The network's overlay (defines neighborhoods).
    nodes:
        Address -> :class:`SwarmNode`; the stores are the ground truth
        reserves.
    office:
        The postage office whose rent pot funds the rewards.
    stakes:
        Stake registry gating participation.
    neighborhood_size:
        How many XOR-closest nodes to the anchor may apply.
    freeze_rounds:
        Penalty applied to detected cheaters.
    """

    overlay: Overlay
    nodes: dict[int, SwarmNode]
    office: PostageOffice
    stakes: StakeRegistry
    neighborhood_size: int = 4
    freeze_rounds: int = 3
    seed: int = 77
    rewards: defaultdict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    history: list[RoundOutcome] = field(default_factory=list)
    _frozen_until: dict[int, int] = field(default_factory=dict)
    _cheaters: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        require_int(self.neighborhood_size, "neighborhood_size")
        require_int(self.freeze_rounds, "freeze_rounds")
        if self.neighborhood_size < 1:
            raise ConfigurationError(
                "neighborhood_size must be >= 1, got "
                f"{self.neighborhood_size}"
            )
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Cheating control (for misbehaviour experiments)

    def mark_cheater(self, node: int) -> None:
        """Make *node* overstate its reserve in every application."""
        self._cheaters.add(node)

    def is_frozen(self, node: int, round_index: int) -> bool:
        """Whether *node* is serving a cheating penalty."""
        return self._frozen_until.get(node, -1) >= round_index

    # ------------------------------------------------------------------
    # The game

    def play_round(self, round_index: int) -> RoundOutcome:
        """Run one round: anchor, applications, winner, payout."""
        anchor = int(self._rng.integers(0, self.overlay.space.size))
        ordered = self.overlay.space.sort_by_distance(
            anchor, self.overlay.addresses
        )
        neighborhood = ordered[: self.neighborhood_size]
        applicants = tuple(
            node for node in neighborhood
            if self.stakes.eligible(node)
            and not self.is_frozen(node, round_index)
        )
        # Honest commitment = true reserve size; cheaters overstate.
        commitments: dict[int, int] = {}
        for node in applicants:
            truth = len(self.nodes[node].store)
            if node in self._cheaters:
                commitments[node] = truth + 1_000_000
            else:
                commitments[node] = truth
        # The truth is the commitment the honest majority agrees on;
        # with stores synced within a neighborhood, honest nodes agree
        # and overstaters stick out. A node whose commitment exceeds
        # its verifiable reserve is a detected cheater.
        cheaters = tuple(
            node for node in applicants
            if commitments[node] > len(self.nodes[node].store)
        )
        for node in cheaters:
            self._frozen_until[node] = round_index + self.freeze_rounds
            self.stakes.slash(node, 0.5)
        truth_players = tuple(
            node for node in applicants if node not in cheaters
        )
        winner: int | None = None
        reward = 0.0
        if truth_players:
            weights = np.array(
                [self.stakes.stake_of(node) for node in truth_players],
                dtype=np.float64,
            )
            total = weights.sum()
            if total > 0:
                winner = int(
                    self._rng.choice(truth_players, p=weights / total)
                )
                reward = self.office.pay_out(self.office.pot)
                self.rewards[winner] += reward
        outcome = RoundOutcome(
            round_index=round_index,
            anchor=anchor,
            applicants=applicants,
            truth_players=truth_players,
            cheaters=cheaters,
            winner=winner,
            reward=reward,
        )
        self.history.append(outcome)
        return outcome

    def play_rounds(self, count: int, *,
                    collect_rent: bool = True) -> list[RoundOutcome]:
        """Run *count* rounds, optionally collecting rent before each."""
        require_int(count, "count")
        outcomes = []
        for round_index in range(count):
            if collect_rent:
                self.office.collect_rent()
            outcomes.append(self.play_round(round_index))
        return outcomes

    # ------------------------------------------------------------------
    # Evaluation views

    def reward_vector(self, nodes: list[int]) -> list[float]:
        """Storage rewards per node, aligned with *nodes* (F2 input)."""
        return [self.rewards[node] for node in nodes]

    def win_counts(self) -> dict[int, int]:
        """Rounds won per node."""
        counts: dict[int, int] = {}
        for outcome in self.history:
            if outcome.winner is not None:
                counts[outcome.winner] = counts.get(outcome.winner, 0) + 1
        return counts
