"""Garbage collection of unfunded chunks (closing the postage loop).

In Swarm, storage is only promised while it is paid for: a chunk whose
postage batch has expired loses its claim and becomes evictable. This
module implements that reclamation over this library's stores:

* :class:`StampIndex` — remembers which batch stamped each stored
  chunk (the simulation-side stand-in for the stamp attached to every
  chunk in the wire protocol);
* :func:`collect_garbage` — evicts, from every node's store, chunks
  whose batch is expired or unknown, returning per-node reclaim
  counts.

Together with :mod:`repro.swarm.postage` (rent) and
:mod:`repro.swarm.redistribution` (rewards), this completes the
storage-incentive lifecycle: pay → store → earn → stop paying → evict.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .node import SwarmNode
from .postage import PostageOffice, PostageStamp

__all__ = ["StampIndex", "GarbageReport", "collect_garbage"]


class StampIndex:
    """Which batch funds each stored chunk address."""

    def __init__(self) -> None:
        self._by_chunk: dict[int, int] = {}

    def record(self, stamp: PostageStamp) -> None:
        """Associate a chunk with the batch that stamped it.

        Re-stamping with a different batch transfers the funding claim
        (the newest valid stamp wins, as in Swarm).
        """
        self._by_chunk[stamp.chunk_address] = stamp.batch_id

    def batch_of(self, chunk_address: int) -> int | None:
        """The funding batch of a chunk, or None if never stamped."""
        return self._by_chunk.get(chunk_address)

    def __len__(self) -> int:
        return len(self._by_chunk)


@dataclass(frozen=True)
class GarbageReport:
    """Outcome of one collection pass."""

    evicted_per_node: dict[int, int]
    kept: int

    @property
    def evicted(self) -> int:
        """Total chunks reclaimed."""
        return sum(self.evicted_per_node.values())


def collect_garbage(nodes: dict[int, SwarmNode], office: PostageOffice,
                    index: StampIndex,
                    *, evict_unstamped: bool = True) -> GarbageReport:
    """Evict chunks whose funding lapsed from every store.

    A chunk is kept only when its recorded batch exists and has not
    expired. ``evict_unstamped=False`` grandfathers chunks that were
    stored before postage existed (useful when enabling the stamp
    economy mid-simulation).
    """
    if not nodes:
        raise ConfigurationError("collect_garbage needs at least one node")
    evicted: defaultdict[int, int] = defaultdict(int)
    kept = 0
    for address, node in nodes.items():
        for chunk in list(node.store.addresses()):
            batch_id = index.batch_of(chunk)
            if batch_id is None:
                if evict_unstamped:
                    node.store.delete(chunk)
                    evicted[address] += 1
                else:
                    kept += 1
                continue
            try:
                batch = office.batch(batch_id)
            except Exception:
                node.store.delete(chunk)
                evicted[address] += 1
                continue
            if batch.expired:
                node.store.delete(chunk)
                evicted[address] += 1
            else:
                kept += 1
    return GarbageReport(evicted_per_node=dict(evicted), kept=kept)
