"""Chunks and content addressing (paper §III-A).

All content in Swarm is split into fixed-size 4KB chunks addressed on
the same space as nodes, which is what makes "the node closest to the
chunk" meaningful. The paper's simulation abstracts chunk payloads
away and draws chunk addresses uniformly at random; this module
supports both that abstraction (:func:`random_file`) and real
content addressing (:meth:`Chunk.from_data`, address = truncated
SHA-256 of the payload) so examples can store and verify actual bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .._validation import require_int, require_positive
from ..errors import ConfigurationError
from ..kademlia.address import AddressSpace

__all__ = ["CHUNK_SIZE", "Chunk", "FileManifest", "split_content", "random_file"]

#: Swarm's fixed chunk payload size in bytes (paper §III-A).
CHUNK_SIZE = 4096


@dataclass(frozen=True)
class Chunk:
    """A content chunk: an overlay address plus an optional payload.

    The paper's experiments only need addresses; payloads are carried
    when examples exercise real store/retrieve round trips.
    """

    address: int
    data: bytes | None = None

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) > CHUNK_SIZE:
            raise ConfigurationError(
                f"chunk payload of {len(self.data)} bytes exceeds the "
                f"{CHUNK_SIZE}-byte chunk size"
            )

    @classmethod
    def from_data(cls, data: bytes, space: AddressSpace) -> "Chunk":
        """Content-address *data*: truncated SHA-256 onto the space.

        Real Swarm uses a 256-bit BMT hash; the simulation's spaces
        are narrower, so the digest is truncated to ``space.bits``.
        """
        if len(data) > CHUNK_SIZE:
            raise ConfigurationError(
                f"chunk payload of {len(data)} bytes exceeds the "
                f"{CHUNK_SIZE}-byte chunk size"
            )
        digest = hashlib.sha256(data).digest()
        address = int.from_bytes(digest, "big") % space.size
        return cls(address=address, data=data)

    @property
    def size(self) -> int:
        """Payload size in bytes (the full 4KB when data is abstract)."""
        return len(self.data) if self.data is not None else CHUNK_SIZE


@dataclass(frozen=True)
class FileManifest:
    """A file as the ordered list of its chunks' addresses.

    Downloading a file means retrieving every chunk in the manifest
    (paper §III-A: "a peer must download all of the file's data chunks
    spread throughout the network").
    """

    file_id: int
    chunk_addresses: tuple[int, ...]
    chunks: tuple[Chunk, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if len(self.chunk_addresses) == 0:
            raise ConfigurationError("a file must have at least one chunk")
        if self.chunks and len(self.chunks) != len(self.chunk_addresses):
            raise ConfigurationError(
                "chunks and chunk_addresses must align when both given"
            )

    def __len__(self) -> int:
        return len(self.chunk_addresses)

    @property
    def total_bytes(self) -> int:
        """Nominal file size (chunk count times the 4KB chunk size)."""
        return len(self.chunk_addresses) * CHUNK_SIZE


def split_content(file_id: int, content: bytes,
                  space: AddressSpace) -> FileManifest:
    """Split real bytes into content-addressed 4KB chunks."""
    if len(content) == 0:
        raise ConfigurationError("cannot split empty content")
    chunks = tuple(
        Chunk.from_data(content[offset:offset + CHUNK_SIZE], space)
        for offset in range(0, len(content), CHUNK_SIZE)
    )
    return FileManifest(
        file_id=file_id,
        chunk_addresses=tuple(chunk.address for chunk in chunks),
        chunks=chunks,
    )


def random_file(file_id: int, n_chunks: int, space: AddressSpace,
                rng: np.random.Generator) -> FileManifest:
    """The paper's abstract file: *n_chunks* uniform chunk addresses.

    Addresses are drawn with replacement from the full space, exactly
    as §IV-B describes ("addresses of chunks are chosen uniformly at
    random from the complete address space").
    """
    require_int(n_chunks, "n_chunks")
    require_positive(n_chunks, "n_chunks")
    addresses = tuple(
        int(a) for a in rng.integers(0, space.size, size=n_chunks)
    )
    return FileManifest(file_id=file_id, chunk_addresses=addresses)
