"""Neighborhood synchronization (Swarm's pull-sync protocol).

Swarm keeps content available despite churn by having every node
continuously *pull-sync* from its neighbors: a node fetches the chunks
whose addresses fall in its area of responsibility from the peers that
already hold them. The paper's static experiments never need this,
but the churn extension does — a node that was offline during uploads
is missing chunks it is now the closest node for.

:func:`plan_sync` computes what a node is missing; :func:`pull_sync`
transfers it, accounting the bandwidth through the incentive
mechanism like any other traffic (synced chunks are forwarded chunks
— neighbors are paid for them under the all-hops policy, or
accumulate SWAP debt under the default policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.incentives import IncentiveMechanism
from ..errors import OverlayError
from ..kademlia.overlay import Overlay
from ..kademlia.routing import Route
from .node import SwarmNode
from .storage import PlacementPolicy

__all__ = ["SyncPlan", "plan_sync", "pull_sync"]


@dataclass(frozen=True)
class SyncPlan:
    """What one node must fetch, and from whom."""

    node: int
    #: chunk address -> neighbor holding it
    transfers: dict[int, int]

    @property
    def chunks_needed(self) -> int:
        """Number of chunks the node is missing."""
        return len(self.transfers)

    def sources(self) -> set[int]:
        """Distinct neighbors that will serve the sync."""
        return set(self.transfers.values())


def plan_sync(overlay: Overlay, nodes: dict[int, SwarmNode],
              node: int, placement: PlacementPolicy) -> SyncPlan:
    """Compute the chunks *node* should store but does not.

    Scans every other node's store for chunks whose placement makes
    *node* responsible (primary or replica) and that *node* is
    missing. O(total stored chunks); fine at simulation scale.
    """
    if node not in nodes:
        raise OverlayError(f"no node at address {node}")
    target = nodes[node]
    transfers: dict[int, int] = {}
    for holder_address, holder in nodes.items():
        if holder_address == node:
            continue
        for chunk in holder.store.addresses():
            if chunk in target.store or chunk in transfers:
                continue
            if node in placement.storers(chunk, overlay):
                transfers[chunk] = holder_address
    return SyncPlan(node=node, transfers=transfers)


def pull_sync(overlay: Overlay, nodes: dict[int, SwarmNode], node: int,
              placement: PlacementPolicy,
              incentives: IncentiveMechanism | None = None) -> SyncPlan:
    """Execute a sync: fetch every missing chunk from a neighbor.

    Each transfer is modelled as a one-hop retrieval (neighbors are
    directly connected within the neighborhood) and pushed through
    *incentives* when given, so sync bandwidth shows up in the same
    fairness accounting as retrieval bandwidth.
    """
    plan = plan_sync(overlay, nodes, node, placement)
    target = nodes[node]
    for chunk, source in plan.transfers.items():
        payload = nodes[source].store.get(chunk)
        target.store.put(chunk, payload)
        if incentives is not None:
            incentives.process_route(
                Route(target=chunk, path=(node, source))
            )
    return plan
