"""Postage stamps: who pays for storage (paper §V, Swarm's design).

The paper simulates only bandwidth incentives and names storage
incentives as the missing half ("having not just the bandwidth
incentives simulated but also the storage incentives appears needed
to complete the simulation"). This module implements the *payer* side
of Swarm's storage incentives, postage stamps:

* an uploader buys a :class:`PostageBatch` — a prepaid balance with a
  *depth* bounding how many chunks it can stamp (``2**depth``);
* every uploaded chunk carries a :class:`PostageStamp` issued from a
  batch; storers only keep stamped chunks;
* batches pay **rent**: each accounting round drains
  ``rent_per_chunk_round`` per issued stamp from the batch balance;
  an empty batch *expires* and its chunks become garbage-collectable.

The drained rent accumulates in a pot that the redistribution game
(:mod:`repro.swarm.redistribution`) pays back out to storage
providers — closing the storage-incentive loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .._validation import require_int, require_positive
from ..errors import ConfigurationError, ReproError

__all__ = ["PostageError", "PostageStamp", "PostageBatch", "PostageOffice"]


class PostageError(ReproError):
    """A stamping operation violated batch rules."""


@dataclass(frozen=True)
class PostageStamp:
    """Proof that storage for one chunk was prepaid from a batch."""

    batch_id: int
    chunk_address: int
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PostageError(f"stamp index must be >= 0, got {self.index}")


class PostageBatch:
    """A prepaid storage allowance.

    Parameters
    ----------
    batch_id:
        Unique identifier (assigned by the :class:`PostageOffice`).
    owner:
        Overlay address of the purchaser.
    value:
        Prepaid balance in accounting units.
    depth:
        Capacity exponent: the batch can stamp at most ``2**depth``
        chunks (Swarm's bucket-depth capacity rule, simplified to a
        global count).
    """

    def __init__(self, batch_id: int, owner: int, value: float,
                 depth: int) -> None:
        require_positive(value, "value")
        require_int(depth, "depth")
        if not 0 <= depth <= 40:
            raise ConfigurationError(
                f"depth must be in [0, 40], got {depth}"
            )
        self.batch_id = batch_id
        self.owner = owner
        self.balance = value
        self.depth = depth
        self._issued: dict[int, int] = {}  # chunk address -> stamp index
        self._counter = itertools.count()

    @property
    def capacity(self) -> int:
        """Maximum number of stamps this batch can ever issue."""
        return 1 << self.depth

    @property
    def issued(self) -> int:
        """Stamps issued so far."""
        return len(self._issued)

    @property
    def expired(self) -> bool:
        """Whether the balance has been fully consumed by rent."""
        return self.balance <= 0

    def stamp(self, chunk_address: int) -> PostageStamp:
        """Issue a stamp for *chunk_address*.

        Re-stamping the same address returns a stamp with the original
        index (idempotent, like re-uploading the same content).
        """
        if self.expired:
            raise PostageError(
                f"batch {self.batch_id} has expired (balance 0)"
            )
        existing = self._issued.get(chunk_address)
        if existing is not None:
            return PostageStamp(self.batch_id, chunk_address, existing)
        if self.issued >= self.capacity:
            raise PostageError(
                f"batch {self.batch_id} is full "
                f"({self.capacity} stamps at depth {self.depth})"
            )
        index = next(self._counter)
        self._issued[chunk_address] = index
        return PostageStamp(self.batch_id, chunk_address, index)

    def covers(self, stamp: PostageStamp) -> bool:
        """Whether *stamp* was genuinely issued by this batch."""
        return (
            stamp.batch_id == self.batch_id
            and self._issued.get(stamp.chunk_address) == stamp.index
        )

    def charge_rent(self, rent_per_chunk: float) -> float:
        """Drain one round of rent; returns the amount collected.

        Rent is proportional to issued stamps and capped by the
        remaining balance (the final round collects the remainder and
        expires the batch).
        """
        if rent_per_chunk < 0:
            raise ConfigurationError(
                f"rent_per_chunk must be >= 0, got {rent_per_chunk}"
            )
        due = rent_per_chunk * self.issued
        collected = min(due, self.balance)
        self.balance -= collected
        return collected


@dataclass
class PostageOffice:
    """Registry of batches plus the rent pot.

    The office sells batches, validates stamps, and runs the periodic
    rent collection whose proceeds fund the redistribution game.
    """

    rent_per_chunk_round: float = 0.001
    pot: float = 0.0
    rounds_collected: int = 0
    _batches: dict[int, PostageBatch] = field(default_factory=dict)
    _next_id: itertools.count = field(default_factory=itertools.count)

    def __post_init__(self) -> None:
        if self.rent_per_chunk_round < 0:
            raise ConfigurationError(
                "rent_per_chunk_round must be >= 0, got "
                f"{self.rent_per_chunk_round}"
            )

    def buy_batch(self, owner: int, value: float,
                  depth: int) -> PostageBatch:
        """Sell a new batch to *owner*."""
        batch = PostageBatch(next(self._next_id), owner, value, depth)
        self._batches[batch.batch_id] = batch
        return batch

    def batch(self, batch_id: int) -> PostageBatch:
        """Look up a batch; raises :class:`PostageError` if unknown."""
        try:
            return self._batches[batch_id]
        except KeyError:
            raise PostageError(f"unknown batch {batch_id}") from None

    def batches(self) -> list[PostageBatch]:
        """All batches ever sold."""
        return list(self._batches.values())

    def validate(self, stamp: PostageStamp) -> bool:
        """Whether *stamp* is genuine and its batch is still funded."""
        batch = self._batches.get(stamp.batch_id)
        if batch is None:
            return False
        return batch.covers(stamp) and not batch.expired

    def collect_rent(self) -> float:
        """Run one rent round over every live batch; returns the take."""
        collected = sum(
            batch.charge_rent(self.rent_per_chunk_round)
            for batch in self._batches.values()
            if not batch.expired
        )
        self.pot += collected
        self.rounds_collected += 1
        return collected

    def pay_out(self, amount: float) -> float:
        """Withdraw up to *amount* from the pot (redistribution game)."""
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        paid = min(amount, self.pot)
        self.pot -= paid
        return paid
