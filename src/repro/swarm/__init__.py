"""Reference Swarm network model (paper §III).

Chunks and content addressing, per-node stores and placement,
forwarding caches, hop-by-hop retrieval, and the
:class:`~repro.swarm.network.SwarmNetwork` facade combining the
overlay substrate with the SWAP incentive mechanism.
"""

from .caching import CachePolicy, LFUCache, LRUCache, NoCache, make_cache
from .chunk import CHUNK_SIZE, Chunk, FileManifest, random_file, split_content
from .churn import ChurnModel, ChurnStats, depart, rejoin
from .garbage import GarbageReport, StampIndex, collect_garbage
from .postage import PostageBatch, PostageError, PostageOffice, PostageStamp
from .redistribution import RedistributionGame, RoundOutcome, StakeRegistry
from .network import DownloadReceipt, SwarmNetwork, SwarmNetworkConfig
from .node import SwarmNode
from .retrieval import Retrieval, RetrievalProtocol, RetrievalStats
from .storage import (
    ChunkStore,
    ClosestNodePlacement,
    NeighborhoodPlacement,
    PlacementPolicy,
)
from .sync import SyncPlan, plan_sync, pull_sync

__all__ = [
    "CHUNK_SIZE",
    "CachePolicy",
    "Chunk",
    "ChunkStore",
    "ChurnModel",
    "ChurnStats",
    "ClosestNodePlacement",
    "DownloadReceipt",
    "FileManifest",
    "GarbageReport",
    "StampIndex",
    "collect_garbage",
    "LFUCache",
    "LRUCache",
    "NeighborhoodPlacement",
    "NoCache",
    "PlacementPolicy",
    "PostageBatch",
    "PostageError",
    "PostageOffice",
    "PostageStamp",
    "RedistributionGame",
    "Retrieval",
    "RetrievalProtocol",
    "RetrievalStats",
    "RoundOutcome",
    "StakeRegistry",
    "SwarmNetwork",
    "SwarmNetworkConfig",
    "SwarmNode",
    "SyncPlan",
    "depart",
    "make_cache",
    "plan_sync",
    "pull_sync",
    "random_file",
    "rejoin",
    "split_content",
]
