"""A Swarm node: overlay identity, storage, cache (paper §III).

:class:`SwarmNode` bundles what one peer owns — its routing table
(shared with the overlay), its pinned-chunk store, and its forwarding
cache. Accounting state lives in the network-wide
:class:`~repro.core.swap.SwapLedger` rather than per node, mirroring
how the simulation observes the whole system.
"""

from __future__ import annotations

from ..kademlia.table import RoutingTable
from .caching import CachePolicy, NoCache
from .storage import ChunkStore

__all__ = ["SwarmNode"]


class SwarmNode:
    """One peer of the Swarm network.

    Parameters
    ----------
    address:
        The node's overlay address.
    table:
        The node's routing table (built by the overlay).
    store_capacity:
        Bound on pinned chunks (``None`` = unbounded, paper setting).
    cache:
        Forwarding-cache policy; defaults to no caching as in the
        paper's main experiments.
    """

    def __init__(self, address: int, table: RoutingTable,
                 store_capacity: int | None = None,
                 cache: CachePolicy | None = None) -> None:
        self.address = address
        self.table = table
        self.store = ChunkStore(address, store_capacity)
        self.cache = cache if cache is not None else NoCache()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwarmNode(address={self.address}, stored={len(self.store)}, "
            f"cached={len(self.cache)}, peers={len(self.table)})"
        )

    def has_chunk(self, address: int) -> bool:
        """Whether this node can serve *address* from store or cache."""
        return address in self.store or address in self.cache

    def serve_source(self, address: int) -> str:
        """Where a hit would be served from: 'store', 'cache' or 'miss'."""
        if address in self.store:
            return "store"
        if address in self.cache:
            self.cache.touch(address)
            return "cache"
        return "miss"
