"""Chunk retrieval over forwarding Kademlia (paper §III-A, Fig. 1).

The retrieval protocol walks the request hop by hop: each node first
checks its own store and forwarding cache; on a miss it forwards to
the known peer XOR-closest to the chunk. The chunk then flows back
along the same path, and — when caching is enabled — every node on the
return path admits the chunk into its cache, which is how popular
content gets served closer to requesters (paper §V).

This is the step-wise sibling of :class:`~repro.kademlia.routing.Router`:
the Router resolves the geometric path only, while
:class:`RetrievalProtocol` additionally honours stores and caches, so
a path can terminate early at any node holding the chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import RoutingError
from ..kademlia.overlay import Overlay
from ..kademlia.routing import Route
from .node import SwarmNode

__all__ = ["Retrieval", "RetrievalStats", "RetrievalProtocol", "ServiceGate"]

#: Decides whether *provider* will serve *consumer* a given chunk.
#: Returning False models SWAP's disconnect threshold: "If the balance
#: reaches a certain limit, nodes stop serving each other's requests
#: unless debt is settled" (paper §III-B).
ServiceGate = Callable[[int, int, int], bool]


@dataclass(frozen=True)
class Retrieval:
    """Outcome of one chunk retrieval.

    ``route`` is the path actually travelled (possibly truncated by a
    cache hit); ``source`` records what served the chunk: ``'local'``
    (originator already had it), ``'store'`` (the designated storer),
    or ``'cache'`` (a forwarding cache along the way).
    """

    route: Route
    source: str

    @property
    def served_by(self) -> int:
        """The node that produced the chunk payload."""
        return self.route.storer


@dataclass
class RetrievalStats:
    """Aggregate retrieval telemetry."""

    retrievals: int = 0
    local_hits: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    total_hops: int = 0
    hops_saved_by_cache: int = 0
    refusals: int = 0

    def record(self, retrieval: Retrieval, full_hops: int) -> None:
        """Fold one retrieval in; *full_hops* is the cache-less path length."""
        self.retrievals += 1
        self.total_hops += retrieval.route.hops
        if retrieval.source == "local":
            self.local_hits += 1
        elif retrieval.source == "cache":
            self.cache_hits += 1
            self.hops_saved_by_cache += full_hops - retrieval.route.hops
        else:
            self.store_hits += 1

    @property
    def mean_hops(self) -> float:
        """Average hops per retrieval."""
        if self.retrievals == 0:
            return 0.0
        return self.total_hops / self.retrievals


class RetrievalProtocol:
    """Hop-by-hop chunk retrieval with store/cache awareness.

    Parameters
    ----------
    overlay:
        The overlay whose tables drive forwarding.
    nodes:
        Mapping of node address to :class:`SwarmNode`.
    cache_on_path:
        When True, every node that forwarded a chunk admits it into
        its cache as the data flows back (the Swarm behaviour); the
        originator's own cache is not populated — it keeps the chunk
        by virtue of having downloaded it.
    implicit_storage:
        When True, the designated storer is assumed to hold every
        chunk without an explicit upload. This is the paper's §IV-B
        abstraction ("we assume that only the node closest to a data
        chunk's address is storing that chunk"); with False, a miss at
        the storer raises.
    service_gate:
        Optional ``(provider, consumer, chunk) -> bool`` implementing
        SWAP's disconnect rule. A gated peer is skipped in favour of
        the next-closest willing peer; if every usable peer (and the
        storer itself) refuses, the retrieval raises — an indebted
        consumer is cut off exactly as §III-B describes.
    strict:
        Raise instead of using the neighborhood hand-off on a greedy
        stall (see Router).
    """

    def __init__(self, overlay: Overlay, nodes: Mapping[int, SwarmNode],
                 *, cache_on_path: bool = False,
                 implicit_storage: bool = False,
                 service_gate: ServiceGate | None = None,
                 strict: bool = False) -> None:
        self.overlay = overlay
        self.nodes = nodes
        self.cache_on_path = cache_on_path
        self.implicit_storage = implicit_storage
        self.service_gate = service_gate
        self.strict = strict
        self.stats = RetrievalStats()

    def _next_willing_hop(self, current: int, chunk_address: int) -> int | None:
        """The closest strictly-closer peer that will serve *current*.

        Without a gate this is the plain greedy choice. With a gate,
        refusing peers are skipped (counted) and the next-closest
        strictly-closer peer is tried — real Swarm nodes route around
        peers that cut them off.
        """
        table = self.overlay.table(current)
        if self.service_gate is None:
            candidate = table.closest_peer(chunk_address)
            if (candidate ^ chunk_address) < (current ^ chunk_address):
                return candidate
            return None
        for candidate in table.closest_peers(chunk_address, len(table)):
            if (candidate ^ chunk_address) >= (current ^ chunk_address):
                return None  # sorted by distance: no closer peer left
            if self.service_gate(candidate, current, chunk_address):
                return candidate
            self.stats.refusals += 1
        return None

    def retrieve(self, originator: int, chunk_address: int) -> Retrieval:
        """Fetch one chunk for *originator*; returns the travelled path."""
        space = self.overlay.space
        space.validate(chunk_address, name="chunk_address")
        if originator not in self.nodes:
            raise RoutingError(
                f"originator {originator} is not a network node",
                origin=originator, target=chunk_address,
            )
        storer = self.overlay.closest_node(chunk_address)
        path = [originator]
        current = originator
        fallback = False
        source = "store"
        origin_node = self.nodes[originator]
        if origin_node.has_chunk(chunk_address) or (
            self.implicit_storage and originator == storer
        ):
            retrieval = Retrieval(
                route=Route(target=chunk_address, path=(originator,)),
                source="local",
            )
            self.stats.record(retrieval, full_hops=0)
            return retrieval

        for _ in range(space.bits + 1):
            if current != originator:
                holder = self.nodes[current]
                hit = holder.serve_source(chunk_address)
                if hit != "miss":
                    source = "store" if hit == "store" else "cache"
                    break
            if current == storer:
                if self.implicit_storage:
                    source = "store"
                    break
                # The designated storer must hold the chunk; a miss here
                # means the content was never uploaded.
                raise RoutingError(
                    f"storer {storer} does not hold chunk {chunk_address}; "
                    "was the content uploaded?",
                    origin=originator, target=chunk_address,
                )
            candidate = self._next_willing_hop(current, chunk_address)
            if candidate is not None:
                path.append(candidate)
                current = candidate
                continue
            if self.strict:
                raise RoutingError(
                    f"greedy retrieval stalled at {current} before reaching "
                    f"storer {storer}",
                    origin=originator, target=chunk_address,
                )
            if self.service_gate is not None and not self.service_gate(
                storer, current, chunk_address
            ):
                # Every closer peer refused and so does the storer:
                # the consumer is cut off until it settles (paper
                # §III-B "nodes stop serving each other's requests").
                self.stats.refusals += 1
                raise RoutingError(
                    f"service refused: node {current} is cut off from "
                    f"chunk {chunk_address} (disconnect threshold)",
                    origin=originator, target=chunk_address,
                )
            path.append(storer)
            current = storer
            fallback = True
        else:  # pragma: no cover - defended by the progress invariant
            raise RoutingError(
                f"retrieval of {chunk_address} exceeded {space.bits} hops",
                origin=originator, target=chunk_address,
            )

        route = Route(
            target=chunk_address, path=tuple(path), fallback=fallback
        )
        if self.cache_on_path:
            # Chunk flows back along the path; each forwarder (not the
            # originator, not the server) admits it.
            for node_address in path[1:-1]:
                self.nodes[node_address].cache.admit(chunk_address)
        full_hops = self._full_path_hops(originator, chunk_address, route)
        retrieval = Retrieval(route=route, source=source)
        self.stats.record(retrieval, full_hops=full_hops)
        return retrieval

    def _full_path_hops(self, originator: int, chunk_address: int,
                        route: Route) -> int:
        """Hops the retrieval would need without caches (for savings)."""
        if route.storer == self.overlay.closest_node(chunk_address):
            return route.hops
        # Path was truncated by a cache hit; extend greedily to the
        # storer to measure what was saved.
        space = self.overlay.space
        current = route.storer
        storer = self.overlay.closest_node(chunk_address)
        hops = route.hops
        for _ in range(space.bits + 1):
            if current == storer:
                return hops
            candidate = self.overlay.table(current).closest_peer(chunk_address)
            if (candidate ^ chunk_address) < (current ^ chunk_address):
                current = candidate
                hops += 1
                continue
            return hops + 1  # neighborhood hand-off
        return hops
