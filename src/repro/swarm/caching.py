"""Forwarding-path caching policies (paper §V future work).

"Adding content popularity and caching policies can also have an
impact on time-based amortization due to the reduced number of
forwarded requests." In real Swarm every forwarder may opportunistically
cache chunks it relays; a later request for the same chunk is then
served from the cache, truncating the path.

Policies implement a minimal mapping interface (``touch`` on hit,
``admit`` on insert). :class:`LRUCache` and :class:`LFUCache` are the
classic replacement schemes; :class:`NoCache` disables caching and is
the paper's baseline behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter, OrderedDict

from .._validation import require_int
from ..errors import ConfigurationError

__all__ = ["CachePolicy", "NoCache", "LRUCache", "LFUCache", "make_cache"]


class CachePolicy(ABC):
    """A bounded set of chunk addresses with a replacement scheme."""

    @abstractmethod
    def __contains__(self, address: object) -> bool:
        """Whether *address* is currently cached."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached addresses."""

    @abstractmethod
    def touch(self, address: int) -> None:
        """Record a cache hit on *address* (updates recency/frequency)."""

    @abstractmethod
    def admit(self, address: int) -> None:
        """Insert *address*, evicting per the policy if full."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier for configs and reports."""


class NoCache(CachePolicy):
    """Caching disabled — every request travels to the storer."""

    def __contains__(self, address: object) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def touch(self, address: int) -> None:
        raise ConfigurationError("NoCache cannot be touched: nothing is cached")

    def admit(self, address: int) -> None:
        pass  # Admission is a no-op by design.

    @property
    def name(self) -> str:
        return "none"


class _BoundedCache(CachePolicy):
    """Shared capacity validation for real caches."""

    def __init__(self, capacity: int) -> None:
        require_int(capacity, "capacity")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity


class LRUCache(_BoundedCache):
    """Evicts the least-recently used chunk."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, address: object) -> bool:
        return address in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, address: int) -> None:
        if address not in self._entries:
            raise ConfigurationError(f"cannot touch uncached address {address}")
        self._entries.move_to_end(address)

    def admit(self, address: int) -> None:
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[address] = None

    @property
    def name(self) -> str:
        return "lru"


class LFUCache(_BoundedCache):
    """Evicts the least-frequently used chunk (FIFO tie-break)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Counter[int] = Counter()
        self._arrival: dict[int, int] = {}
        self._clock = 0

    def __contains__(self, address: object) -> bool:
        return address in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def touch(self, address: int) -> None:
        if address not in self._counts:
            raise ConfigurationError(f"cannot touch uncached address {address}")
        self._counts[address] += 1

    def admit(self, address: int) -> None:
        if address in self._counts:
            self._counts[address] += 1
            return
        if len(self._counts) >= self.capacity:
            victim = min(
                self._counts,
                key=lambda a: (self._counts[a], self._arrival[a]),
            )
            del self._counts[victim]
            del self._arrival[victim]
        self._counts[address] = 1
        self._arrival[address] = self._clock
        self._clock += 1

    @property
    def name(self) -> str:
        return "lfu"


def make_cache(name: str, capacity: int = 128) -> CachePolicy:
    """Factory for configs ('none', 'lru', 'lfu')."""
    if name == "none":
        return NoCache()
    if name == "lru":
        return LRUCache(capacity)
    if name == "lfu":
        return LFUCache(capacity)
    raise ConfigurationError(
        f"unknown cache policy {name!r}; expected 'none', 'lru' or 'lfu'"
    )
