"""The assembled Swarm network: overlay + storage + incentives.

:class:`SwarmNetwork` is the reference simulator's facade. It builds
the forwarding-Kademlia overlay, creates one :class:`SwarmNode` per
address, wires the SWAP incentive mechanism, and exposes the two
operations the paper's workload consists of — uploading and
downloading files — plus the per-node counters and fairness reports
the evaluation reads out.

It favours observability over speed: every chunk movement updates the
full SWAP ledger. For paper-scale runs (millions of chunks) use the
vectorized :mod:`repro.backends.fast` backend, which is
cross-validated against this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import require_non_negative, require_positive
from ..core.fairness import FairnessReport
from ..core.incentives import SwapIncentives
from ..core.policies import make_policy
from ..core.pricing import make_pricing
from ..core.swap import SwapThresholds
from ..errors import ConfigurationError, OverlayError
from ..kademlia.overlay import Overlay, OverlayConfig
from .caching import make_cache
from .chunk import FileManifest
from .node import SwarmNode
from .retrieval import Retrieval, RetrievalProtocol
from .storage import (
    ClosestNodePlacement,
    NeighborhoodPlacement,
    PlacementPolicy,
)

__all__ = ["SwarmNetworkConfig", "DownloadReceipt", "SwarmNetwork"]


@dataclass(frozen=True)
class SwarmNetworkConfig:
    """Everything needed to build a reference Swarm network.

    The defaults are the paper's setup: XOR-distance pricing, the
    zero-proximity payment policy, closest-node placement, implicit
    storage, and no caching.
    """

    overlay: OverlayConfig = field(default_factory=OverlayConfig)
    pricing: str = "xor"
    pricing_base: float = 1.0
    policy: str = "zero-proximity"
    payment_threshold: float = 100.0
    disconnect_threshold: float = 150.0
    transaction_fee: float = 0.0
    cache: str = "none"
    cache_capacity: int = 128
    placement: str = "closest"
    replicas: int = 4
    implicit_storage: bool = True
    store_capacity: int | None = None
    enforce_disconnect: bool = False

    def __post_init__(self) -> None:
        require_positive(self.pricing_base, "pricing_base")
        require_non_negative(self.transaction_fee, "transaction_fee")
        if self.placement not in ("closest", "neighborhood"):
            raise ConfigurationError(
                f"placement must be 'closest' or 'neighborhood', got "
                f"{self.placement!r}"
            )

    def make_placement(self) -> PlacementPolicy:
        """Instantiate the configured placement policy."""
        if self.placement == "closest":
            return ClosestNodePlacement()
        return NeighborhoodPlacement(self.replicas)


@dataclass(frozen=True)
class DownloadReceipt:
    """Outcome of downloading one file."""

    file_id: int
    retrievals: tuple[Retrieval, ...]

    @property
    def chunks(self) -> int:
        """Number of chunks retrieved."""
        return len(self.retrievals)

    @property
    def total_hops(self) -> int:
        """Total edges travelled for the whole file."""
        return sum(r.route.hops for r in self.retrievals)

    @property
    def cache_hits(self) -> int:
        """Chunks served from forwarding caches."""
        return sum(1 for r in self.retrievals if r.source == "cache")


class SwarmNetwork:
    """Reference implementation of the paper's simulated network."""

    def __init__(self, config: SwarmNetworkConfig | None = None) -> None:
        self.config = config if config is not None else SwarmNetworkConfig()
        self.overlay = Overlay.build(self.config.overlay)
        space = self.overlay.space
        cache_factory = lambda: make_cache(  # noqa: E731 - tiny local factory
            self.config.cache, self.config.cache_capacity
        )
        self.nodes: dict[int, SwarmNode] = {
            address: SwarmNode(
                address,
                self.overlay.table(address),
                store_capacity=self.config.store_capacity,
                cache=cache_factory(),
            )
            for address in self.overlay.addresses
        }
        self.placement = self.config.make_placement()
        self.incentives = SwapIncentives(
            pricing=make_pricing(
                self.config.pricing, space, self.config.pricing_base
            ),
            policy=make_policy(self.config.policy),
            thresholds=SwapThresholds(
                payment=self.config.payment_threshold,
                disconnect=self.config.disconnect_threshold,
            ),
            transaction_fee=self.config.transaction_fee,
        )
        service_gate = None
        if self.config.enforce_disconnect:
            def service_gate(provider: int, consumer: int,
                             chunk: int) -> bool:
                # SWAP §III-B: refuse when serving would push the
                # consumer's debt past the disconnect threshold.
                price = self.incentives.pricing.price(provider, chunk)
                return not self.incentives.ledger.would_disconnect(
                    provider, consumer, price
                )
        self.retrieval = RetrievalProtocol(
            self.overlay,
            self.nodes,
            cache_on_path=(self.config.cache != "none"),
            implicit_storage=self.config.implicit_storage,
            service_gate=service_gate,
        )
        self.files_downloaded = 0
        self.files_uploaded = 0

    # ------------------------------------------------------------------
    # Node access

    def node(self, address: int) -> SwarmNode:
        """The node at *address*; raises :class:`OverlayError` if absent."""
        try:
            return self.nodes[address]
        except KeyError:
            raise OverlayError(f"no node at address {address}") from None

    @property
    def addresses(self) -> tuple[int, ...]:
        """All node addresses (dense-index order)."""
        return self.overlay.addresses

    # ------------------------------------------------------------------
    # Content operations

    def seed_manifest(self, manifest: FileManifest) -> None:
        """Place a file's chunks at their storers without bandwidth.

        Bootstrap helper for experiments that study downloads only —
        matches the paper, where storage placement is assumed.
        """
        payloads = manifest.chunks or (None,) * len(manifest)
        for address, chunk in zip(manifest.chunk_addresses, payloads):
            for storer in self.placement.storers(address, self.overlay):
                self.node(storer).store.put(
                    address, chunk.data if chunk is not None else None
                )

    def upload_file(self, originator: int,
                    manifest: FileManifest) -> DownloadReceipt:
        """Push a file from *originator* to its storers, with accounting.

        Upload forwarding mirrors download (paper §III-A: "Upload is
        done in a similar fashion"): each chunk travels the greedy
        path toward its storer, every hop is priced bandwidth, and the
        originator pays its first hop under the default policy. The
        receipt reuses the download structure with upload routes.
        """
        self.node(originator)
        retrievals = []
        payloads = manifest.chunks or (None,) * len(manifest)
        for address, chunk in zip(manifest.chunk_addresses, payloads):
            # The push path is the same geometric path a retrieval
            # would take with no caches; compute it with storage
            # checks disabled so the chunk reaches the storer even
            # when already present.
            route = self._push_route(originator, address)
            data = chunk.data if chunk is not None else None
            for storer in self.placement.storers(address, self.overlay):
                self.node(storer).store.put(address, data)
            self.incentives.process_route(route)
            retrievals.append(Retrieval(route=route, source="store"))
        self.files_uploaded += 1
        return DownloadReceipt(
            file_id=manifest.file_id, retrievals=tuple(retrievals)
        )

    def _push_route(self, originator: int, chunk_address: int):
        """Greedy path from originator to the chunk's primary storer."""
        from ..kademlia.routing import Router

        router = Router(self.overlay)
        return router.route(originator, chunk_address)

    def download_file(self, originator: int,
                      manifest: FileManifest) -> DownloadReceipt:
        """Download every chunk of *manifest* for *originator*.

        Each retrieval is accounted through the incentive mechanism;
        the receipt carries the travelled routes for inspection.
        """
        self.node(originator)
        retrievals = []
        for address in manifest.chunk_addresses:
            retrieval = self.retrieval.retrieve(originator, address)
            self.incentives.process_route(retrieval.route)
            retrievals.append(retrieval)
        self.files_downloaded += 1
        return DownloadReceipt(
            file_id=manifest.file_id, retrievals=tuple(retrievals)
        )

    # ------------------------------------------------------------------
    # Time and accounting

    def amortize(self, units: float) -> float:
        """Apply time-based amortization to every SWAP channel."""
        return self.incentives.amortize(units)

    # ------------------------------------------------------------------
    # Evaluation views (the paper's measured quantities)

    def income_per_node(self) -> np.ndarray:
        """Income (accounting units) per node, dense-index order (F2)."""
        return np.array(
            self.incentives.incomes(list(self.addresses)), dtype=np.float64
        )

    def forwarded_per_node(self) -> np.ndarray:
        """Chunks forwarded per node (Table I / Fig. 4 quantity)."""
        return np.array(
            self.incentives.ledger.forwarded_vector(list(self.addresses)),
            dtype=np.int64,
        )

    def first_hop_per_node(self) -> np.ndarray:
        """Chunks served as paid first hop per node (F1 denominator)."""
        return np.array(
            self.incentives.ledger.first_hop_vector(list(self.addresses)),
            dtype=np.int64,
        )

    def fairness(self) -> FairnessReport:
        """F1/F2 report with income as the reward (Fig. 5 flavour)."""
        return self.incentives.fairness(list(self.addresses))

    def paper_f1(self) -> FairnessReport:
        """F1 exactly as Fig. 6: forwarded vs first-hop counts."""
        return self.incentives.paper_f1_report(list(self.addresses))

    def average_forwarded_chunks(self) -> float:
        """Network-wide mean of forwarded chunks (Table I cell)."""
        return float(self.forwarded_per_node().mean())
