"""Per-node outcome vectors shared by every simulation backend."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..core.fairness import (
    FairnessReport,
    LorenzCurve,
    evaluate_fairness,
    gini,
    lorenz_curve,
)
from ..errors import ConfigurationError
from .config import FastSimulationConfig

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Per-node outcome vectors of one simulation run.

    All arrays are aligned with ``node_addresses`` (the overlay's
    dense index order). ``income`` is the accounting units received as
    the paid zero-proximity hop; ``expenditure`` is what originators
    paid out. ``cache_hits`` and ``unavailable`` are only non-zero
    when the corresponding scenario (path caching, churn) is active.
    ``latency_ms`` holds one measured retrieval latency per retrieved
    chunk (unordered) when the run came from the time-domain backend,
    else ``None`` — the timeless hop backends have no clock.
    """

    config: FastSimulationConfig
    node_addresses: np.ndarray
    forwarded: np.ndarray
    first_hop: np.ndarray
    income: np.ndarray
    expenditure: np.ndarray
    files: int = 0
    chunks: int = 0
    total_hops: int = 0
    local_hits: int = 0
    fallbacks: int = 0
    cache_hits: int = 0
    unavailable: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    latency_ms: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Paper quantities

    @property
    def n_nodes(self) -> int:
        """Number of nodes simulated."""
        return len(self.node_addresses)

    @property
    def mean_hops(self) -> float:
        """Average path length per chunk retrieval."""
        retrieved = self.chunks - self.unavailable
        if retrieved <= 0:
            return 0.0
        return self.total_hops / retrieved

    @property
    def availability(self) -> float:
        """Fraction of requested chunks actually retrieved."""
        if self.chunks == 0:
            return 1.0
        return 1.0 - self.unavailable / self.chunks

    def average_forwarded_chunks(self) -> float:
        """Table I cell: network mean of per-node forwarded chunks."""
        return float(self.forwarded.mean())

    def f2_gini(self) -> float:
        """Fig. 5: Gini of per-node income, all nodes."""
        return gini(self.income)

    def f2_curve(self) -> LorenzCurve:
        """Fig. 5: Lorenz curve of per-node income."""
        return lorenz_curve(self.income)

    def f1_gini(self) -> float:
        """Fig. 6: Gini of forwarded/first-hop ratios, paid nodes only."""
        return self.f1_report().f1_gini

    def f1_curve(self) -> LorenzCurve:
        """Fig. 6: Lorenz curve of the F1 ratios."""
        return self.f1_report().f1_curve

    def f1_report(self) -> FairnessReport:
        """Full F1/F2 report in the paper's Fig. 6 formulation."""
        return evaluate_fairness(
            self.forwarded.astype(np.float64),
            self.first_hop.astype(np.float64),
        )

    def income_report(self) -> FairnessReport:
        """F1/F2 with income (units) as the reward."""
        return evaluate_fairness(self.forwarded.astype(np.float64), self.income)

    def latency_stats(self):
        """Measured latency percentiles (time backend runs only).

        Returns an :class:`~repro.analysis.latency.LatencySummary`;
        raises :class:`ConfigurationError` when the run carries no
        latency samples (any timeless backend).
        """
        from ..analysis.latency import summarize_latencies

        if self.latency_ms is None:
            raise ConfigurationError(
                "this result carries no latency samples; run the "
                "'time' backend to measure retrieval latency"
            )
        return summarize_latencies(self.latency_ms)

    def summary(self) -> str:
        """One-paragraph run summary."""
        extras = ""
        if self.cache_hits:
            extras += f", cache hits = {self.cache_hits}"
        if self.unavailable:
            extras += f", availability = {self.availability:.1%}"
        if self.latency_ms is not None and self.latency_ms.size:
            stats = self.latency_stats()
            extras += (
                f", latency p50/p95/p99 = {stats.p50_ms:.1f}/"
                f"{stats.p95_ms:.1f}/{stats.p99_ms:.1f} ms"
            )
        return (
            f"{self.files} files / {self.chunks} chunks over "
            f"{self.n_nodes} nodes (k={self.config.bucket_size}, "
            f"originators={self.config.originator_share:.0%}): "
            f"mean forwarded = {self.average_forwarded_chunks():.0f}, "
            f"mean hops = {self.mean_hops:.2f}, "
            f"F2 Gini = {self.f2_gini():.4f}, "
            f"F1 Gini = {self.f1_gini():.4f}, "
            f"fallback hops = {self.fallbacks}{extras}"
        )

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Combine two runs over the same overlay (multi-machine story).

        Configurations must agree on everything except the workload
        seed and file count, mirroring the paper's split of one
        simulation across machines.
        """
        ours, theirs = self.config, other.config
        normalize = lambda c: dataclasses.replace(  # noqa: E731
            c, n_files=1, workload_seed=0
        )
        if normalize(ours) != normalize(theirs):
            raise ConfigurationError(
                "cannot merge results whose configurations differ in "
                "anything but the workload seed and file count"
            )
        merged_hist = dict(self.hop_histogram)
        for hops, count in other.hop_histogram.items():
            merged_hist[hops] = merged_hist.get(hops, 0) + count
        if self.latency_ms is None and other.latency_ms is None:
            merged_latency = None
        else:
            parts = [samples for samples in
                     (self.latency_ms, other.latency_ms)
                     if samples is not None]
            merged_latency = np.concatenate(parts)
        return SimulationResult(
            config=self.config,
            node_addresses=self.node_addresses,
            forwarded=self.forwarded + other.forwarded,
            first_hop=self.first_hop + other.first_hop,
            income=self.income + other.income,
            expenditure=self.expenditure + other.expenditure,
            files=self.files + other.files,
            chunks=self.chunks + other.chunks,
            total_hops=self.total_hops + other.total_hops,
            local_hits=self.local_hits + other.local_hits,
            fallbacks=self.fallbacks + other.fallbacks,
            cache_hits=self.cache_hits + other.cache_hits,
            unavailable=self.unavailable + other.unavailable,
            hop_histogram=merged_hist,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            latency_ms=merged_latency,
        )
