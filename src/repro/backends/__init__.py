"""Simulation backends behind one protocol (`prepare -> run -> result`).

The registry maps names to interchangeable ways of executing the
paper's download simulation::

    from repro.backends import get_backend, run_simulation

    result = get_backend("fast").prepare(config).run()
    result = run_simulation(config, backend="reference")

Backend matrix:

========== ========================================================
name        engine
========== ========================================================
fast        batched numpy: whole-workload lockstep hop waves, with
            native path-caching and churn scenarios
fast-perfile legacy vectorized loop (one python iteration per file)
time        time-domain event wheel over the same routing matrices:
            finite up/down bandwidth, concurrency caps, per-chunk
            latency samples (hop counters bit-identical to fast)
reference   object-oriented SwarmNetwork, full SWAP observability
flat        per-chunk flat reward on routed traffic (F1-ideal)
filecoin    storage-power block rewards + retrieval payments
freerider   SWAP pricing with never-paying originators (§V)
tit_for_tat standalone BitTorrent choke-algorithm swarm
========== ========================================================
"""

from .base import (
    SimulationBackend,
    available_backends,
    backend_specs,
    get_backend,
    get_backend_class,
    register_backend,
    run_simulation,
)
from .config import FastSimulationConfig
from .result import SimulationResult

# Importing the implementation modules registers their backends.
from .fast import (  # noqa: E402
    FastBackend,
    FastSimulation,
    NextHopTable,
    PerFileFastBackend,
    cached_next_hop_table,
    cached_overlay,
    clear_caches,
    paper_result,
)
from .timed import (  # noqa: E402
    FluidWheel,
    TimeBackend,
    TimedSimulation,
)
from .reference import ReferenceBackend  # noqa: E402
from .baselines import (  # noqa: E402
    FilecoinBackend,
    FlatRewardBackend,
    FreeRiderBackend,
    TitForTatBackend,
)

__all__ = [
    "SimulationBackend",
    "available_backends",
    "backend_specs",
    "get_backend",
    "get_backend_class",
    "register_backend",
    "run_simulation",
    "FastSimulationConfig",
    "SimulationResult",
    "FastBackend",
    "FastSimulation",
    "NextHopTable",
    "PerFileFastBackend",
    "cached_next_hop_table",
    "cached_overlay",
    "clear_caches",
    "paper_result",
    "FluidWheel",
    "TimeBackend",
    "TimedSimulation",
    "ReferenceBackend",
    "FilecoinBackend",
    "FlatRewardBackend",
    "FreeRiderBackend",
    "TitForTatBackend",
]
