"""Comparison-mechanism backends behind the simulation protocol.

The paper contrasts SWAP with BitTorrent tit-for-tat, Filecoin-style
storage rewards, idealized flat-rate rewards, and §V free-riders.
These backends make those comparisons runnable through the same
``prepare(config).run(workload)`` interface as the fast and reference
engines, each returning a :class:`SimulationResult` so the F1/F2
fairness metrics read out uniformly:

* ``flat`` — per-chunk reward on the real routed traffic (the
  F1-ideal: income exactly proportional to forwarded chunks);
* ``filecoin`` — retrieval-market payments to the serving storer plus
  epoch block rewards proportional to storage power;
* ``freerider`` — SWAP pricing, but a fraction of nodes never pay:
  their downloads are routed and counted yet earn the first hop
  nothing;
* ``tit_for_tat`` — Cohen's choking algorithm in a standalone swarm
  (BitTorrent has no overlay routing; income is service received).
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import require_fraction, require_non_negative
from ..baselines.tit_for_tat import TitForTatConfig, TitForTatSwarm
from ..errors import ConfigurationError
from .base import SimulationBackend, register_backend
from .config import FastSimulationConfig
from .fast import SimulationBoundBackend
from .result import SimulationResult

__all__ = [
    "FlatRewardBackend",
    "FilecoinBackend",
    "FreeRiderBackend",
    "TitForTatBackend",
]


class _RoutedBaselineBackend(SimulationBoundBackend):
    """Shared plumbing: route the workload with the batched engine."""


@register_backend
class FlatRewardBackend(_RoutedBaselineBackend):
    """Per-chunk reward: every forwarded chunk earns the same amount.

    F1 is zero by construction; F2 equals the inequality of the
    traffic itself — the proportional bound any real mechanism is
    measured against.
    """

    name = "flat"
    description = "per-chunk flat reward on routed traffic (F1-ideal)"

    def __init__(self, reward_per_chunk: float = 1.0) -> None:
        require_non_negative(reward_per_chunk, "reward_per_chunk")
        self.reward_per_chunk = reward_per_chunk

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        assert self.simulation is not None
        result = self.simulation.run(workload)
        result.income = result.forwarded.astype(np.float64) * self.reward_per_chunk
        result.expenditure = np.zeros_like(result.income)
        return result


@register_backend
class FilecoinBackend(_RoutedBaselineBackend):
    """Filecoin-style rewards: retrieval deals plus storage-power blocks.

    Retrieval payments go to the node that *served* each chunk (the
    terminal storer); block rewards accrue per epoch to a winner
    sampled proportionally to storage power (here: the share of the
    address space a node stores), regardless of traffic — which is
    exactly why its bandwidth-fairness profile differs from SWAP's.
    """

    name = "filecoin"
    description = "storage-power block rewards + retrieval-market payments"

    def __init__(self, block_reward: float = 10.0, epoch_length: int = 100,
                 retrieval_price: float = 1.0, seed: int = 42) -> None:
        require_non_negative(block_reward, "block_reward")
        require_non_negative(retrieval_price, "retrieval_price")
        self.block_reward = block_reward
        self.epoch_length = epoch_length
        self.retrieval_price = retrieval_price
        self.seed = seed

    def prepare(self, config: FastSimulationConfig) -> "FilecoinBackend":
        if config.has_scenarios:
            # Served counts below assume every non-local chunk reaches
            # its storer; churn drops chunks and caching serves them
            # at the first hop, so the retrieval-market model would
            # pay for deliveries that never happened.
            raise ConfigurationError(
                "the filecoin baseline does not support the "
                "caching/churn scenario fields"
            )
        super().prepare(config)
        return self

    def run(self, workload=None) -> SimulationResult:
        config = self._require_prepared()
        assert self.simulation is not None
        simulation = self.simulation
        if workload is None:
            workload = config.workload()
        result = simulation.run(workload)

        # Served counts: terminal arrivals per node (local hits pay
        # nobody, matching FilecoinMechanism's hops > 0 rule).
        n = simulation.table.n_nodes
        file_origins, sizes, targets = simulation._flatten_workload(workload)
        origins = np.repeat(file_origins, sizes).astype(np.intp)
        storers = simulation.table.storer_idx[targets]
        served = np.bincount(storers[storers != origins], minlength=n)

        income = served.astype(np.float64) * self.retrieval_price
        power = np.bincount(
            simulation.table.storer, minlength=n
        ).astype(np.float64)
        epochs = result.chunks // self.epoch_length
        if epochs > 0 and self.block_reward > 0 and power.sum() > 0:
            rng = np.random.default_rng(self.seed)
            winners = rng.choice(n, size=epochs, p=power / power.sum())
            income += np.bincount(
                winners, minlength=n
            ).astype(np.float64) * self.block_reward
        result.income = income
        result.expenditure = np.zeros_like(income)
        return result


@register_backend
class FreeRiderBackend(_RoutedBaselineBackend):
    """SWAP traffic where a fraction of nodes never pay (paper §V).

    Free riders are sampled once per prepared overlay; chunks they
    originate are routed and counted as usual but the paid first hop
    earns nothing, pushing income inequality (F2) up with the
    free-riding fraction.
    """

    name = "freerider"
    description = "SWAP pricing with a fraction of never-paying originators"

    def __init__(self, fraction: float = 0.3, selection_seed: int = 13) -> None:
        require_fraction(fraction, "fraction")
        self.fraction = fraction
        self.selection_seed = selection_seed
        self.riders: np.ndarray | None = None

    def prepare(self, config: FastSimulationConfig) -> "FreeRiderBackend":
        super().prepare(config)
        n = len(self.overlay)
        mask = np.zeros(n, dtype=bool)
        n_riders = round(self.fraction * n)
        if n_riders:
            rng = np.random.default_rng(self.selection_seed)
            mask[rng.choice(n, size=n_riders, replace=False)] = True
        self.riders = mask
        return self

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        assert self.simulation is not None and self.riders is not None
        return self.simulation.run(workload, unpaid_origins=self.riders)


@register_backend
class TitForTatBackend(SimulationBackend):
    """BitTorrent tit-for-tat in its own single-file swarm.

    Tit-for-tat has no overlay routing, so the download workload is
    not replayed; the swarm size derives from the configuration
    (capped — the pure-python choke loop is O(peers x view) per
    round). Income is service received (the only reward TFT pays) and
    ``forwarded`` is pieces uploaded, which slots into F1/F2.
    """

    name = "tit_for_tat"
    description = "standalone BitTorrent swarm with Cohen's choke algorithm"
    replays_workload = False

    #: Peer-count cap keeping the choke loop tractable.
    MAX_PEERS = 256

    swarm: TitForTatSwarm | None = None

    def __init__(self, swarm_config: TitForTatConfig | None = None) -> None:
        self._swarm_config = swarm_config

    def prepare(self, config: FastSimulationConfig) -> "TitForTatBackend":
        self.config = config
        swarm_config = self._swarm_config
        if swarm_config is None:
            swarm_config = TitForTatConfig(
                n_peers=min(config.n_nodes, self.MAX_PEERS),
                n_pieces=min(config.file_max, 200),
                seed=config.workload_seed,
            )
        self.swarm = TitForTatSwarm(swarm_config)
        return self

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        assert self.swarm is not None
        started = time.perf_counter()
        swarm = self.swarm
        swarm.run()
        uploaded = np.array(swarm.contributions(), dtype=np.int64)
        downloaded = np.array(swarm.incomes(), dtype=np.float64)
        n_pieces = swarm.config.n_pieces
        return SimulationResult(
            config=self.config,
            node_addresses=np.arange(len(swarm.peers), dtype=np.int64),
            forwarded=uploaded,
            first_hop=uploaded.copy(),
            income=downloaded,
            expenditure=np.zeros_like(downloaded),
            files=sum(
                1 for peer in swarm.peers if peer.is_seed(n_pieces)
            ),
            chunks=int(downloaded.sum()),
            total_hops=int(uploaded.sum()),
            elapsed_seconds=time.perf_counter() - started,
        )
