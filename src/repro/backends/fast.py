"""Vectorized whole-network simulator for paper-scale runs.

The paper's headline experiment downloads 10 000 files of 100–1000
chunks each — about 5.5 million chunk retrievals over a 1000-node
overlay. The object-oriented reference simulator
(:class:`~repro.swarm.network.SwarmNetwork`) observes every SWAP
channel and is deliberately not built for that volume; this module is
the production backend:

* :class:`NextHopTable` precomputes, for every (node, target address)
  pair, the greedy forwarding decision as one dense numpy matrix —
  routing a chunk becomes a table lookup;
* :class:`FastSimulation` flattens the *whole workload* into per-chunk
  origin/target/storer columns and routes every in-flight chunk in
  lockstep hop waves — one ``next_hop`` gather plus one
  ``np.bincount`` per wave — accumulating exactly the per-node
  quantities the paper's figures need (chunks forwarded, chunks served
  as paid first hop, income in accounting units). The legacy per-file
  loop is kept behind ``run(batched=False)`` for cross-validation and
  benchmarking.

Two scenarios that previously existed only in the object-oriented
layer run natively here: **path caching** (a cached-chunk mask
short-circuits repeat retrievals at the first hop) and **churn**
(per-epoch node-alive masks, with optional storer recomputation over
the live population).

Equivalence with the reference implementation is asserted by
``tests/integration/test_fast_vs_reference.py`` and
``tests/backends/test_equivalence.py`` on shared overlays. Overlays
and next-hop tables are cached per configuration, mirroring the
paper's reuse of one overlay across experiments.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigurationError
from ..kademlia.address import bit_length_array
from ..kademlia.overlay import Overlay, OverlayConfig
from ..workloads.distributions import OriginatorPool, UniformFileSize
from ..workloads.generators import DownloadWorkload, FileDownload
from .base import SimulationBackend, register_backend
from .config import FastSimulationConfig
from .result import SimulationResult

__all__ = [
    "FastSimulationConfig",
    "NextHopTable",
    "SimulationResult",
    "FastSimulation",
    "FastBackend",
    "PerFileFastBackend",
    "clear_caches",
    "cached_overlay",
    "cached_next_hop_table",
    "paper_result",
    "MAX_FAST_BITS",
]

#: Maximum address width the vectorized backend supports; wider
#: spaces would need a sparse storer/next-hop representation.
MAX_FAST_BITS = 22

_OVERLAY_CACHE: dict[tuple, Overlay] = {}
_TABLE_CACHE: dict[tuple, "NextHopTable"] = {}


def clear_caches() -> None:
    """Drop cached overlays and next-hop tables (for memory-bound tests)."""
    _OVERLAY_CACHE.clear()
    _TABLE_CACHE.clear()


def _overlay_key(config: OverlayConfig) -> tuple:
    """Hashable cache key for an overlay configuration."""
    return (
        config.n_nodes,
        config.bits,
        config.limits.default,
        tuple(sorted(config.limits.overrides.items())),
        config.seed,
        config.neighborhood_min,
        config.symmetric_neighborhood,
    )


def cached_overlay(config: OverlayConfig) -> Overlay:
    """Build (or reuse) the overlay for *config*."""
    key = _overlay_key(config)
    overlay = _OVERLAY_CACHE.get(key)
    if overlay is None:
        overlay = Overlay.build(config)
        _OVERLAY_CACHE[key] = overlay
    return overlay


def cached_next_hop_table(overlay: Overlay) -> "NextHopTable":
    """Build (or reuse) the next-hop table for *overlay*."""
    key = _overlay_key(overlay.config)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = NextHopTable(overlay)
        _TABLE_CACHE[key] = table
    return table


class NextHopTable:
    """Dense greedy-forwarding table for one overlay.

    ``next_hop[i, t]`` is the dense index of the peer node ``i``
    forwards a request for target address ``t`` to, or ``-1`` when no
    known peer is XOR-closer than ``i`` itself (greedy terminal).
    ``storer[t]`` is the dense index of the globally closest node.
    """

    def __init__(self, overlay: Overlay) -> None:
        bits = overlay.space.bits
        if bits > MAX_FAST_BITS:
            raise ConfigurationError(
                f"the vectorized backend supports at most {MAX_FAST_BITS}-bit "
                f"spaces, got {bits}; use the reference SwarmNetwork"
            )
        self.overlay = overlay
        size = overlay.space.size
        n_nodes = len(overlay)
        dtype = np.int16 if n_nodes < np.iinfo(np.int16).max else np.int32
        self.next_hop = np.full((n_nodes, size), -1, dtype=dtype)
        self.storer = overlay.storer_table().astype(np.int64)
        targets = np.arange(size, dtype=np.uint64)
        addresses = overlay.address_array()
        for index, owner in enumerate(overlay.addresses):
            table = overlay.table(owner)
            peers = table.peer_array()
            if peers.size == 0:
                continue
            peer_indices = np.array(
                [overlay.index_of(int(peer)) for peer in peers],
                dtype=np.int64,
            )
            # Running minimum over the node's peers: O(m) full-space
            # passes with no (size x m) intermediate.
            best_distance = targets ^ np.uint64(owner)
            best_index = np.full(size, -1, dtype=np.int64)
            for peer, peer_index in zip(peers, peer_indices):
                distance = targets ^ peer
                closer = distance < best_distance
                best_distance = np.where(closer, distance, best_distance)
                best_index[closer] = peer_index
            self.next_hop[index] = best_index.astype(dtype)
        self.addresses = addresses
        self._transposed: np.ndarray | None = None
        self._storer_idx: np.ndarray | None = None
        self._addresses32: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the underlying overlay."""
        return self.next_hop.shape[0]

    @property
    def transposed(self) -> np.ndarray:
        """``next_hop`` in [target, node] layout (lazily built, cached).

        The batched engine sorts in-flight chunks by target, so this
        layout turns every hop wave's table gather into a near
        sequential walk over 2-KB rows instead of random access across
        the whole table.
        """
        if self._transposed is None:
            self._transposed = np.ascontiguousarray(self.next_hop.T)
        return self._transposed

    @property
    def storer_idx(self) -> np.ndarray:
        """``storer`` as platform ints, ready for index arithmetic."""
        if self._storer_idx is None:
            self._storer_idx = self.storer.astype(np.intp)
        return self._storer_idx

    @property
    def addresses32(self) -> np.ndarray:
        """Node addresses as ``int32`` (valid: spaces are <= 22 bits)."""
        if self._addresses32 is None:
            self._addresses32 = self.addresses.astype(np.int32)
        return self._addresses32


class FastSimulation:
    """Replays a download workload against a precomputed routing table."""

    def __init__(self, config: FastSimulationConfig) -> None:
        self.config = config
        self.overlay = cached_overlay(config.overlay_config())
        self.table = cached_next_hop_table(self.overlay)
        self.space = self.overlay.space

    # ------------------------------------------------------------------
    # Pricing (vectorized mirror of repro.core.pricing)

    def _prices(self, server_addresses: np.ndarray,
                chunk_addresses: np.ndarray) -> np.ndarray:
        base = self.config.pricing_base
        if self.config.pricing == "flat":
            return np.full(len(chunk_addresses), base, dtype=np.float64)
        if self.config.pricing == "xor":
            distances = (server_addresses ^ chunk_addresses).astype(np.float64)
            return base * np.maximum(distances, 1.0) / self.space.size
        # proximity: base * max(bits - po, 1)
        diffs = server_addresses ^ chunk_addresses
        lengths = bit_length_array(diffs)  # == bits - po
        return base * np.maximum(lengths, 1).astype(np.float64)

    # ------------------------------------------------------------------
    # Execution

    def run(self, workload: DownloadWorkload | None = None, *,
            batched: bool = True,
            unpaid_origins: np.ndarray | None = None) -> SimulationResult:
        """Run the configured (or given) workload; returns the result.

        ``batched=False`` selects the legacy per-file loop (no scenario
        support) for cross-validation. ``unpaid_origins`` is a boolean
        mask over dense node indices whose downloads are never paid
        for (the free-rider model): traffic is routed and counted, but
        the first hop earns nothing and the originator spends nothing.
        """
        started = time.perf_counter()
        if workload is None:
            workload = self.config.workload()
        n = len(self.overlay)
        result = SimulationResult(
            config=self.config,
            node_addresses=self.overlay.address_array().astype(np.int64),
            forwarded=np.zeros(n, dtype=np.int64),
            first_hop=np.zeros(n, dtype=np.int64),
            income=np.zeros(n, dtype=np.float64),
            expenditure=np.zeros(n, dtype=np.float64),
        )
        if batched:
            self._run_batched(workload, result, unpaid_origins)
        else:
            if self.config.has_scenarios:
                raise ConfigurationError(
                    "caching/churn scenarios require the batched engine; "
                    "run with batched=True"
                )
            if unpaid_origins is not None:
                raise ConfigurationError(
                    "unpaid_origins requires the batched engine"
                )
            nodes = self.overlay.address_array()
            for event in workload.events(nodes, self.space):
                self._run_file(event, result)
                result.files += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Batched hot path

    def _run_batched(self, workload, result: SimulationResult,
                     unpaid_origins: np.ndarray | None = None) -> None:
        """Flatten the whole workload and route all chunks in hop waves."""
        config = self.config
        file_origins, sizes, targets = self._flatten_workload(workload)
        result.files += len(sizes)
        if targets.size == 0 and len(sizes) == 0:
            return
        origins = np.repeat(file_origins, sizes)

        if not config.has_scenarios:
            result.chunks += int(origins.size)
            self._route_batch(origins, targets, result,
                              unpaid_origins=unpaid_origins)
            return

        # Scenario path: slabs of ``batch_files`` files let the cache
        # mask and the alive mask evolve over (simulated) time while
        # each slab still routes fully vectorized.
        n = self.table.n_nodes
        cached = (np.zeros(self.space.size, dtype=bool)
                  if config.caching else None)
        churn_rng = (np.random.default_rng(config.churn_seed)
                     if config.churn_offline_fraction > 0.0 else None)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        for start in range(0, len(sizes), config.batch_files):
            stop = min(start + config.batch_files, len(sizes))
            lo, hi = int(offsets[start]), int(offsets[stop])
            slab_origins = origins[lo:hi].astype(np.intp)
            slab_targets = targets[lo:hi]
            result.chunks += int(slab_origins.size)
            alive = None
            storers = None
            if churn_rng is not None:
                alive = churn_rng.random(n) >= config.churn_offline_fraction
                if not alive.any():
                    result.unavailable += int(slab_origins.size)
                    continue
                if config.churn_recompute_storers:
                    storers = self._alive_storer_table(alive)[slab_targets]
                    dead = ~alive[slab_origins]
                else:
                    storers = self.table.storer_idx[slab_targets]
                    dead = ~alive[slab_origins] | ~alive[storers]
                if dead.any():
                    result.unavailable += int(np.count_nonzero(dead))
                    keep = ~dead
                    slab_origins = slab_origins[keep]
                    slab_targets = slab_targets[keep]
                    storers = storers[keep]
            self._route_batch(slab_origins, slab_targets, result,
                              storers=storers, alive=alive, cached=cached,
                              unpaid_origins=unpaid_origins)
            if cached is not None:
                # Every chunk retrieved this slab is now cached on its
                # delivery path (global mask model of path caching).
                cached[slab_targets] = True

    def _flatten_workload(self, workload):
        """(per-file origin indices, file sizes, flat targets) columns.

        For a plain :class:`DownloadWorkload` (uniform chunks, no
        catalog) the whole workload is sampled in three RNG calls that
        reproduce the streaming generator's draw stream bit-for-bit —
        numpy generators yield identical values whether ``integers``
        is called once for N draws or file-by-file. Anything else
        (traces, Zipf catalogs, custom workloads) falls back to
        draining the event stream.
        """
        nodes = self.overlay.address_array()
        if (type(workload) is DownloadWorkload
                and workload.catalog_size == 0
                and type(workload.originators) is OriginatorPool
                and type(workload.file_size) is UniformFileSize):
            rng = np.random.default_rng(workload.seed)
            if workload.pool_seed is None:
                pool = workload.originators.members(np.asarray(nodes), rng)
            else:
                pool = workload.originators.members(
                    np.asarray(nodes),
                    np.random.default_rng(workload.pool_seed),
                )
            chosen = workload.originators.sample(
                pool, workload.n_files, rng
            )
            sizes = workload.file_size.sample(
                workload.n_files, rng
            ).astype(np.int64)
            targets = rng.integers(
                0, self.space.size, size=int(sizes.sum()), dtype=np.uint64
            ).astype(np.int32)
            index_of = self.overlay.index_of
            file_origins = np.fromiter(
                (index_of(int(address)) for address in chosen),
                dtype=np.int32, count=len(chosen),
            )
            return file_origins, sizes, targets
        origin_list: list[int] = []
        size_list: list[int] = []
        target_parts: list[np.ndarray] = []
        for event in workload.events(nodes, self.space):
            origin_list.append(self.overlay.index_of(int(event.originator)))
            size_list.append(event.n_chunks)
            target_parts.append(
                np.asarray(event.chunk_addresses, dtype=np.int32)
            )
        if not target_parts:
            empty = np.empty(0, dtype=np.int32)
            return empty, np.empty(0, dtype=np.int64), empty
        return (
            np.asarray(origin_list, dtype=np.int32),
            np.asarray(size_list, dtype=np.int64),
            np.concatenate(target_parts),
        )

    def _route_batch(self, origins: np.ndarray, targets: np.ndarray,
                     result: SimulationResult, *,
                     storers: np.ndarray | None = None,
                     alive: np.ndarray | None = None,
                     cached: np.ndarray | None = None,
                     unpaid_origins: np.ndarray | None = None) -> None:
        """Route one flattened batch of chunk retrievals in hop waves.

        Chunks are sorted by target first: the in-flight columns stay
        target-ordered through every compaction, so the per-wave
        transposed-table gathers walk memory near sequentially.
        """
        if origins.size == 0:
            return
        table = self.table
        # Stable integer argsort is a radix/counting sort; a uint16
        # key keeps it O(n) for the paper's 16-bit space.
        key = targets.astype(np.uint16) if self.space.bits <= 16 else targets
        order = np.argsort(key, kind="stable")
        tg = np.take(targets, order)
        current = np.take(origins, order).astype(np.intp)
        if storers is None:
            st = np.take(table.storer_idx, tg)
        else:
            st = np.take(storers.astype(np.intp), order)

        local = st == current
        local_count = int(np.count_nonzero(local))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )
            remote = ~local
            current = current[remote]
            tg = tg[remote]
            st = st[remote]

        if cached is not None and current.size:
            hits = cached[tg]
            if hits.any():
                self._serve_from_cache(
                    current[hits], tg[hits], st[hits],
                    result, alive=alive, unpaid_origins=unpaid_origins,
                )
                misses = ~hits
                current = current[misses]
                tg = tg[misses]
                st = st[misses]

        n = table.n_nodes
        first_origins = current
        hop = 0
        while current.size:
            hop += 1
            nxt = self._hop_once(current, tg, st, result, alive)
            wave_counts = np.bincount(nxt, minlength=n)
            result.forwarded += wave_counts
            result.total_hops += int(nxt.size)
            if hop == 1:
                result.first_hop += wave_counts
                self._pay_first_hop(
                    result, nxt, tg, first_origins, unpaid_origins
                )
            keep = nxt != st
            arrived_count = int(nxt.size - np.count_nonzero(keep))
            if arrived_count:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived_count
                )
            current = nxt[keep]
            tg = tg[keep]
            st = st[keep]

    def _hop_once(self, current: np.ndarray, targets: np.ndarray,
                  storers: np.ndarray, result: SimulationResult,
                  alive: np.ndarray | None) -> np.ndarray:
        """One lockstep forwarding wave with fallback/churn hand-off."""
        nxt = self.table.transposed[targets, current].astype(np.intp)
        stalled = nxt < 0
        if alive is not None:
            # A dead next hop behaves like a greedy terminal: the
            # request jumps straight to the (live) storer.
            valid = ~stalled
            dead = np.zeros_like(stalled)
            dead[valid] = ~alive[nxt[valid]]
            stalled |= dead
        n_stalled = int(np.count_nonzero(stalled))
        if n_stalled:
            # Neighborhood hand-off: jump straight to the storer
            # (see Router); counted so the effect is visible.
            result.fallbacks += n_stalled
            nxt[stalled] = storers[stalled]
        return nxt

    def _serve_from_cache(self, origins: np.ndarray, targets: np.ndarray,
                          storers: np.ndarray, result: SimulationResult, *,
                          alive: np.ndarray | None,
                          unpaid_origins: np.ndarray | None) -> None:
        """Cache hits: the originator's first hop serves in one hop."""
        n = self.table.n_nodes
        nxt = self._hop_once(origins, targets, storers, result, alive)
        wave_counts = np.bincount(nxt, minlength=n)
        result.forwarded += wave_counts
        result.first_hop += wave_counts
        result.total_hops += int(nxt.size)
        self._pay_first_hop(result, nxt, targets, origins, unpaid_origins)
        result.cache_hits += int(nxt.size)
        result.hop_histogram[1] = (
            result.hop_histogram.get(1, 0) + int(nxt.size)
        )

    def _pay_first_hop(self, result: SimulationResult, servers: np.ndarray,
                       targets: np.ndarray, origins: np.ndarray,
                       unpaid_origins: np.ndarray | None) -> None:
        """First-hop pricing and income/expenditure accounting."""
        n = len(result.node_addresses)
        if self.config.pricing == "xor":
            # Inlined _prices on int32: addresses fit in 22 bits.
            distances = np.take(self.table.addresses32, servers) ^ targets
            np.maximum(distances, 1, out=distances)
            prices = distances.astype(np.float64)
            prices *= self.config.pricing_base / self.space.size
        else:
            prices = self._prices(
                self.table.addresses[servers].astype(np.uint64),
                targets.astype(np.uint64),
            )
        if unpaid_origins is not None:
            prices[unpaid_origins[origins]] = 0.0
        result.income += np.bincount(servers, weights=prices, minlength=n)
        result.expenditure += np.bincount(origins, weights=prices,
                                          minlength=n)

    def _alive_storer_table(self, alive: np.ndarray) -> np.ndarray:
        """Storer table restricted to live nodes (re-replication model)."""
        alive_idx = np.flatnonzero(alive).astype(np.int64)
        addresses = self.overlay.address_array()[alive_idx]
        size = self.space.size
        out = np.empty(size, dtype=np.int64)
        targets = np.arange(size, dtype=np.uint64)
        # Chunked to bound peak memory at ~ chunk * n_alive * 8B.
        chunk = max(1, (1 << 22) // max(1, alive_idx.size))
        for start in range(0, size, chunk):
            block = targets[start:start + chunk]
            distances = block[:, None] ^ addresses[None, :]
            out[start:start + chunk] = alive_idx[np.argmin(distances, axis=1)]
        return out

    # ------------------------------------------------------------------
    # Legacy per-file loop (kept for cross-validation and benchmarks)

    def _run_file(self, event: FileDownload,
                  result: SimulationResult) -> None:
        """Route every chunk of one file and accumulate the counters."""
        chunks = event.chunk_addresses.astype(np.int64)
        n = self.table.n_nodes
        origin_index = self.overlay.index_of(event.originator)
        storer_index = self.table.storer[chunks]
        result.chunks += len(chunks)

        local = storer_index == origin_index
        local_count = int(np.count_nonzero(local))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )
        alive = ~local
        current = np.full(int(np.count_nonzero(alive)), origin_index,
                          dtype=np.int64)
        targets = chunks[alive]
        storers = storer_index[alive]
        addresses = result.node_addresses
        hop = 0
        while current.size:
            hop += 1
            nxt = self.table.next_hop[current, targets].astype(np.int64)
            stalled = nxt < 0
            if stalled.any():
                # Neighborhood hand-off: jump straight to the storer
                # (see Router); counted so the effect is visible.
                result.fallbacks += int(np.count_nonzero(stalled))
                nxt = np.where(stalled, storers, nxt)
            result.forwarded += np.bincount(nxt, minlength=n)
            result.total_hops += int(nxt.size)
            if hop == 1:
                result.first_hop += np.bincount(nxt, minlength=n)
                prices = self._prices(
                    addresses[nxt].astype(np.uint64),
                    targets.astype(np.uint64),
                )
                result.income += np.bincount(
                    nxt, weights=prices, minlength=n
                )
                result.expenditure[origin_index] += float(prices.sum())
            arrived = nxt == storers
            arrived_count = int(np.count_nonzero(arrived))
            if arrived_count:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived_count
                )
            keep = ~arrived
            current = nxt[keep]
            targets = targets[keep]
            storers = storers[keep]


# ----------------------------------------------------------------------
# Backend protocol adapters


class SimulationBoundBackend(SimulationBackend):
    """Shared prepare(): bind a :class:`FastSimulation` to the config."""

    simulation: FastSimulation | None = None

    def prepare(self, config: FastSimulationConfig) -> "SimulationBoundBackend":
        self.config = config
        self.simulation = FastSimulation(config)
        self.overlay = self.simulation.overlay
        return self


@register_backend
class FastBackend(SimulationBoundBackend):
    """Batched numpy engine — the production default."""

    name = "fast"
    description = "batched numpy engine: whole-workload lockstep hop waves"

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        return self.simulation.run(workload)


@register_backend
class PerFileFastBackend(SimulationBoundBackend):
    """The pre-batching vectorized loop: one python iteration per file.

    Kept as a registered backend so equivalence tests and the
    before/after benchmark can compare it against the batched engine.
    """

    name = "fast-perfile"
    description = "legacy vectorized engine, one python iteration per file"

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        return self.simulation.run(workload, batched=False)


def paper_result(bucket_size: int, originator_share: float,
                 n_files: int = 10_000, *, n_nodes: int = 1000,
                 overlay_seed: int = 42,
                 workload_seed: int = 7) -> SimulationResult:
    """Run one cell of the paper's 2x2 experiment grid."""
    config = FastSimulationConfig(
        n_nodes=n_nodes,
        bucket_size=bucket_size,
        originator_share=originator_share,
        n_files=n_files,
        overlay_seed=overlay_seed,
        workload_seed=workload_seed,
    )
    return FastSimulation(config).run()
