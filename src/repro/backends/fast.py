"""Vectorized whole-network simulator for paper-scale runs.

The paper's headline experiment downloads 10 000 files of 100–1000
chunks each — about 5.5 million chunk retrievals over a 1000-node
overlay. The object-oriented reference simulator
(:class:`~repro.swarm.network.SwarmNetwork`) observes every SWAP
channel and is deliberately not built for that volume; this module is
the production backend:

* :class:`NextHopTable` precomputes, for every (node, target address)
  pair, the greedy forwarding decision as one dense numpy matrix —
  routing a chunk becomes a table lookup;
* :class:`FastSimulation` flattens the *whole workload* into per-chunk
  origin/target/storer columns and routes every in-flight chunk in
  lockstep hop waves, accumulating exactly the per-node quantities
  the paper's figures need (chunks forwarded, chunks served as paid
  first hop, income in accounting units). The legacy per-file loop is
  kept behind ``run(batched=False)`` for cross-validation and
  benchmarking.

The hop-wave loop is memory-bandwidth-bound (tens of millions of
random table gathers), so the kernel is built around a compact
**terminal-coded** table: entries live in the smallest sufficient
unsigned dtype (:func:`table_entry_dtype`, ``uint16`` for overlays up
to 16 383 nodes), and each coded value folds the forwarding decision
and its terminal classification into one number —

========================= =========================================
coded value ``v``         meaning
========================= =========================================
``v < n``                 forward to node ``v`` (still in flight)
``n <= v < 2n``           arrive: next hop ``v - n`` is the storer
``2n <= v < 3n``          greedy stall: fall back to storer ``v-2n``
========================= =========================================

A hop wave is then one vector add, one ``np.take`` into a reused
buffer, and one ``np.bincount(minlength=3n)`` whose three bands give
the wave's forwarded counts, arrivals, and fallback count in a single
fused pass — no sentinel scan, no storer column in the wave state, no
per-wave ``astype`` widening. In-flight state (current node + table
row offset) ping-pongs between two preallocated buffer sets, so
steady-state waves allocate almost nothing; compared to the original
int64-state kernel this roughly halves the bytes moved per hop.

Network dynamics run through the same kernel, epoch by epoch: the
workload is segmented into ``batch_files`` slabs, and a composed
:mod:`repro.scenarios` plan supplies each epoch's alive mask, storer
table (incrementally delta-patched and cached by chained fingerprint
in :mod:`repro.perf.table_cache`), cache mask, and policy overrides.
Dynamic epochs route at **static-kernel speed**: instead of carrying
a per-chunk storer column and decoding every gather, the plan keeps
the coded matrix itself patched in place with the sparse absolute
diffs of :func:`~repro.kademlia.table.coded_arrive_patch` (re-homed
storers' forward entries promoted into the arrive band, reverted on
epoch exit via the recorded undo log), and the banded wave loop adds
only a per-hop gather of a 3n-entry dead-value LUT: coded values that
point at dead nodes are sparsely rewritten to the fallback band of
the epoch's (live) storer, exactly the greedy-stall semantics the
decoded mode produced. The decoded three-column reference mode is
kept behind :data:`DECODED_DYNAMICS_ENV` for the bit-equivalence
tests; the static headline path pays for none of it either way.

Equivalence with the reference implementation is asserted by
``tests/integration/test_fast_vs_reference.py`` and
``tests/backends/test_equivalence.py`` on shared overlays. Overlays
are cached per configuration; next-hop tables are memoized by overlay
fingerprint in :mod:`repro.perf.table_cache`, which also attaches
tables published over shared memory instead of rebuilding them (the
sweep-worker path).
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..errors import ConfigurationError
from ..kademlia.address import bit_length_array, target_dtype
from ..kademlia.overlay import Overlay, OverlayConfig
from ..workloads.distributions import OriginatorPool, UniformFileSize
from ..workloads.generators import DownloadWorkload, FileDownload
from .base import SimulationBackend, register_backend
from .config import FastSimulationConfig
from .result import SimulationResult

__all__ = [
    "FastSimulationConfig",
    "NextHopTable",
    "SimulationResult",
    "FastSimulation",
    "StreamSession",
    "FastBackend",
    "PerFileFastBackend",
    "clear_caches",
    "cached_overlay",
    "cached_next_hop_table",
    "overlay_key",
    "paper_result",
    "table_entry_dtype",
    "target_dtype",
    "MAX_FAST_BITS",
    "TABLE_BUILD_LOG_ENV",
    "DECODED_DYNAMICS_ENV",
]

#: Maximum address width the vectorized backend supports; wider
#: spaces would need a sparse storer/next-hop representation.
MAX_FAST_BITS = 22

#: When set, every cold :class:`NextHopTable` build appends one
#: ``"<fingerprint> <pid>"`` line to the named file. The instrumented
#: sweep tests use this to prove a multi-worker sweep builds each
#: topology's table exactly once, independent of machine speed.
TABLE_BUILD_LOG_ENV = "REPRO_TABLE_BUILD_LOG"

#: When set (to anything non-empty), dynamic epochs route through the
#: decoded three-column reference mode instead of the patched-static
#: kernel. The two are bit-identical (asserted by the equivalence
#: tests, which flip this flag); the decoded mode is kept only as the
#: independent oracle.
DECODED_DYNAMICS_ENV = "REPRO_DECODED_DYNAMICS"

_OVERLAY_CACHE: dict[tuple, Overlay] = {}


def table_entry_dtype(n_nodes: int) -> np.dtype:
    """Smallest unsigned dtype for the terminal-coded table.

    Stored coded values reach ``3 * n_nodes - 1`` (the fallback band),
    the wave kernel's transient local-hit band reaches ``4 * n_nodes
    - 1``, and the dtype's maximum is reserved as the raw-table
    sentinel — so ``4 * n_nodes`` must stay strictly below it;
    exceeding every candidate dtype raises instead of silently
    wrapping.
    """
    for candidate in (np.uint16, np.uint32):
        if 0 < 4 * n_nodes < np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise ConfigurationError(
        f"n_nodes={n_nodes} exceeds the widest supported table dtype: the "
        f"terminal-coded table needs values up to 4*n_nodes in uint32 "
        f"with the maximum reserved as the raw-table sentinel"
    )


def clear_caches() -> None:
    """Drop every process-global simulation cache.

    Covers the overlay cache, the :mod:`repro.perf` dense-table cache
    (memoized and shared-memory-registered :class:`NextHopTable`\\ s,
    plus the writable coded-matrix working copies handed to epoch
    plans), and the delta-fingerprinted epoch cache of storer tables
    and sparse coded patches — so tests cannot leak state across
    modules through any of them.
    """
    from ..perf.table_cache import (
        global_epoch_table_cache,
        global_table_cache,
    )

    _OVERLAY_CACHE.clear()
    global_table_cache().clear()
    global_epoch_table_cache().clear()


def overlay_key(config: OverlayConfig) -> tuple:
    """Hashable cache key covering every overlay-shaping config field.

    The single source of truth for "same topology config": the
    in-process overlay cache and the sweep executor's published-table
    deduplication both key on it, so adding a field to
    :class:`OverlayConfig` only needs updating here.
    """
    return (
        config.n_nodes,
        config.bits,
        config.limits.default,
        tuple(sorted(config.limits.overrides.items())),
        config.seed,
        config.neighborhood_min,
        config.symmetric_neighborhood,
    )


def cached_overlay(config: OverlayConfig) -> Overlay:
    """Build (or reuse) the overlay for *config*."""
    key = overlay_key(config)
    overlay = _OVERLAY_CACHE.get(key)
    if overlay is None:
        overlay = Overlay.build(config)
        _OVERLAY_CACHE[key] = overlay
    return overlay


def cached_next_hop_table(overlay: Overlay) -> "NextHopTable":
    """Build (or reuse) the next-hop table for *overlay*.

    Delegates to the process-global content-addressed
    :class:`repro.perf.table_cache.TableCache`: repeated calls for the
    same topology return one shared instance, and sweep workers that
    registered a shared-memory handle attach instead of building.
    """
    from ..perf.table_cache import global_table_cache

    return global_table_cache().get(overlay)


def _log_table_build(fingerprint: str) -> None:
    """Append a build event to the instrumentation log, when enabled."""
    path = os.environ.get(TABLE_BUILD_LOG_ENV)
    if not path:
        return
    # O_APPEND keeps concurrent single-line writes from interleaving
    # when several worker processes build (which the instrumented
    # tests exist to prove does NOT happen with the cache on).
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{fingerprint} {os.getpid()}\n")


class NextHopTable:
    """Dense greedy-forwarding table for one overlay.

    ``next_hop[i, t]`` is the dense index of the peer node ``i``
    forwards a request for target address ``t`` to, or :attr:`sentinel`
    (the entry dtype's maximum value) when no known peer is XOR-closer
    than ``i`` itself (greedy terminal). ``storer[t]`` is the dense
    index of the globally closest node.

    The batched kernel routes through :attr:`coded_transposed` — the
    ``[target, node]`` layout with terminals folded in (see the module
    docstring's coding table) — while the raw ``next_hop`` matrix
    serves the legacy per-file loop and exhaustive routing tests. Both
    use :func:`table_entry_dtype`; capacity is validated (never
    silently wrapped) at construction.
    """

    def __init__(self, overlay: Overlay) -> None:
        bits = overlay.space.bits
        if bits > MAX_FAST_BITS:
            raise ConfigurationError(
                f"the vectorized backend supports at most {MAX_FAST_BITS}-bit "
                f"spaces, got {bits}; use the reference SwarmNetwork"
            )
        self.overlay = overlay
        size = overlay.space.size
        n_nodes = len(overlay)
        dtype = table_entry_dtype(n_nodes)
        self.entry_dtype = dtype
        self.sentinel = int(np.iinfo(dtype).max)
        self._n_nodes = n_nodes
        self._next_hop: np.ndarray | None = np.full(
            (n_nodes, size), self.sentinel, dtype=dtype
        )
        self.storer = overlay.storer_table().astype(dtype)
        targets = np.arange(size, dtype=np.uint64)
        addresses = overlay.address_array()
        for index, owner in enumerate(overlay.addresses):
            table = overlay.table(owner)
            peers = table.peer_array()
            if peers.size == 0:
                continue
            peer_indices = np.array(
                [overlay.index_of(int(peer)) for peer in peers],
                dtype=np.int64,
            )
            # Running minimum over the node's peers: O(m) full-space
            # passes with no (size x m) intermediate.
            best_distance = targets ^ np.uint64(owner)
            best_index = np.full(size, -1, dtype=np.int64)
            for peer, peer_index in zip(peers, peer_indices):
                distance = targets ^ peer
                closer = distance < best_distance
                best_distance = np.where(closer, distance, best_distance)
                best_index[closer] = peer_index
            # -1 wraps to the dtype's maximum — exactly the sentinel.
            self._next_hop[index] = best_index.astype(dtype)
        self.addresses = addresses
        self._coded: np.ndarray | None = None
        self._flat: np.ndarray | None = None
        self._storer_idx: np.ndarray | None = None
        self._addresses32: np.ndarray | None = None
        self._shm_segments: tuple = ()
        _log_table_build(overlay.fingerprint())

    @classmethod
    def from_arrays(cls, overlay: Overlay, *, coded: np.ndarray,
                    storer: np.ndarray, segments: tuple = ()
                    ) -> "NextHopTable":
        """Wrap a prebuilt (possibly shared-memory) coded table.

        *coded* is the C-contiguous terminal-coded ``[target, node]``
        matrix and *storer* the per-address storer index, both in the
        table's compact entry dtype; the raw ``next_hop`` matrix is
        decoded lazily if anything (the per-file loop, tests) asks for
        it. *segments* keeps whatever owns the backing buffers
        (shared-memory attachments) alive for the table's lifetime.
        Used by :mod:`repro.perf.shared` to attach published tables in
        sweep workers.
        """
        n_nodes = len(overlay)
        expected = table_entry_dtype(n_nodes)
        if coded.dtype != expected or storer.dtype != expected:
            raise ConfigurationError(
                f"prebuilt table arrays must use {expected} for "
                f"{n_nodes} nodes, got {coded.dtype}/{storer.dtype}"
            )
        if coded.shape != (overlay.space.size, n_nodes):
            raise ConfigurationError(
                f"prebuilt coded table has shape {coded.shape}, "
                f"expected {(overlay.space.size, n_nodes)}"
            )
        table = cls.__new__(cls)
        table.overlay = overlay
        table.entry_dtype = expected
        table.sentinel = int(np.iinfo(expected).max)
        table._n_nodes = n_nodes
        table._next_hop = None
        table.storer = storer
        table.addresses = overlay.address_array()
        table._coded = coded
        table._flat = None
        table._storer_idx = None
        table._addresses32 = None
        table._shm_segments = tuple(segments)
        return table

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the underlying overlay."""
        return self._n_nodes

    @property
    def next_hop(self) -> np.ndarray:
        """Raw ``[node, target]`` matrix (decoded lazily if attached)."""
        if self._next_hop is None:
            n = self._n_nodes
            raw = np.ascontiguousarray(self._coded.T)
            stalled = raw >= n * 2
            arrived = (raw >= n) & ~stalled
            np.subtract(raw, self.entry_dtype.type(n), out=raw,
                        where=arrived)
            np.copyto(raw, self.entry_dtype.type(self.sentinel),
                      where=stalled)
            self._next_hop = raw
        return self._next_hop

    @property
    def coded_transposed(self) -> np.ndarray:
        """Terminal-coded ``[target, node]`` matrix (built lazily).

        The batched engine sorts in-flight chunks by target, so this
        layout turns every hop wave's table gather into a near
        sequential walk over compact rows; the terminal coding (see
        the module docstring) lets one bincount classify every hop.
        """
        if self._coded is None:
            n = self._n_nodes
            dtype = self.entry_dtype
            coded = np.ascontiguousarray(self._next_hop.T)
            # Chunked over target rows to bound the mask temporaries.
            rows = max(1, (1 << 22) // max(1, n))
            for start in range(0, coded.shape[0], rows):
                block = coded[start:start + rows]
                storer_col = self.storer[start:start + rows, None]
                arrived = block == storer_col
                stalled = block == dtype.type(self.sentinel)
                np.add(block, dtype.type(n), out=block, where=arrived)
                np.copyto(block, storer_col + dtype.type(2 * n),
                          where=stalled)
            self._coded = coded
        return self._coded

    @property
    def flat_coded(self) -> np.ndarray:
        """:attr:`coded_transposed` raveled to 1-D (zero-copy, cached).

        The hop kernel gathers through precomputed flat indices
        (``target * n_nodes + node``) with ``np.take(..., out=...)``,
        which — unlike 2-D fancy indexing — writes straight into a
        preallocated compact buffer.
        """
        if self._flat is None:
            self._flat = self.coded_transposed.reshape(-1)
        return self._flat

    @property
    def storer_idx(self) -> np.ndarray:
        """``storer`` in the compact entry dtype (kept for callers
        that predate the dtype rework; now an alias, not a copy)."""
        if self._storer_idx is None:
            self._storer_idx = self.storer
        return self._storer_idx

    @property
    def addresses32(self) -> np.ndarray:
        """Node addresses as ``int32`` (valid: spaces are <= 22 bits)."""
        if self._addresses32 is None:
            self._addresses32 = self.addresses.astype(np.int32)
        return self._addresses32


class FastSimulation:
    """Replays a download workload against a precomputed routing table."""

    def __init__(self, config: FastSimulationConfig) -> None:
        self.config = config
        self.overlay = cached_overlay(config.overlay_config())
        self.table = cached_next_hop_table(self.overlay)
        self.space = self.overlay.space

    # ------------------------------------------------------------------
    # Pricing (vectorized mirror of repro.core.pricing)

    def _prices(self, server_addresses: np.ndarray,
                chunk_addresses: np.ndarray) -> np.ndarray:
        base = self.config.pricing_base
        if self.config.pricing == "flat":
            return np.full(len(chunk_addresses), base, dtype=np.float64)
        if self.config.pricing == "xor":
            distances = (server_addresses ^ chunk_addresses).astype(np.float64)
            return base * np.maximum(distances, 1.0) / self.space.size
        # proximity: base * max(bits - po, 1)
        diffs = server_addresses ^ chunk_addresses
        lengths = bit_length_array(diffs)  # == bits - po
        return base * np.maximum(lengths, 1).astype(np.float64)

    # ------------------------------------------------------------------
    # Execution

    def run(self, workload: DownloadWorkload | None = None, *,
            batched: bool = True,
            unpaid_origins: np.ndarray | None = None) -> SimulationResult:
        """Run the configured (or given) workload; returns the result.

        ``batched=False`` selects the legacy per-file loop (no scenario
        support) for cross-validation. ``unpaid_origins`` is a boolean
        mask over dense node indices whose downloads are never paid
        for (the free-rider model): traffic is routed and counted, but
        the first hop earns nothing and the originator spends nothing.
        """
        started = time.perf_counter()
        if workload is None:
            workload = self.config.workload()
        result = self.new_result()
        if batched:
            self._run_batched(workload, result, unpaid_origins)
        else:
            if self.config.has_scenarios:
                raise ConfigurationError(
                    "caching/churn scenarios require the batched engine; "
                    "run with batched=True"
                )
            if unpaid_origins is not None:
                raise ConfigurationError(
                    "unpaid_origins requires the batched engine"
                )
            nodes = self.overlay.address_array()
            for event in workload.events(nodes, self.space):
                self._run_file(event, result)
                result.files += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def new_result(self) -> SimulationResult:
        """A zeroed result over this simulation's overlay."""
        n = len(self.overlay)
        return SimulationResult(
            config=self.config,
            node_addresses=self.overlay.address_array().astype(np.int64),
            forwarded=np.zeros(n, dtype=np.int64),
            first_hop=np.zeros(n, dtype=np.int64),
            income=np.zeros(n, dtype=np.float64),
            expenditure=np.zeros(n, dtype=np.float64),
        )

    def flatten_events(self, events) -> tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
        """Flatten a micro-batch of download events into kernel columns.

        Returns ``(file_origins, sizes, targets)`` in the same dtypes
        and layout as ``_flatten_workload`` — per-file dense origin
        indices, per-file chunk counts, and the concatenated chunk
        addresses.
        """
        target_dt = target_dtype(self.space.bits)
        entry_dt = self.table.entry_dtype
        index_of = self.overlay.index_of
        origin_list: list[int] = []
        parts: list[np.ndarray] = []
        for event in events:
            origin_list.append(index_of(int(event.originator)))
            parts.append(
                np.asarray(event.chunk_addresses).astype(target_dt)
            )
        file_origins = np.asarray(origin_list, dtype=entry_dt)
        sizes = np.fromiter(
            (part.size for part in parts),
            dtype=np.int64, count=len(parts),
        )
        targets = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=target_dt))
        return file_origins, sizes, targets

    def run_stream(self, batches, *, n_epochs: int | None = None,
                   unpaid_origins: np.ndarray | None = None,
                   on_epoch=None) -> SimulationResult:
        """Consume an iterator of micro-batches of download events.

        *batches* yields bounded sequences of
        :class:`~repro.workloads.generators.FileDownload` events (a
        :meth:`~repro.workloads.streams.WorkloadStream.batches`
        iterator, or any iterable of event lists). Each micro-batch
        routes as one micro-epoch against a persistent
        :class:`StreamSession`, so memory stays bounded by the largest
        single batch plus the O(n_nodes) result vectors — the whole
        workload is never materialized.

        Scenario configs must pass ``n_epochs`` (the schedule is sized
        per epoch up front); feed ``batch_files``-file batches to make
        the stream bit-identical to the one-shot batch run, which
        segments epochs on exactly that boundary. ``on_epoch(epoch,
        result)`` is called after each micro-epoch with the cumulative
        result — the hook rolling aggregates hang off.
        """
        started = time.perf_counter()
        result = self.new_result()
        with StreamSession(self, result=result, n_epochs=n_epochs,
                           unpaid_origins=unpaid_origins) as session:
            for batch in batches:
                file_origins, sizes, targets = self.flatten_events(batch)
                if sizes.size == 0:
                    continue
                result.files += len(sizes)
                session.feed(np.repeat(file_origins, sizes), targets)
                if on_epoch is not None:
                    on_epoch(session.epochs_fed, result)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Batched hot path

    def _run_batched(self, workload, result: SimulationResult,
                     unpaid_origins: np.ndarray | None = None) -> None:
        """Flatten the whole workload and route it through a session.

        The one-shot run is the streaming core fed from one flatten:
        static configs feed a single micro-epoch holding the entire
        workload (one kernel invocation, exactly the pre-streaming
        behavior), scenario configs feed one ``batch_files``-file slab
        per epoch — the same loop a live stream drives incrementally.
        """
        config = self.config
        file_origins, sizes, targets = self._flatten_workload(workload)
        result.files += len(sizes)
        if targets.size == 0 and len(sizes) == 0:
            return
        origins = np.repeat(file_origins, sizes)

        if config.scenario_stack() is None:
            with StreamSession(self, result=result,
                               unpaid_origins=unpaid_origins) as session:
                session.feed(origins, targets)
            return

        starts = range(0, len(sizes), config.batch_files)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        with StreamSession(self, result=result, n_epochs=len(starts),
                           unpaid_origins=unpaid_origins) as session:
            for start in starts:
                stop = min(start + config.batch_files, len(sizes))
                lo, hi = int(offsets[start]), int(offsets[stop])
                session.feed(origins[lo:hi], targets[lo:hi])

    def _flatten_workload(self, workload):
        """(per-file origin indices, file sizes, flat targets) columns.

        For a plain :class:`DownloadWorkload` (uniform chunks, no
        catalog) the whole workload is sampled in three RNG calls that
        reproduce the streaming generator's draw stream bit-for-bit —
        numpy generators yield identical values whether ``integers``
        is called once for N draws or file-by-file. Anything else
        (traces, Zipf catalogs, custom workloads) falls back to
        draining the event stream. Origins come out in the table's
        compact entry dtype and targets in the space's compact target
        dtype, so the routing kernel never widens them.
        """
        nodes = self.overlay.address_array()
        entry_dt = self.table.entry_dtype
        target_dt = target_dtype(self.space.bits)
        if (type(workload) is DownloadWorkload
                and workload.catalog_size == 0
                and type(workload.originators) is OriginatorPool
                and type(workload.file_size) is UniformFileSize):
            rng = np.random.default_rng(workload.seed)
            if workload.pool_seed is None:
                pool = workload.originators.members(np.asarray(nodes), rng)
            else:
                pool = workload.originators.members(
                    np.asarray(nodes),
                    np.random.default_rng(workload.pool_seed),
                )
            chosen = workload.originators.sample(
                pool, workload.n_files, rng
            )
            sizes = workload.file_size.sample(
                workload.n_files, rng
            ).astype(np.int64)
            targets = rng.integers(
                0, self.space.size, size=int(sizes.sum()), dtype=np.uint64
            ).astype(target_dt)
            index_of = self.overlay.index_of
            file_origins = np.fromiter(
                (index_of(int(address)) for address in chosen),
                dtype=entry_dt, count=len(chosen),
            )
            return file_origins, sizes, targets
        origin_list: list[int] = []
        size_list: list[int] = []
        target_parts: list[np.ndarray] = []
        for event in workload.events(nodes, self.space):
            origin_list.append(self.overlay.index_of(int(event.originator)))
            size_list.append(event.n_chunks)
            target_parts.append(
                np.asarray(event.chunk_addresses).astype(target_dt)
            )
        if not target_parts:
            return (np.empty(0, dtype=entry_dt),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=target_dt))
        return (
            np.asarray(origin_list, dtype=entry_dt),
            np.asarray(size_list, dtype=np.int64),
            np.concatenate(target_parts),
        )

    def _route_batch(self, origins: np.ndarray, targets: np.ndarray,
                     result: SimulationResult, *,
                     storers: np.ndarray | None = None,
                     alive: np.ndarray | None = None,
                     cached: np.ndarray | None = None,
                     unpaid_origins: np.ndarray | None = None,
                     dead_lut: np.ndarray | None = None,
                     storer_table: np.ndarray | None = None,
                     flat_coded: np.ndarray | None = None) -> None:
        """Route one flattened batch of chunk retrievals in hop waves.

        Chunks are sorted by target first: the in-flight columns stay
        target-ordered through every compaction, so the per-wave flat-
        index gathers walk the table near sequentially.

        ``flat_coded`` selects the patched-static dynamics mode: the
        caller's epoch plan holds the coded matrix behind it patched to
        this epoch's storer set, ``dead_lut`` flags coded values that
        point at dead nodes, and ``storer_table`` (full address space)
        re-homes those to the fallback band — so every wave runs the
        same banded kernel as the static headline, storer column and
        per-gather decode gone. Local hits are detected in-band (the
        wave-1 coded value is the origin's own fallback entry exactly
        when the origin is the epoch's storer), so no prefilter is
        needed unless a cache mask requires the storer comparison
        anyway.
        """
        if origins.size == 0:
            return
        table = self.table
        dtype = table.entry_dtype
        n = table.n_nodes
        # Stable integer argsort on a compact unsigned key is a
        # radix/counting sort: O(n) for the paper's 16-bit space.
        order = np.argsort(targets, kind="stable")
        tg = np.take(targets, order)
        cur = np.take(origins, order)
        if cur.dtype != dtype:
            cur = cur.astype(dtype)
        # Per-chunk table row offset, widened to intp exactly once
        # (dtype=intp forces the multiply loop out of the compact
        # dtype, which would silently wrap).
        row = np.multiply(tg, n, dtype=np.intp)
        patched = flat_coded is not None

        if cached is None and (
                patched or (alive is None and storers is None)):
            # Headline path (and patched-static dynamics): no storer
            # column, no local-hit prefilter — wave 1 detects local
            # hits in-band (see _route_waves).
            self._route_waves(cur, tg, row, result, unpaid_origins,
                              dead_lut=dead_lut,
                              fallback_storers=storer_table,
                              flat_table=flat_coded)
            return

        if storers is None:
            st = np.take(table.storer, tg)
        else:
            st = np.take(storers, order)
            if st.dtype != dtype:
                st = st.astype(dtype)

        keep_mask = st != cur
        local_count = int(tg.size - np.count_nonzero(keep_mask))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )

        if cached is not None:
            hits = keep_mask & cached[tg]
            if hits.any():
                # Cache hits are the same kernel asked to stop after
                # the (serving) first hop.
                hit_index = np.flatnonzero(hits)
                if patched:
                    self._route_waves(
                        np.take(cur, hit_index), np.take(tg, hit_index),
                        np.take(row, hit_index), result, unpaid_origins,
                        first_hop_serves=True, dead_lut=dead_lut,
                        fallback_storers=storer_table,
                        flat_table=flat_coded,
                    )
                else:
                    self._route_waves(
                        np.take(cur, hit_index), np.take(tg, hit_index),
                        np.take(row, hit_index), result, unpaid_origins,
                        st=np.take(st, hit_index), alive=alive,
                        first_hop_serves=True,
                    )
                keep_mask &= ~hits

        n_start = int(np.count_nonzero(keep_mask))
        if not n_start:
            return
        index = np.flatnonzero(keep_mask)
        cur = np.take(cur, index)
        tg = np.take(tg, index)
        row = np.take(row, index)
        if patched:
            # Locals are prefiltered here (the cache mask needed the
            # storer comparison anyway), so the in-band wave-1 check
            # simply finds none.
            self._route_waves(cur, tg, row, result, unpaid_origins,
                              dead_lut=dead_lut,
                              fallback_storers=storer_table,
                              flat_table=flat_coded)
        elif alive is None and storers is None:
            # Caching only: locals are already filtered, so the banded
            # wave loop simply finds none.
            self._route_waves(cur, tg, row, result, unpaid_origins)
        else:
            st = np.take(st, index)
            self._route_waves(cur, tg, row, result, unpaid_origins,
                              st=st, alive=alive)

    def _route_waves(self, cur: np.ndarray, tg: np.ndarray,
                     row: np.ndarray, result: SimulationResult,
                     unpaid_origins: np.ndarray | None, *,
                     st: np.ndarray | None = None,
                     alive: np.ndarray | None = None,
                     first_hop_serves: bool = False,
                     dead_lut: np.ndarray | None = None,
                     fallback_storers: np.ndarray | None = None,
                     flat_table: np.ndarray | None = None) -> None:
        """The one epoch-segmented terminal-coded wave kernel.

        Every scenario — static, churn, caching, free-riding, and any
        composition — routes through this single loop; what used to be
        three forked kernels is now the three optional inputs:

        * ``st is None`` (the headline path): all wave state lives in
          the table's compact entry dtype and ping-pongs between two
          buffer sets, seeded by taking ownership of the freshly built
          *cur*/*row* columns (no copy-in); each wave is one vector
          add, one ``np.take`` into a reused buffer, and one banded
          bincount that fuses the forwarded counts, the arrival count,
          and the fallback counter — with no int64 widening and no
          storer column anywhere. Local hits (the origin already
          stores the chunk) are detected *in-band* at wave 1 instead
          of being prefiltered: the origin is the storer iff the coded
          wave-1 value is exactly ``2n + origin`` (storers always
          greedy-stall onto themselves), and such chunks are shunted
          into a transient fourth band (``3n..4n``) so the same
          bincount also counts them — that is why
          :func:`table_entry_dtype` reserves headroom up to ``4n``.
        * ``dead_lut``/``fallback_storers``/``flat_table`` (patched-
          static dynamics): the banded static loop runs verbatim
          against the epoch-patched coded matrix behind *flat_table*;
          the only addition is one gather per wave into the 3n-entry
          boolean *dead_lut* (L1-resident), and the sparse set of
          gathers that landed on a coded value pointing at a dead node
          is rewritten to ``2n + fallback_storers[target]`` — the same
          greedy-stall-to-live-storer semantics the decoded mode
          computes per chunk, at static-kernel cost. The wave-1
          in-band local check still works because the fixup maps an
          origin that *is* the epoch's storer onto its own fallback
          entry.
        * ``st``/``alive`` (the decoded reference mode, kept behind
          :data:`DECODED_DYNAMICS_ENV`): a per-chunk storer column is
          carried because the epoch's alive mask may re-home chunks
          to the closest *live* node, which the statically coded table
          cannot know; each coded gather is decoded back to raw
          next-hop semantics, dead next hops fall back to the storer,
          and termination is ``next == storer``. Locals arrive
          prefiltered by :meth:`_route_batch` on this path.
        * ``first_hop_serves`` (cache hits): wave 1 runs with full
          payment/accounting, then every chunk terminates — the
          cached copy on the originator's first hop served it.
        """
        table = self.table
        dtype = table.entry_dtype
        n = table.n_nodes
        if flat_table is None:
            flat_table = table.flat_coded
        n_start = int(cur.size)
        dynamic = st is not None
        if dynamic:
            src = (cur, st, row)
            dst = (np.empty(n_start, dtype), np.empty(n_start, dtype),
                   np.empty(n_start, np.intp))
            nxt_buf = keep_buf = dead_buf = None
        else:
            src = (cur, row)
            dst = (np.empty(n_start, dtype), np.empty(n_start, np.intp))
            nxt_buf = np.empty(n_start, dtype)
            keep_buf = np.empty(n_start, bool)
            dead_buf = (np.empty(n_start, bool) if dead_lut is not None
                        else None)
        first_tg = tg
        flat_buf = np.empty(n_start, np.intp)
        size = n_start
        hop = 0
        while size:
            hop += 1
            cur_w = src[0][:size]
            row_w = src[-1][:size]
            st_w = src[1][:size] if dynamic else None
            flat = flat_buf[:size]
            np.add(row_w, cur_w, out=flat)
            local_count = 0
            local_mask = None
            if dynamic:
                coded = np.take(flat_table, flat, mode="clip")
                stalled = coded >= dtype.type(2 * n)
                nxt = coded
                arrived_band = (nxt >= dtype.type(n)) & ~stalled
                np.subtract(nxt, dtype.type(n), out=nxt,
                            where=arrived_band)
                if alive is not None:
                    # A dead next hop behaves like a greedy terminal:
                    # the request jumps straight to the (live) storer.
                    valid = ~stalled
                    dead = np.zeros_like(stalled)
                    dead[valid] = ~alive[nxt[valid]]
                    stalled |= dead
                n_stalled = int(np.count_nonzero(stalled))
                if n_stalled:
                    result.fallbacks += n_stalled
                    nxt[stalled] = st_w[stalled]
                np.copyto(flat, nxt)
                wave_counts = np.bincount(flat, minlength=n)
            else:
                nxt = nxt_buf[:size]
                # mode="clip" skips the bounds check; row + cur is in
                # range by construction (row <= (space-1)*n, cur < n).
                np.take(flat_table, flat, out=nxt, mode="clip")
                if dead_lut is not None:
                    # Patched-static dynamics: coded values pointing
                    # at dead nodes (forward, arrive, or stale stall
                    # entries alike — the LUT tiles ~alive over all
                    # three bands) greedy-stall to the epoch's live
                    # storer, sparsely.
                    dead = dead_buf[:size]
                    np.take(dead_lut, nxt, out=dead, mode="clip")
                    dead_idx = np.flatnonzero(dead)
                    if dead_idx.size:
                        nxt[dead_idx] = dtype.type(2 * n) + (
                            fallback_storers[row_w[dead_idx] // n]
                        )
                if hop == 1:
                    local_mask = nxt == cur_w + dtype.type(2 * n)
                    local_count = int(np.count_nonzero(local_mask))
                    if local_count:
                        nxt[local_mask] += dtype.type(n)
                        result.local_hits += local_count
                        result.hop_histogram[0] = (
                            result.hop_histogram.get(0, 0) + local_count
                        )
                    else:
                        local_mask = None
                # The gather indices are spent: recycle the intp
                # buffer as bincount input so bincount sees contiguous
                # intp and skips an internal widening copy of a fresh
                # allocation.
                np.copyto(flat, nxt)
                bands = np.bincount(flat, minlength=4 * n)
                wave_counts = (bands[:n] + bands[n:2 * n]
                               + bands[2 * n:3 * n])
                fallbacks = int(bands[2 * n:3 * n].sum())
                if fallbacks:
                    # Neighborhood hand-off: jump straight to the
                    # storer (see Router); counted so the effect is
                    # visible.
                    result.fallbacks += fallbacks
            result.forwarded += wave_counts
            result.total_hops += size - local_count
            if hop == 1:
                result.first_hop += wave_counts
                if dynamic:
                    self._pay_first_hop(
                        result, nxt, first_tg, cur_w, unpaid_origins,
                        servers_intp=flat,
                    )
                else:
                    servers = self._decode_servers(nxt, n)
                    np.copyto(flat, servers)
                    self._pay_first_hop(
                        result, servers, first_tg, cur_w, unpaid_origins,
                        servers_intp=flat, suppressed=local_mask,
                    )
                if first_hop_serves:
                    served = size - local_count
                    result.cache_hits += served
                    result.hop_histogram[1] = (
                        result.hop_histogram.get(1, 0) + served
                    )
                    return
            if dynamic:
                keep = nxt != st_w
            else:
                keep = keep_buf[:size]
                np.less(nxt, dtype.type(n), out=keep)
            survivors = int(np.count_nonzero(keep))
            arrived = size - survivors - local_count
            if arrived:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived
                )
            if survivors:
                index = np.flatnonzero(keep)
                np.take(nxt, index, out=dst[0][:survivors])
                if dynamic:
                    np.take(st_w, index, out=dst[1][:survivors])
                np.take(row_w, index, out=dst[-1][:survivors])
            src, dst = dst, src
            size = survivors

    @staticmethod
    def _decode_servers(coded: np.ndarray, n: int) -> np.ndarray:
        """Coded hop values -> actual next-hop node indices (a copy)."""
        servers = coded.copy()
        dtype = servers.dtype
        high = servers >= dtype.type(2 * n)
        np.subtract(servers, dtype.type(2 * n), out=servers, where=high)
        mid = servers >= dtype.type(n)
        np.subtract(servers, dtype.type(n), out=servers, where=mid)
        return servers

    def _pay_first_hop(self, result: SimulationResult, servers: np.ndarray,
                       targets: np.ndarray, origins: np.ndarray,
                       unpaid_origins: np.ndarray | None,
                       servers_intp: np.ndarray | None = None,
                       suppressed: np.ndarray | None = None) -> None:
        """First-hop pricing and income/expenditure accounting.

        ``servers_intp``, when given, is the same index vector as
        *servers* already widened to contiguous intp (the hop kernel
        has one lying around), letting the weighted bincount skip an
        internal conversion copy. ``suppressed`` marks chunks that
        must not be paid at all (in-band local hits: nothing was
        served over the network).
        """
        n = len(result.node_addresses)
        index = servers if servers_intp is None else servers_intp
        if self.config.pricing == "xor":
            # Inlined _prices on int32: addresses fit in 22 bits.
            distances = np.take(self.table.addresses32, index)
            np.bitwise_xor(distances, targets, out=distances,
                           casting="unsafe")
            np.maximum(distances, 1, out=distances)
            prices = distances.astype(np.float64)
            prices *= self.config.pricing_base / self.space.size
        else:
            prices = self._prices(
                self.table.addresses[servers].astype(np.uint64),
                targets.astype(np.uint64),
            )
        if unpaid_origins is not None:
            prices[unpaid_origins[origins]] = 0.0
        if suppressed is not None:
            prices[suppressed] = 0.0
        result.income += np.bincount(index, weights=prices, minlength=n)
        result.expenditure += np.bincount(origins, weights=prices,
                                          minlength=n)

    # ------------------------------------------------------------------
    # Legacy per-file loop (kept for cross-validation and benchmarks)

    def _run_file(self, event: FileDownload,
                  result: SimulationResult) -> None:
        """Route every chunk of one file and accumulate the counters."""
        chunks = event.chunk_addresses.astype(np.int64)
        n = self.table.n_nodes
        sentinel = self.table.sentinel
        origin_index = self.overlay.index_of(event.originator)
        storer_index = self.table.storer[chunks].astype(np.int64)
        result.chunks += len(chunks)

        local = storer_index == origin_index
        local_count = int(np.count_nonzero(local))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )
        alive = ~local
        current = np.full(int(np.count_nonzero(alive)), origin_index,
                          dtype=np.int64)
        targets = chunks[alive]
        storers = storer_index[alive]
        addresses = result.node_addresses
        hop = 0
        while current.size:
            hop += 1
            nxt = self.table.next_hop[current, targets].astype(np.int64)
            stalled = nxt == sentinel
            if stalled.any():
                # Neighborhood hand-off: jump straight to the storer
                # (see Router); counted so the effect is visible.
                result.fallbacks += int(np.count_nonzero(stalled))
                nxt = np.where(stalled, storers, nxt)
            wave_counts = np.bincount(nxt, minlength=n)
            result.forwarded += wave_counts
            result.total_hops += int(nxt.size)
            if hop == 1:
                result.first_hop += wave_counts
                prices = self._prices(
                    addresses[nxt].astype(np.uint64),
                    targets.astype(np.uint64),
                )
                result.income += np.bincount(
                    nxt, weights=prices, minlength=n
                )
                result.expenditure[origin_index] += float(prices.sum())
            arrived = nxt == storers
            arrived_count = int(np.count_nonzero(arrived))
            if arrived_count:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived_count
                )
            keep = ~arrived
            current = nxt[keep]
            targets = targets[keep]
            storers = storers[keep]


# ----------------------------------------------------------------------
# The streaming micro-epoch session


class StreamSession:
    """Persistent micro-epoch execution state for one simulation.

    A session owns everything the scenario path used to rebuild per
    run — the :class:`~repro.scenarios.plan.EpochPlan` (alive masks,
    delta-patched storer tables, cache state, coded patches) and the
    shared working coded matrix — and keeps them alive *across*
    micro-batches: :meth:`feed` routes one flattened batch of chunk
    columns as the next epoch, executing exactly the loop body the
    one-shot batch run executes per ``batch_files`` slab. That makes
    a stream of slab-sized batches bit-identical to the batch run
    (the streaming golden tests pin every counter), and it is what
    lets ``repro-swarm serve`` run indefinitely in bounded memory:
    session state is O(n_nodes) + the coded patches, independent of
    how many batches flow through.

    Always :meth:`close` the session (or use it as a context manager)
    — the working coded matrix is shared across runs and must be
    restored to its pristine state.
    """

    def __init__(self, simulation: "FastSimulation", *,
                 result: SimulationResult | None = None,
                 n_epochs: int | None = None,
                 unpaid_origins: np.ndarray | None = None,
                 timestamps: np.ndarray | None = None,
                 router=None) -> None:
        self.simulation = simulation
        config = simulation.config
        self.result = (simulation.new_result() if result is None
                       else result)
        self.n_epochs = None if n_epochs is None else int(n_epochs)
        self._unpaid = unpaid_origins
        self._entry_dt = simulation.table.entry_dtype
        # router lets the time backend ride the same session: it is
        # called like _route_batch plus an ids= column for path
        # attribution. Router sessions always take the patched-static
        # path (the recording kernel has no decoded mode).
        self._router = router
        self._decoded_reference = router is None and bool(
            os.environ.get(DECODED_DYNAMICS_ENV)
        )
        self._epoch = 0
        self._closed = False
        self.plan = None
        self._flat_working = None
        scenario = config.scenario_stack()
        if scenario is not None:
            if self.n_epochs is None:
                raise ConfigurationError(
                    "streaming a scenario run needs the epoch count up "
                    "front (schedules are sized per epoch); pass "
                    "n_epochs — for a bounded workload that is "
                    "ceil(n_files / batch_files)"
                )
            from ..scenarios.base import ScenarioContext
            from ..scenarios.plan import EpochPlan

            coded_working = None
            if not self._decoded_reference:
                from ..perf.table_cache import global_table_cache

                coded_working = global_table_cache().writable_coded(
                    simulation.table
                )
                self._flat_working = coded_working.reshape(-1)
            self.plan = EpochPlan(
                scenario,
                ScenarioContext(
                    n_nodes=simulation.table.n_nodes,
                    n_epochs=self.n_epochs,
                    space_size=simulation.space.size,
                    overlay_seed=config.overlay_seed,
                ),
                table_fingerprint=simulation.overlay.fingerprint(),
                base_storers=simulation.table.storer,
                addresses=simulation.overlay.address_array(),
                coded=coded_working,
                timestamps=timestamps,
            )

    @property
    def epochs_fed(self) -> int:
        """How many micro-epochs have been routed so far."""
        return self._epoch

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def _route(self, origins, targets, result, ids, **kwargs) -> None:
        """Dispatch one routing call to the kernel or the router."""
        if self._router is None:
            self.simulation._route_batch(origins, targets, result,
                                         **kwargs)
        else:
            # Router sessions never take the decoded path, so an
            # `alive` kwarg only ever arrives here as None.
            kwargs.pop("alive", None)
            self._router(origins, targets, result, ids=ids, **kwargs)

    def feed(self, origins: np.ndarray, targets: np.ndarray, *,
             into: SimulationResult | None = None,
             ids: np.ndarray | None = None) -> SimulationResult:
        """Route one micro-epoch of flattened origin/target columns.

        *origins* are dense node indices (one per chunk), *targets*
        the chunk addresses — the same columns the flatten path
        produces. Counters accumulate into the session's cumulative
        result, or into *into* when given (the serve daemon routes
        each micro-epoch into a fresh scratch result and absorbs it
        into a mergeable aggregator). *ids* is the per-chunk id
        column router sessions thread through to the path recorder.
        """
        if self._closed:
            raise ConfigurationError(
                "this stream session is closed; open a new one"
            )
        result = self.result if into is None else into
        simulation = self.simulation
        if self.plan is None:
            result.chunks += int(origins.size)
            self._route(origins, targets, result, ids,
                        unpaid_origins=self._unpaid)
            self._epoch += 1
            return result
        if self._epoch >= self.n_epochs:
            raise ConfigurationError(
                f"this stream session was sized for {self.n_epochs} "
                f"epoch(s) and they are all consumed; size n_epochs "
                f"to the stream's full length"
            )
        state = self.plan.epoch(self._epoch)
        slab_origins = origins
        slab_targets = targets
        slab_ids = ids
        result.chunks += int(slab_origins.size)
        if state.origin_map is not None:
            slab_origins = state.origin_map[slab_origins].astype(
                self._entry_dt
            )
        unpaid = self._unpaid
        if state.unpaid is not None:
            unpaid = (state.unpaid if unpaid is None
                      else state.unpaid | unpaid)
        alive = state.alive
        storers = None
        storer_table = None
        if alive is not None:
            if not alive.any():
                result.unavailable += int(slab_origins.size)
                self._epoch += 1
                return result
            storer_table = (state.storers if state.storers is not None
                            else simulation.table.storer)
            storers = storer_table[slab_targets]
            # Under re-homing every epoch storer is alive, so the
            # second clause only bites for static placement.
            dead = ~alive[slab_origins] | ~alive[storers]
            if dead.any():
                result.unavailable += int(np.count_nonzero(dead))
                keep = ~dead
                slab_origins = slab_origins[keep]
                slab_targets = slab_targets[keep]
                storers = storers[keep]
                if slab_ids is not None:
                    slab_ids = slab_ids[keep]
        cache = state.cache
        if alive is not None and not self._decoded_reference:
            # Patched-static dynamics: the plan has already patched
            # the working matrix to this epoch's storers, so the
            # banded kernel runs as-is plus the dead-value LUT.
            self._route(
                slab_origins, slab_targets, result, slab_ids,
                storers=storers,
                cached=None if cache is None else cache.mask,
                unpaid_origins=unpaid,
                dead_lut=state.dead_lut,
                storer_table=storer_table,
                flat_coded=self._flat_working,
            )
        else:
            self._route(
                slab_origins, slab_targets, result, slab_ids,
                storers=storers, alive=alive,
                cached=None if cache is None else cache.mask,
                unpaid_origins=unpaid,
            )
        if cache is not None:
            # Every chunk retrieved this epoch is now cached on its
            # delivery path (mask model of path caching).
            cache.insert(slab_targets)
        self._epoch += 1
        return result

    def close(self) -> None:
        """Restore the shared coded matrix; the session is done."""
        if self._closed:
            return
        self._closed = True
        if self.plan is not None:
            # The working matrix is shared across runs (and, for
            # built tables, IS the table) — always leave it pristine.
            self.plan.restore_coded()


# ----------------------------------------------------------------------
# Backend protocol adapters


class SimulationBoundBackend(SimulationBackend):
    """Shared prepare(): bind a :class:`FastSimulation` to the config."""

    uses_next_hop_table = True

    simulation: FastSimulation | None = None

    def prepare(self, config: FastSimulationConfig) -> "SimulationBoundBackend":
        self.config = config
        self.simulation = FastSimulation(config)
        self.overlay = self.simulation.overlay
        return self


@register_backend
class FastBackend(SimulationBoundBackend):
    """Batched numpy engine — the production default."""

    name = "fast"
    description = "batched numpy engine: whole-workload lockstep hop waves"

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        return self.simulation.run(workload)


@register_backend
class PerFileFastBackend(SimulationBoundBackend):
    """The pre-batching vectorized loop: one python iteration per file.

    Kept as a registered backend so equivalence tests and the
    before/after benchmark can compare it against the batched engine.
    """

    name = "fast-perfile"
    description = "legacy vectorized engine, one python iteration per file"

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        return self.simulation.run(workload, batched=False)


def paper_result(bucket_size: int, originator_share: float,
                 n_files: int = 10_000, *, n_nodes: int = 1000,
                 overlay_seed: int = 42,
                 workload_seed: int = 7) -> SimulationResult:
    """Run one cell of the paper's 2x2 experiment grid."""
    config = FastSimulationConfig(
        n_nodes=n_nodes,
        bucket_size=bucket_size,
        originator_share=originator_share,
        n_files=n_files,
        overlay_seed=overlay_seed,
        workload_seed=workload_seed,
    )
    return FastSimulation(config).run()
