"""Backend adapter for the object-oriented reference simulator.

Wraps :class:`~repro.swarm.network.SwarmNetwork` behind the
:class:`~repro.backends.base.SimulationBackend` protocol so the same
experiment runners, benchmarks, and equivalence tests can drive the
reference implementation and the vectorized engine interchangeably.
Every chunk movement still updates the full SWAP ledger — use this for
observability and cross-validation, not for paper-scale volume.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigurationError
from ..swarm.chunk import FileManifest
from ..swarm.network import SwarmNetwork, SwarmNetworkConfig
from .base import SimulationBackend, register_backend
from .config import FastSimulationConfig
from .result import SimulationResult

__all__ = ["ReferenceBackend"]


@register_backend
class ReferenceBackend(SimulationBackend):
    """The observable SwarmNetwork behind the backend protocol."""

    name = "reference"
    description = "object-oriented SwarmNetwork with full SWAP accounting"

    network: SwarmNetwork | None = None

    def __init__(self, cache: str = "none", cache_capacity: int = 128) -> None:
        self._cache = cache
        self._cache_capacity = cache_capacity

    def prepare(self, config: FastSimulationConfig) -> "ReferenceBackend":
        if config.has_scenarios:
            raise ConfigurationError(
                "the caching/churn scenario fields are vectorized-backend "
                "only; the reference network models real caches via "
                "ReferenceBackend(cache='lru'|'lfu') and churn via "
                "repro.swarm.churn"
            )
        self.config = config
        self.network = SwarmNetwork(SwarmNetworkConfig(
            overlay=config.overlay_config(),
            pricing=config.pricing,
            pricing_base=config.pricing_base,
            cache=self._cache,
            cache_capacity=self._cache_capacity,
        ))
        self.overlay = self.network.overlay
        return self

    def run(self, workload=None) -> SimulationResult:
        config = self._require_prepared()
        network = self.network
        assert network is not None
        started = time.perf_counter()
        if workload is None:
            workload = config.workload()
        nodes = network.overlay.address_array()
        hop_histogram: dict[int, int] = {}
        files = chunks = total_hops = local_hits = cache_hits = 0
        for event in workload.events(nodes, network.overlay.space):
            manifest = FileManifest(
                file_id=event.file_id,
                chunk_addresses=tuple(
                    int(a) for a in event.chunk_addresses
                ),
            )
            receipt = network.download_file(int(event.originator), manifest)
            files += 1
            chunks += receipt.chunks
            cache_hits += receipt.cache_hits
            for retrieval in receipt.retrievals:
                hops = retrieval.route.hops
                total_hops += hops
                hop_histogram[hops] = hop_histogram.get(hops, 0) + 1
                if hops == 0:
                    local_hits += 1
        addresses = list(network.addresses)
        ledger = network.incentives.ledger
        expenditure = np.array(
            [ledger.expenditure[address] for address in addresses],
            dtype=np.float64,
        )
        return SimulationResult(
            config=config,
            node_addresses=np.asarray(addresses, dtype=np.int64),
            forwarded=network.forwarded_per_node(),
            first_hop=network.first_hop_per_node(),
            income=network.income_per_node(),
            expenditure=expenditure,
            files=files,
            chunks=chunks,
            total_hops=total_hops,
            local_hits=local_hits,
            cache_hits=cache_hits,
            hop_histogram=hop_histogram,
            elapsed_seconds=time.perf_counter() - started,
        )
