"""The time-domain simulation backend (``--backend time``).

The hop kernel answers "how many hops and who forwarded"; this module
answers "*when* did each chunk arrive". It runs in two phases:

1. **Path recording** — the same terminal-coded routing matrices, the
   same target-sorted hop waves, the same epoch-patched scenario
   plumbing as :class:`~repro.backends.fast.FastSimulation`, with one
   addition: each wave also records ``(chunk id, receiver)`` so every
   retrieval leaves a concrete node path behind. Every counter
   (forwarded, first-hop, hop histogram, income, fallbacks, cache
   hits) is computed with the same arithmetic in the same order, so
   the hop-count projection of a time run is **bit-identical** to the
   fast backend — the golden-fixture equivalence suite pins this.
2. **Fluid timeline** — a vectorized event wheel over the recorded
   paths, driven by the :class:`~repro.engine.des.EventScheduler`.
   Each in-flight chunk carries ``(remaining_bytes, path, hop_index)``;
   a transfer's rate is the fair share
   ``min(up / sender_out, down / receiver_in)`` of its endpoints'
   finite bandwidth, recomputed only at arrival/departure events.
   Fixed per-hop propagation (``2 * hops * hop_latency_ms``: request
   out, data back) is folded into the chunk's release time, so the
   wheel only simulates the bandwidth-bound data hops. A positive
   ``time_quantum_ms`` batches completions into slots, bounding the
   number of bandwidth recomputations for paper-scale runs.

With unbounded bandwidth and no concurrency cap the wheel collapses
to closed form (latency = ``2 * hops * hop_latency``), which is both
the equivalence mode against the static kernel and the pure
propagation-delay model.

Not supported here: the decoded three-column reference mode
(:data:`~repro.backends.fast.DECODED_DYNAMICS_ENV` is ignored —
dynamic epochs always route through the patched-static kernel) and
the legacy per-file loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..engine.des import EventScheduler
from ..errors import SimulationError
from ..workloads.distributions import PoissonArrivals
from .base import SimulationBackend, register_backend
from .config import FastSimulationConfig
from .fast import FastSimulation
from .result import SimulationResult

__all__ = ["TimedSimulation", "TimeBackend", "ChunkPaths", "FluidWheel"]

#: Decimal megabit per second -> bytes per second.
MBPS_TO_BYTES = 1e6 / 8.0

#: A transfer counts as complete when this many bytes (or fewer)
#: remain — absorbs float error in ``remaining -= rate * dt``.
_EPS_BYTES = 1e-6


# ----------------------------------------------------------------------
# Phase 1: path recording


@dataclass
class ChunkPaths:
    """The per-chunk delivery paths one routing pass recorded.

    ``hops[c]`` is chunk *c*'s network path length (0 for chunks that
    never touched the network: local hits and unavailable chunks).
    ``nodes[offsets[c]:offsets[c] + hops[c]]`` are the nodes the
    *request* visited in hop order; the last entry is the node that
    served the chunk, and the data retraces the path in reverse.
    ``zero_ids`` are the local hits (retrieved instantly, latency 0);
    chunks with ``hops == 0`` that are not in ``zero_ids`` were
    unavailable and produce no latency sample.
    """

    hops: np.ndarray
    offsets: np.ndarray
    nodes: np.ndarray
    zero_ids: np.ndarray

    @property
    def routed_ids(self) -> np.ndarray:
        """Chunk ids that actually traversed the network."""
        return np.flatnonzero(self.hops > 0)


class _PathRecorder:
    """Accumulates per-wave receivers into flat per-chunk paths."""

    def __init__(self, n_chunks: int) -> None:
        self.n_chunks = n_chunks
        self._waves: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._zero: list[np.ndarray] = []

    def record_wave(self, depth: int, ids: np.ndarray,
                    receivers: np.ndarray) -> None:
        """Chunks *ids* were forwarded to *receivers* at wave *depth*."""
        if ids.size:
            self._waves.setdefault(depth, []).append(
                (ids, receivers.astype(np.int32))
            )

    def record_zero_hop(self, ids: np.ndarray) -> None:
        """Chunks *ids* were local hits (no network path)."""
        if ids.size:
            self._zero.append(ids)

    def assemble(self) -> ChunkPaths:
        """Flatten the recorded waves into contiguous per-chunk paths."""
        hops = np.zeros(self.n_chunks, dtype=np.int32)
        for pairs in self._waves.values():
            for ids, _ in pairs:
                hops[ids] += 1
        offsets = np.zeros(self.n_chunks + 1, dtype=np.int64)
        np.cumsum(hops, out=offsets[1:])
        nodes = np.empty(int(offsets[-1]), dtype=np.int32)
        # A chunk in flight at wave d was in flight at every wave
        # before it, so its wave-d receiver sits at path position d-1.
        for depth, pairs in self._waves.items():
            for ids, receivers in pairs:
                nodes[offsets[ids] + (depth - 1)] = receivers
        zero = (np.concatenate(self._zero) if self._zero
                else np.empty(0, dtype=np.int64))
        return ChunkPaths(hops=hops, offsets=offsets[:-1], nodes=nodes,
                          zero_ids=np.sort(zero))


# ----------------------------------------------------------------------
# Phase 2: the fluid event wheel


class FluidWheel:
    """Fair-share fluid transfer timeline over recorded paths.

    One instance simulates the data movement of every routed chunk:
    chunk *j* is released into the wheel at ``release[j]`` (arrival
    time plus total fixed propagation) and its payload then crosses
    the recorded path in reverse, one bandwidth-bound transfer per
    hop. All state is structure-of-arrays over the currently active
    transfers; the :class:`EventScheduler` sequences release batches
    and completion slots, with stale completion events invalidated by
    a generation counter (lazy cancellation).
    """

    def __init__(self, *, n_nodes: int, chunk_bytes: float,
                 up_bytes_s: float, down_bytes_s: float,
                 max_concurrent: int, quantum_s: float,
                 release_s: np.ndarray, hops: np.ndarray,
                 offsets: np.ndarray, nodes: np.ndarray,
                 origins: np.ndarray) -> None:
        self.n_nodes = n_nodes
        self.chunk_bytes = float(chunk_bytes)
        self.up = up_bytes_s if up_bytes_s > 0 else np.inf
        self.down = down_bytes_s if down_bytes_s > 0 else np.inf
        self.cap = int(max_concurrent)
        self.quantum = float(quantum_s)
        self.hops = hops
        self.offsets = offsets
        self.nodes = nodes
        self.origins = origins
        if self.quantum > 0:
            release_s = self._snap_up(release_s)
        self.release = release_s
        m = release_s.size
        self.done = np.full(m, -1.0)
        # Active transfers (structure of arrays).
        self._chunk = np.empty(0, dtype=np.int64)
        self._hop = np.empty(0, dtype=np.int32)
        self._sender = np.empty(0, dtype=np.int64)
        self._receiver = np.empty(0, dtype=np.int64)
        self._remaining = np.empty(0, dtype=np.float64)
        self._rate = np.empty(0, dtype=np.float64)
        # FIFO admission queue (only populated when cap > 0).
        self._q_chunk = np.empty(0, dtype=np.int64)
        self._q_hop = np.empty(0, dtype=np.int32)
        self._q_sender = np.empty(0, dtype=np.int64)
        self._q_receiver = np.empty(0, dtype=np.int64)
        self._last = 0.0
        self._gen = 0

    # -- helpers -------------------------------------------------------

    def _snap_up(self, t):
        """Quantize times up to the next slot boundary (vector or scalar)."""
        q = self.quantum
        return np.ceil(np.asarray(t) / q - 1e-12) * q

    def _endpoints(self, chunks: np.ndarray,
                   hop: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sender, receiver) node indices of data-hop *hop* per chunk.

        Data-hop 0 leaves the serving node (the last request hop);
        the final data-hop delivers to the originator.
        """
        pos = self.offsets[chunks] + (self.hops[chunks] - 1 - hop)
        sender = self.nodes[pos].astype(np.int64)
        last = hop == self.hops[chunks] - 1
        receiver = np.where(
            last, self.origins[chunks],
            self.nodes[np.maximum(pos - 1, 0)],
        ).astype(np.int64)
        return sender, receiver

    def _enqueue(self, chunks: np.ndarray, hop: np.ndarray) -> None:
        """Request data-hop *hop* for *chunks* (activate or queue)."""
        if chunks.size == 0:
            return
        sender, receiver = self._endpoints(chunks, hop)
        if self.cap == 0:
            self._activate(chunks, hop, sender, receiver)
            return
        self._q_chunk = np.concatenate((self._q_chunk, chunks))
        self._q_hop = np.concatenate((self._q_hop, hop.astype(np.int32)))
        self._q_sender = np.concatenate((self._q_sender, sender))
        self._q_receiver = np.concatenate((self._q_receiver, receiver))

    def _activate(self, chunks, hop, sender, receiver) -> None:
        self._chunk = np.concatenate((self._chunk, chunks))
        self._hop = np.concatenate((self._hop, hop.astype(np.int32)))
        self._sender = np.concatenate((self._sender, sender))
        self._receiver = np.concatenate((self._receiver, receiver))
        self._remaining = np.concatenate((
            self._remaining,
            np.full(chunks.size, self.chunk_bytes),
        ))

    def _admit(self) -> None:
        """Move queued requests whose sender has a free slot to active.

        FIFO per sender: among the queued requests of one sender, the
        oldest fill the free slots (queue arrays are kept in request
        order, so rank-in-queue is rank-in-time).
        """
        if self.cap == 0 or self._q_chunk.size == 0:
            return
        busy = np.bincount(self._sender, minlength=self.n_nodes)
        free = self.cap - busy
        senders = self._q_sender
        by_sender = np.argsort(senders, kind="stable")
        sorted_senders = senders[by_sender]
        starts = np.concatenate(
            ([True], sorted_senders[1:] != sorted_senders[:-1])
        )
        position = np.arange(senders.size)
        group_first = position[starts]
        group_id = np.cumsum(starts) - 1
        rank = np.empty(senders.size, dtype=np.int64)
        rank[by_sender] = position - group_first[group_id]
        admit = rank < free[senders]
        if not admit.any():
            return
        self._activate(self._q_chunk[admit], self._q_hop[admit],
                       self._q_sender[admit], self._q_receiver[admit])
        keep = ~admit
        self._q_chunk = self._q_chunk[keep]
        self._q_hop = self._q_hop[keep]
        self._q_sender = self._q_sender[keep]
        self._q_receiver = self._q_receiver[keep]

    def _recompute_rates(self) -> None:
        """Fair-share rate per active transfer at the current instant."""
        if self._chunk.size == 0:
            self._rate = np.empty(0, dtype=np.float64)
            return
        out = np.bincount(self._sender, minlength=self.n_nodes)
        inn = np.bincount(self._receiver, minlength=self.n_nodes)
        self._rate = np.minimum(
            self.up / out[self._sender], self.down / inn[self._receiver]
        )

    def _advance(self, now: float) -> None:
        """Progress every active transfer to *now* at its last rate."""
        dt = now - self._last
        if dt > 0 and self._remaining.size:
            finite = np.isfinite(self._rate)
            self._remaining[finite] -= self._rate[finite] * dt
        self._last = now

    def _complete(self, now: float) -> None:
        """Retire finished transfers; chain or finish their chunks."""
        finished = self._remaining <= _EPS_BYTES
        infinite = ~np.isfinite(self._rate)
        if infinite.any():
            # Unbounded endpoints transfer instantaneously.
            finished |= infinite
        if not finished.any():
            # The scheduled completion instant is exact up to float
            # error; retire the nearest transfer so the wheel always
            # makes progress.
            finished = self._remaining <= self._remaining.min() + _EPS_BYTES
        chunks = self._chunk[finished]
        hop = self._hop[finished]
        keep = ~finished
        self._chunk = self._chunk[keep]
        self._hop = self._hop[keep]
        self._sender = self._sender[keep]
        self._receiver = self._receiver[keep]
        self._remaining = self._remaining[keep]
        self._rate = self._rate[keep]
        last_hop = hop == self.hops[chunks] - 1
        self.done[chunks[last_hop]] = now
        ongoing = ~last_hop
        if ongoing.any():
            self._enqueue(chunks[ongoing], hop[ongoing] + 1)

    def _reschedule(self, scheduler: EventScheduler) -> None:
        """Schedule the next completion slot (invalidating older ones)."""
        self._gen += 1
        if self._chunk.size == 0:
            return
        generation = self._gen
        finite = np.isfinite(self._rate)
        if finite.all():
            dt = float((self._remaining / self._rate).min())
        else:
            dt = 0.0
        when = self._last + dt
        if self.quantum > 0:
            when = float(self._snap_up(when))
        when = max(when, scheduler.now)

        def handler(s: EventScheduler, t: float) -> None:
            if generation != self._gen:
                return
            self._advance(t)
            self._complete(t)
            self._admit()
            self._recompute_rates()
            self._reschedule(s)

        scheduler.schedule_at(when, handler, name="complete")

    # -- driver --------------------------------------------------------

    def run(self) -> np.ndarray:
        """Simulate every transfer; returns per-chunk completion times."""
        if self.release.size == 0:
            return self.done
        order = np.argsort(self.release, kind="stable")
        sorted_release = self.release[order]
        boundaries = np.concatenate((
            [0],
            np.flatnonzero(sorted_release[1:] != sorted_release[:-1]) + 1,
            [sorted_release.size],
        ))
        scheduler = EventScheduler()
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            lo, hi = int(lo), int(hi)
            batch = order[lo:hi]

            def release(s: EventScheduler, t: float,
                        batch: np.ndarray = batch) -> None:
                self._advance(t)
                self._enqueue(batch, np.zeros(batch.size, dtype=np.int32))
                self._admit()
                self._recompute_rates()
                self._reschedule(s)

            scheduler.schedule_at(
                float(sorted_release[lo]), release, name="release"
            )
        total_hops = int(self.hops.sum())
        releases = len(boundaries) - 1
        max_events = 4 * total_hops + 4 * releases + 1024
        try:
            scheduler.run_all(max_events=max_events)
        except SimulationError as error:
            raise SimulationError(
                f"fluid event wheel exceeded {max_events} events; set "
                f"time_quantum_ms to batch completions into slots "
                f"({error})"
            ) from error
        if self.done.size and self.done.min() < 0:
            raise SimulationError(
                "fluid event wheel drained with unfinished transfers"
            )
        return self.done


# ----------------------------------------------------------------------
# The backend


class TimedSimulation:
    """Time-domain replay of a download workload (see module docstring)."""

    def __init__(self, config: FastSimulationConfig) -> None:
        self.config = config
        self._fast = FastSimulation(config)
        self.overlay = self._fast.overlay
        self.table = self._fast.table
        self.space = self._fast.space

    # -- phase 1: recording routing mirror -----------------------------

    def run(self, workload=None) -> SimulationResult:
        """Route, record paths, and simulate the transfer timeline."""
        started = time.perf_counter()
        config = self.config
        fast = self._fast
        if workload is None:
            workload = config.workload()
        n = len(self.overlay)
        result = SimulationResult(
            config=config,
            node_addresses=self.overlay.address_array().astype(np.int64),
            forwarded=np.zeros(n, dtype=np.int64),
            first_hop=np.zeros(n, dtype=np.int64),
            income=np.zeros(n, dtype=np.float64),
            expenditure=np.zeros(n, dtype=np.float64),
        )
        file_origins, sizes, targets = fast._flatten_workload(workload)
        result.files += len(sizes)
        n_chunks = int(targets.size)
        recorder = _PathRecorder(n_chunks)
        arrivals = PoissonArrivals(config.arrival_rate).sample(
            len(sizes), np.random.default_rng(config.arrival_seed)
        )
        origins = np.repeat(file_origins, sizes)
        if n_chunks:
            release = np.repeat(arrivals, sizes)
            ids = np.arange(n_chunks, dtype=np.int64)
            scenario = config.scenario_stack()
            if scenario is None:
                result.chunks += n_chunks
                self._record_route_batch(origins, targets, ids, result,
                                         recorder=recorder)
            else:
                self._run_epochs(scenario, arrivals, sizes, origins,
                                 targets, ids, result, recorder)
            result.latency_ms = self._timeline(
                recorder.assemble(), release, origins
            )
        else:
            result.latency_ms = np.empty(0, dtype=np.float64)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def run_stream(self, batches, *, n_epochs: int | None = None,
                   on_epoch=None) -> SimulationResult:
        """Consume an iterator of micro-batches of download events.

        The time-domain sibling of ``FastSimulation.run_stream``: the
        recording kernel rides the same persistent
        :class:`~repro.backends.fast.StreamSession` (one plan, coded
        patches reused across batches) via the session's router hook,
        and Poisson arrivals continue the *same* RNG stream across
        batches — per-batch exponential draws consume the generator
        exactly as the one-shot run's single draw does, and the
        arrival cumsum is continued sequentially from the previous
        batch's last arrival, so the streamed arrival times are
        bit-identical to the batch run's. Routing state is bounded;
        the fluid timeline is the one whole-stream piece (latency is
        a per-chunk output), assembled once after the stream ends.
        """
        from .fast import StreamSession

        started = time.perf_counter()
        config = self.config
        fast = self._fast
        result = fast.new_result()
        recorder = _PathRecorder(0)
        rng = np.random.default_rng(config.arrival_seed)
        rate = config.arrival_rate
        last_arrival = 0.0
        release_parts: list[np.ndarray] = []
        origin_parts: list[np.ndarray] = []
        chunk_base = 0

        def router(origins, targets, result, *, ids=None,
                   **kwargs) -> None:
            self._record_route_batch(origins, targets, ids, result,
                                     recorder=recorder, **kwargs)

        with StreamSession(fast, result=result, n_epochs=n_epochs,
                           router=router) as session:
            for batch in batches:
                file_origins, sizes, targets = fast.flatten_events(batch)
                if sizes.size == 0:
                    continue
                if rate > 0:
                    # Continue the global arrival cumsum: seeding the
                    # fold with the previous batch's last arrival
                    # reproduces np.cumsum's sequential left-fold over
                    # the whole stream bit-for-bit.
                    gaps = rng.exponential(1.0 / rate, size=len(sizes))
                    arrivals = np.cumsum(
                        np.concatenate(([last_arrival], gaps))
                    )[1:]
                    last_arrival = float(arrivals[-1])
                else:
                    arrivals = np.zeros(len(sizes))
                result.files += len(sizes)
                origins = np.repeat(file_origins, sizes)
                ids = np.arange(chunk_base, chunk_base + targets.size,
                                dtype=np.int64)
                chunk_base += int(targets.size)
                release_parts.append(np.repeat(arrivals, sizes))
                origin_parts.append(origins)
                session.feed(origins, targets, ids=ids)
                if on_epoch is not None:
                    on_epoch(session.epochs_fed, result)
        recorder.n_chunks = chunk_base
        if chunk_base:
            result.latency_ms = self._timeline(
                recorder.assemble(),
                np.concatenate(release_parts),
                np.concatenate(origin_parts),
            )
        else:
            result.latency_ms = np.empty(0, dtype=np.float64)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _run_epochs(self, scenario, arrivals, sizes, origins, targets,
                    ids, result, recorder) -> None:
        """Mirror of the fast engine's epoch slab loop, with timestamps."""
        from ..perf.table_cache import global_table_cache
        from ..scenarios.base import ScenarioContext
        from ..scenarios.plan import EpochPlan

        config = self.config
        fast = self._fast
        coded_working = global_table_cache().writable_coded(self.table)
        flat_working = coded_working.reshape(-1)
        entry_dt = self.table.entry_dtype
        starts = range(0, len(sizes), config.batch_files)
        plan = EpochPlan(
            scenario,
            ScenarioContext(
                n_nodes=self.table.n_nodes,
                n_epochs=len(starts),
                space_size=self.space.size,
                overlay_seed=config.overlay_seed,
            ),
            table_fingerprint=self.overlay.fingerprint(),
            base_storers=self.table.storer,
            addresses=self.overlay.address_array(),
            coded=coded_working,
            timestamps=arrivals[np.asarray(starts)],
        )
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        try:
            for epoch, start in enumerate(starts):
                stop = min(start + config.batch_files, len(sizes))
                lo, hi = int(offsets[start]), int(offsets[stop])
                state = plan.epoch(epoch)
                slab_origins = origins[lo:hi]
                slab_targets = targets[lo:hi]
                slab_ids = ids[lo:hi]
                result.chunks += int(slab_origins.size)
                if state.origin_map is not None:
                    slab_origins = state.origin_map[slab_origins].astype(
                        entry_dt
                    )
                unpaid = state.unpaid
                alive = state.alive
                storers = None
                storer_table = None
                if alive is not None:
                    if not alive.any():
                        result.unavailable += int(slab_origins.size)
                        continue
                    storer_table = (
                        state.storers if state.storers is not None
                        else self.table.storer
                    )
                    storers = storer_table[slab_targets]
                    dead = ~alive[slab_origins] | ~alive[storers]
                    if dead.any():
                        result.unavailable += int(np.count_nonzero(dead))
                        keep = ~dead
                        slab_origins = slab_origins[keep]
                        slab_targets = slab_targets[keep]
                        storers = storers[keep]
                        slab_ids = slab_ids[keep]
                cache = state.cache
                if alive is not None:
                    self._record_route_batch(
                        slab_origins, slab_targets, slab_ids, result,
                        storers=storers,
                        cached=None if cache is None else cache.mask,
                        unpaid_origins=unpaid,
                        dead_lut=state.dead_lut,
                        storer_table=storer_table,
                        flat_coded=flat_working,
                        recorder=recorder,
                    )
                else:
                    self._record_route_batch(
                        slab_origins, slab_targets, slab_ids, result,
                        storers=storers,
                        cached=None if cache is None else cache.mask,
                        unpaid_origins=unpaid,
                        recorder=recorder,
                    )
                if cache is not None:
                    cache.insert(slab_targets)
        finally:
            plan.restore_coded()

    def _record_route_batch(self, origins, targets, ids, result, *,
                            storers=None, cached=None,
                            unpaid_origins=None, dead_lut=None,
                            storer_table=None, flat_coded=None,
                            recorder) -> None:
        """Mirror of ``FastSimulation._route_batch`` that keeps ids.

        Same target-stable sort, same local-hit prefilter and cache-hit
        split, so every chunk takes the same wave sequence — only the
        id column rides along for path attribution.
        """
        if origins.size == 0:
            return
        table = self.table
        dtype = table.entry_dtype
        n = table.n_nodes
        order = np.argsort(targets, kind="stable")
        tg = np.take(targets, order)
        cur = np.take(origins, order)
        ids = np.take(ids, order)
        if cur.dtype != dtype:
            cur = cur.astype(dtype)
        row = np.multiply(tg, n, dtype=np.intp)
        patched = flat_coded is not None

        if cached is None and (patched or storers is None):
            self._record_waves(cur, tg, row, ids, result, unpaid_origins,
                               dead_lut=dead_lut,
                               fallback_storers=storer_table,
                               flat_table=flat_coded, recorder=recorder)
            return

        if storers is None:
            st = np.take(table.storer, tg)
        else:
            st = np.take(storers, order)
            if st.dtype != dtype:
                st = st.astype(dtype)

        keep_mask = st != cur
        local_count = int(tg.size - np.count_nonzero(keep_mask))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )
            recorder.record_zero_hop(ids[~keep_mask])

        if cached is not None:
            hits = keep_mask & cached[tg]
            if hits.any():
                hit_index = np.flatnonzero(hits)
                self._record_waves(
                    np.take(cur, hit_index), np.take(tg, hit_index),
                    np.take(row, hit_index), np.take(ids, hit_index),
                    result, unpaid_origins, first_hop_serves=True,
                    dead_lut=dead_lut if patched else None,
                    fallback_storers=storer_table if patched else None,
                    flat_table=flat_coded, recorder=recorder,
                )
                keep_mask &= ~hits

        if not np.count_nonzero(keep_mask):
            return
        index = np.flatnonzero(keep_mask)
        self._record_waves(
            np.take(cur, index), np.take(tg, index), np.take(row, index),
            np.take(ids, index), result, unpaid_origins,
            dead_lut=dead_lut if patched else None,
            fallback_storers=storer_table if patched else None,
            flat_table=flat_coded, recorder=recorder,
        )

    def _record_waves(self, cur, tg, row, ids, result, unpaid_origins, *,
                      first_hop_serves=False, dead_lut=None,
                      fallback_storers=None, flat_table=None,
                      recorder) -> None:
        """Path-recording twin of the static banded wave kernel.

        Counter arithmetic (band sums, local in-band detection at wave
        1, fallback counting, first-hop payment with the decoded
        server column) matches ``FastSimulation._route_waves`` update
        for update — the equivalence suite holds the two bit-identical
        — with per-wave ``(ids, receivers)`` recording layered on top.
        """
        fast = self._fast
        table = self.table
        dtype = table.entry_dtype
        n = table.n_nodes
        if flat_table is None:
            flat_table = table.flat_coded
        first_tg = tg
        size = int(cur.size)
        hop = 0
        while size:
            hop += 1
            flat = row + cur
            nxt = flat_table[flat]
            if dead_lut is not None:
                dead_idx = np.flatnonzero(dead_lut[nxt])
                if dead_idx.size:
                    nxt[dead_idx] = dtype.type(2 * n) + (
                        fallback_storers[row[dead_idx] // n]
                    )
            local_mask = None
            local_count = 0
            if hop == 1:
                local_mask = nxt == cur + dtype.type(2 * n)
                local_count = int(np.count_nonzero(local_mask))
                if local_count:
                    nxt[local_mask] += dtype.type(n)
                    result.local_hits += local_count
                    result.hop_histogram[0] = (
                        result.hop_histogram.get(0, 0) + local_count
                    )
                    recorder.record_zero_hop(ids[local_mask])
                else:
                    local_mask = None
            bands = np.bincount(nxt.astype(np.intp), minlength=4 * n)
            wave_counts = (bands[:n] + bands[n:2 * n]
                           + bands[2 * n:3 * n])
            fallbacks = int(bands[2 * n:3 * n].sum())
            if fallbacks:
                result.fallbacks += fallbacks
            result.forwarded += wave_counts
            result.total_hops += size - local_count
            servers = FastSimulation._decode_servers(nxt, n)
            servers_intp = servers.astype(np.intp)
            if hop == 1:
                result.first_hop += wave_counts
                fast._pay_first_hop(
                    result, servers, first_tg, cur, unpaid_origins,
                    servers_intp=servers_intp, suppressed=local_mask,
                )
            if local_mask is not None:
                live = ~local_mask
                recorder.record_wave(hop, ids[live], servers[live])
            else:
                recorder.record_wave(hop, ids, servers)
            if hop == 1 and first_hop_serves:
                served = size - local_count
                result.cache_hits += served
                result.hop_histogram[1] = (
                    result.hop_histogram.get(1, 0) + served
                )
                return
            keep = nxt < dtype.type(n)
            survivors = int(np.count_nonzero(keep))
            arrived = size - survivors - local_count
            if arrived:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived
                )
            if not survivors:
                return
            index = np.flatnonzero(keep)
            cur = nxt[index]
            row = row[index]
            ids = ids[index]
            size = survivors

    # -- phase 2: the timeline -----------------------------------------

    def _timeline(self, paths: ChunkPaths, release: np.ndarray,
                  origins: np.ndarray) -> np.ndarray:
        """Per-chunk retrieval latency (ms) over the recorded paths."""
        config = self.config
        hop_lat_s = config.hop_latency_ms / 1000.0
        routed = paths.routed_ids
        routed_hops = paths.hops[routed].astype(np.float64)
        propagation = 2.0 * routed_hops * hop_lat_s
        unbounded = (config.node_up_mbps == 0
                     and config.node_down_mbps == 0
                     and config.max_concurrent == 0)
        if unbounded:
            routed_latency = propagation
        else:
            wheel = FluidWheel(
                n_nodes=self.table.n_nodes,
                chunk_bytes=config.chunk_kib * 1024.0,
                up_bytes_s=config.node_up_mbps * MBPS_TO_BYTES,
                down_bytes_s=config.node_down_mbps * MBPS_TO_BYTES,
                max_concurrent=config.max_concurrent,
                quantum_s=config.time_quantum_ms / 1000.0,
                release_s=release[routed] + propagation,
                hops=paths.hops[routed],
                offsets=paths.offsets[routed],
                nodes=paths.nodes,
                origins=origins[routed].astype(np.int64),
            )
            routed_latency = wheel.run() - release[routed]
        samples = np.full(paths.hops.size, np.nan)
        samples[paths.zero_ids] = 0.0
        samples[routed] = routed_latency * 1000.0
        return samples[~np.isnan(samples)]


@register_backend
class TimeBackend(SimulationBackend):
    """``time``: the latency/bandwidth-aware event-wheel backend."""

    name = "time"
    description = ("time-domain event wheel: finite up/down bandwidth, "
                   "concurrency caps, measured latency CDF")
    uses_next_hop_table = True

    def prepare(self, config: FastSimulationConfig) -> "TimeBackend":
        self.config = config
        self.simulation = TimedSimulation(config)
        self.overlay = self.simulation.overlay
        return self

    def run(self, workload=None) -> SimulationResult:
        self._require_prepared()
        return self.simulation.run(workload)
