"""The :class:`SimulationBackend` protocol and backend registry.

Every way of executing the paper's download simulation — the batched
numpy engine, the per-file legacy loop, the object-oriented reference
network, and the comparison baselines — implements one small
interface::

    backend = get_backend("fast")
    result = backend.prepare(config).run(workload)

``prepare`` binds a backend instance to a
:class:`~repro.backends.config.FastSimulationConfig` (building or
reusing the overlay, routing tables, reference nodes, ...);
``run`` replays a download workload and returns a
:class:`~repro.backends.result.SimulationResult` whose per-node
vectors every experiment runner, benchmark, and fairness metric
consumes. Backends register themselves with :func:`register_backend`
so runners and the CLI can select them by name — including the
multi-seed sweep engine in :mod:`repro.sweeps`, which fans any
``(config grid x backend x seed replica)`` expansion out over worker
processes through this same interface.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..kademlia.overlay import Overlay
    from .config import FastSimulationConfig
    from .result import SimulationResult

__all__ = [
    "SimulationBackend",
    "register_backend",
    "get_backend",
    "get_backend_class",
    "available_backends",
    "run_simulation",
]


class SimulationBackend(abc.ABC):
    """One way of executing a download-workload simulation.

    Subclasses set ``name`` (the registry key) and ``description``
    (one line for ``repro-swarm backends``). After :meth:`prepare`
    the ``config`` attribute holds the bound configuration and
    ``overlay`` the overlay instance, when the backend has one
    (the standalone tit-for-tat swarm does not).
    """

    name: ClassVar[str]
    description: ClassVar[str] = ""
    #: Whether :meth:`run` replays the configured download workload
    #: over the overlay. False for self-contained models (the
    #: tit-for-tat swarm), which experiment runners that compare
    #: traffic or read ``overlay`` must not be pointed at.
    replays_workload: ClassVar[bool] = True
    #: Whether prepare() resolves a dense
    #: :class:`~repro.backends.fast.NextHopTable` for its overlay.
    #: The sweep executor publishes shared-memory tables only for
    #: backends that would otherwise rebuild one per worker.
    uses_next_hop_table: ClassVar[bool] = False

    config: "FastSimulationConfig | None" = None
    overlay: "Overlay | None" = None

    @abc.abstractmethod
    def prepare(self, config: "FastSimulationConfig") -> "SimulationBackend":
        """Bind this backend to *config*; returns ``self`` for chaining."""

    @abc.abstractmethod
    def run(self, workload=None) -> "SimulationResult":
        """Replay *workload* (default: the config's own) and report."""

    def _require_prepared(self) -> "FastSimulationConfig":
        if self.config is None:
            raise ConfigurationError(
                f"backend {self.name!r} must be prepare()d before run()"
            )
        return self.config


_BACKENDS: dict[str, type[SimulationBackend]] = {}


def register_backend(cls: type[SimulationBackend]) -> type[SimulationBackend]:
    """Class decorator adding a backend to the registry by its name."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"backend class {cls.__name__} needs a string 'name' attribute"
        )
    _BACKENDS[name] = cls
    return cls


def get_backend_class(name: str) -> type[SimulationBackend]:
    """The registered backend class for *name* (no instantiation)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def get_backend(name: str, **kwargs) -> SimulationBackend:
    """A fresh backend instance for *name*; raises with the known names.

    Keyword arguments are forwarded to the backend constructor (e.g.
    ``get_backend("freerider", fraction=0.5)``).
    """
    return get_backend_class(name)(**kwargs)


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def backend_specs() -> list[tuple[str, str]]:
    """(name, description) pairs for the CLI listing."""
    return [
        (name, _BACKENDS[name].description) for name in available_backends()
    ]


def run_simulation(config: "FastSimulationConfig", backend: str = "fast",
                   workload=None, **backend_kwargs) -> "SimulationResult":
    """One-call convenience: prepare the named backend and run it."""
    return get_backend(backend, **backend_kwargs).prepare(config).run(workload)
