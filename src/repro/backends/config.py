"""The unified simulation configuration all backends consume.

:class:`FastSimulationConfig` (the name predates the backend split and
is kept for compatibility) describes one paper-style experiment:
overlay shape, pricing, workload, and the network dynamics it runs
under. Dynamics come in two forms that compose freely:

* the legacy convenience fields ``caching`` / ``churn_*`` (kept so
  every pre-scenario experiment and sweep spec keeps meaning exactly
  what it did), and
* the ``scenario`` composition string — the grammar of
  :func:`repro.scenarios.parse.parse_scenario`, e.g.
  ``"churn:rate=0.1,recompute=true+caching:size=64"``.

:meth:`FastSimulationConfig.scenario_stack` folds both into one
composed :class:`~repro.scenarios.base.Scenario` the vectorized
engine's epoch loop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .._validation import require_fraction, require_int
from ..errors import ConfigurationError
from ..kademlia.buckets import BucketLimits
from ..kademlia.overlay import OverlayConfig
from ..workloads.distributions import OriginatorPool, UniformFileSize
from ..workloads.generators import DownloadWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.base import Scenario, ScenarioContext

__all__ = ["FastSimulationConfig"]


@dataclass(frozen=True)
class FastSimulationConfig:
    """One paper-style experiment configuration.

    Defaults reproduce the paper's setup; ``bucket_size`` and
    ``originator_share`` are the two swept parameters, ``bucket_zero``
    expresses the §V per-bucket ablation.

    Scenario extensions (vectorized backend only):

    * ``caching`` — forwarding caches modelled as a cached-chunk mask:
      once a chunk has been retrieved, later retrievals are served by
      the originator's first hop in one hop (paper §V's "reduced
      number of forwarded requests"); pair with a Zipf ``catalog_size``
      so repeats exist.
    * ``churn_offline_fraction`` — per-epoch node-alive masks: each
      batch of ``batch_files`` files sees a fresh random offline set.
      Chunks whose single storer is offline count as ``unavailable``
      (the paper's closest-node placement has no redundancy) unless
      ``churn_recompute_storers`` re-homes them to the closest *live*
      node, modelling neighborhood re-replication.
    * ``scenario`` — a composition string over the full scenario
      library (churn, caching, freeriding, join, demand), combined
      with ``+``; composes on top of the two legacy fields above.

    Time-domain extensions (the ``time`` backend; ignored by the
    timeless hop backends):

    * ``arrival_rate`` — mean file-download arrivals per second (a
      Poisson process drawn from ``arrival_seed``, separate from the
      workload stream); 0 releases every download at ``t=0``.
    * ``chunk_kib`` — payload size of one chunk transfer.
    * ``node_up_mbps`` / ``node_down_mbps`` — per-node uplink and
      downlink capacity in Mbit/s, fair-shared across a node's
      concurrent transfers; 0 means unbounded (useful alone and as
      the equivalence mode against the static kernel).
    * ``max_concurrent`` — per-node cap on simultaneous *outgoing*
      transfers; excess hops queue FIFO at the sender. 0 = no cap.
    * ``hop_latency_ms`` — fixed one-way per-hop propagation delay;
      a ``hops``-hop retrieval pays ``2 * hops`` of them (request out,
      data back).
    * ``time_quantum_ms`` — event-wheel completion slot width: fluid
      transfer completions are batched up to the next multiple, which
      bounds the number of bandwidth recomputations (coarser = faster,
      at ≤ one quantum of per-chunk latency error). 0 = exact.
    """

    n_nodes: int = 1000
    bits: int = 16
    bucket_size: int = 4
    bucket_zero: int | None = None
    originator_share: float = 1.0
    n_files: int = 10_000
    file_min: int = 100
    file_max: int = 1000
    overlay_seed: int = 42
    workload_seed: int = 7
    pricing: str = "xor"
    pricing_base: float = 1.0
    catalog_size: int = 0
    catalog_exponent: float = 1.0
    caching: bool = False
    churn_offline_fraction: float = 0.0
    churn_seed: int = 99
    churn_recompute_storers: bool = False
    scenario: str = ""
    batch_files: int = 512
    arrival_rate: float = 0.0
    arrival_seed: int = 909
    chunk_kib: float = 4.0
    node_up_mbps: float = 0.0
    node_down_mbps: float = 0.0
    max_concurrent: int = 0
    hop_latency_ms: float = 0.0
    time_quantum_ms: float = 0.0

    def __post_init__(self) -> None:
        require_int(self.n_files, "n_files")
        require_fraction(self.originator_share, "originator_share")
        require_fraction(self.churn_offline_fraction,
                         "churn_offline_fraction")
        require_int(self.batch_files, "batch_files")
        if self.n_files < 1:
            raise ConfigurationError(f"n_files must be >= 1, got {self.n_files}")
        if self.batch_files < 1:
            raise ConfigurationError(
                f"batch_files must be >= 1, got {self.batch_files}"
            )
        if self.pricing not in ("xor", "proximity", "flat"):
            raise ConfigurationError(
                f"pricing must be 'xor', 'proximity' or 'flat', got "
                f"{self.pricing!r}"
            )
        require_int(self.max_concurrent, "max_concurrent")
        for name in ("arrival_rate", "chunk_kib", "node_up_mbps",
                     "node_down_mbps", "hop_latency_ms",
                     "time_quantum_ms"):
            value = getattr(self, name)
            if not value >= 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {value!r}"
                )
        if self.max_concurrent < 0:
            raise ConfigurationError(
                f"max_concurrent must be >= 0, got {self.max_concurrent}"
            )
        if self.chunk_kib == 0:
            raise ConfigurationError("chunk_kib must be positive")
        if not isinstance(self.scenario, str):
            raise ConfigurationError(
                f"scenario must be a composition string, got "
                f"{type(self.scenario).__name__}"
            )
        if self.scenario.strip():
            # Fail at configuration time (spec build, CLI parse) with
            # the grammar in the message, never inside a worker.
            from ..scenarios.parse import parse_scenario

            parse_scenario(self.scenario)

    @property
    def has_scenarios(self) -> bool:
        """Whether any network dynamics (scenarios) are active."""
        return (self.caching or self.churn_offline_fraction > 0.0
                or bool(self.scenario.strip()))

    def scenario_stack(self) -> "Scenario | None":
        """The composed scenario this configuration runs under.

        Folds the legacy convenience fields and the ``scenario``
        composition string into one scenario — legacy churn first,
        then legacy caching, then the parsed string components, in
        written order. Returns ``None`` when the run is fully static.
        """
        from ..scenarios.compose import Compose
        from ..scenarios.library import Churn, PathCaching
        from ..scenarios.parse import parse_scenario

        parts: list = []
        if self.churn_offline_fraction > 0.0:
            parts.append(Churn(
                rate=self.churn_offline_fraction,
                seed=self.churn_seed,
                recompute=self.churn_recompute_storers,
            ))
        if self.caching:
            parts.append(PathCaching())
        if self.scenario.strip():
            parts.append(parse_scenario(self.scenario))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return Compose(*parts)

    def n_epochs(self) -> int:
        """Epochs the batched engine segments this workload into.

        One epoch per ``batch_files`` slab of the configured
        ``n_files`` — the schedule length scenarios are sized for,
        and the epoch count a dynamics trace recorded at this
        configuration carries in its header.
        """
        return -(-self.n_files // self.batch_files)

    def scenario_context(self) -> "ScenarioContext":
        """The scenario context this configuration runs schedules in."""
        from ..scenarios.base import ScenarioContext

        return ScenarioContext(
            n_nodes=self.n_nodes,
            n_epochs=self.n_epochs(),
            space_size=1 << self.bits,
            overlay_seed=self.overlay_seed,
        )

    def overlay_config(self) -> OverlayConfig:
        """The overlay this experiment runs on."""
        overrides = {} if self.bucket_zero is None else {0: self.bucket_zero}
        return OverlayConfig(
            n_nodes=self.n_nodes,
            bits=self.bits,
            limits=BucketLimits(default=self.bucket_size, overrides=overrides),
            seed=self.overlay_seed,
        )

    def workload(self) -> DownloadWorkload:
        """The download workload this experiment replays."""
        return DownloadWorkload(
            n_files=self.n_files,
            originators=OriginatorPool(share=self.originator_share),
            file_size=UniformFileSize(low=self.file_min, high=self.file_max),
            seed=self.workload_seed,
            catalog_size=self.catalog_size,
            catalog_exponent=self.catalog_exponent,
        )
