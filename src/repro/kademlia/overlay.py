"""Static overlay network construction (paper §IV-B).

The paper builds a 1000-node network once, gives every node a routing
table based on the forwarding-Kademlia overlay, and keeps the tables
static for all experiments. :class:`Overlay` reproduces that: it is an
immutable-after-build value object keyed by an
:class:`OverlayConfig`, and the same config always yields the same
overlay (bit-for-bit), which is how the paper reuses one overlay
across runs "on multiple machines".

Construction follows the paper:

* node addresses are drawn uniformly at random without replacement
  from the ``2**bits`` address space;
* for each node, bucket ``i`` receives at most ``k_i`` peers chosen
  uniformly from all nodes at proximity order ``i`` (for each peer,
  half the network is a candidate for bucket 0, a quarter for
  bucket 1, ...);
* every node additionally knows its full **neighborhood** — all nodes
  at proximity order at least its neighborhood depth — uncapped, and
  neighborhood edges are symmetrized. This is Swarm's connectivity
  rule and is what lets greedy routing terminate at the true closest
  node (see DESIGN.md §2 for the convergence argument).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from .._validation import require_int
from ..errors import ConfigurationError, OverlayError
from .address import AddressSpace, proximity_array
from .buckets import BucketLimits, NEIGHBORHOOD_MIN, SWARM_BUCKET_SIZE
from .table import RoutingTable

__all__ = ["OverlayConfig", "Overlay"]


@dataclass(frozen=True)
class OverlayConfig:
    """Deterministic description of an overlay network.

    Two overlays built from equal configs are identical, including
    every routing-table entry. The defaults are the paper's simulation
    settings (1000 nodes, 16-bit addresses, Swarm's ``k = 4``).
    """

    n_nodes: int = 1000
    bits: int = 16
    limits: BucketLimits = field(default_factory=BucketLimits)
    seed: int = 42
    neighborhood_min: int = NEIGHBORHOOD_MIN
    symmetric_neighborhood: bool = True

    def __post_init__(self) -> None:
        require_int(self.n_nodes, "n_nodes")
        require_int(self.seed, "seed")
        require_int(self.neighborhood_min, "neighborhood_min")
        if self.n_nodes < 2:
            raise ConfigurationError(
                f"an overlay needs at least 2 nodes, got {self.n_nodes}"
            )
        space = AddressSpace(self.bits)  # validates bits
        if self.n_nodes > space.size:
            raise ConfigurationError(
                f"{self.n_nodes} nodes cannot fit in a {self.bits}-bit "
                f"address space of {space.size} addresses"
            )
        if self.neighborhood_min < 1:
            raise ConfigurationError(
                f"neighborhood_min must be >= 1, got {self.neighborhood_min}"
            )

    @classmethod
    def paper(cls, bucket_size: int = SWARM_BUCKET_SIZE,
              seed: int = 42) -> "OverlayConfig":
        """The paper's settings with a configurable uniform bucket size."""
        return cls(
            n_nodes=1000,
            bits=16,
            limits=BucketLimits.uniform(bucket_size),
            seed=seed,
        )

    @property
    def space(self) -> AddressSpace:
        """The overlay's address space."""
        return AddressSpace(self.bits)


class Overlay:
    """A built overlay: node addresses plus one routing table per node.

    Instances are created through :meth:`build` (or :meth:`from_tables`
    for hand-crafted topologies in tests). After construction the
    overlay should be treated as read-only; the routing tables are
    shared with routers and simulators.
    """

    def __init__(self, config: OverlayConfig, addresses: Sequence[int],
                 tables: Mapping[int, RoutingTable]) -> None:
        self.config = config
        self.space = config.space
        self.addresses: tuple[int, ...] = tuple(addresses)
        if len(set(self.addresses)) != len(self.addresses):
            raise OverlayError("overlay addresses must be unique")
        for address in self.addresses:
            self.space.validate(address)
            if address not in tables:
                raise OverlayError(f"missing routing table for node {address}")
        self._tables = dict(tables)
        self._address_array = np.asarray(self.addresses, dtype=np.uint64)
        self._index_of = {
            address: index for index, address in enumerate(self.addresses)
        }
        self._storer_cache: np.ndarray | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def build(cls, config: OverlayConfig) -> "Overlay":
        """Build the overlay deterministically from *config*."""
        space = config.space
        rng = np.random.default_rng(config.seed)
        addresses = space.random_addresses(config.n_nodes, rng, unique=True)
        address_array = np.asarray(addresses, dtype=np.uint64)

        tables: dict[int, RoutingTable] = {}
        for address in addresses:
            tables[address] = cls._build_table(
                address, address_array, space, config, rng
            )

        cls._connect_neighborhoods(addresses, tables, config)
        return cls(config, addresses, tables)

    @staticmethod
    def _build_table(owner: int, address_array: np.ndarray,
                     space: AddressSpace, config: OverlayConfig,
                     rng: np.random.Generator) -> RoutingTable:
        """Fill one node's buckets with randomly chosen candidates."""
        table = RoutingTable(owner, space, config.limits)
        others = address_array[address_array != np.uint64(owner)]
        proximities = proximity_array(owner, others, space.bits)
        for bucket_index in range(space.bits):
            candidates = others[proximities == bucket_index]
            if candidates.size == 0:
                continue
            capacity = config.limits.capacity(bucket_index)
            if candidates.size > capacity:
                chosen = rng.choice(candidates, size=capacity, replace=False)
            else:
                chosen = candidates
            for peer in chosen:
                table.add(int(peer))
        return table

    @staticmethod
    def _connect_neighborhoods(addresses: Sequence[int],
                               tables: dict[int, RoutingTable],
                               config: OverlayConfig) -> None:
        """Give every node its full, symmetric neighborhood.

        For each node, every other node at proximity order >= the
        node's (population-wide) neighborhood depth is added uncapped.
        With ``symmetric_neighborhood`` the edge is mirrored, modelling
        Swarm's mutual nearest-neighbor connectivity.
        """
        space = config.space
        address_array = np.asarray(addresses, dtype=np.uint64)
        for owner in addresses:
            others = address_array[address_array != np.uint64(owner)]
            proximities = proximity_array(owner, others, space.bits)
            depth = Overlay._population_depth(
                proximities, space.bits, config.neighborhood_min
            )
            neighbors = others[proximities >= depth]
            for neighbor in neighbors:
                tables[owner].add_unbounded(int(neighbor))
                if config.symmetric_neighborhood:
                    tables[int(neighbor)].add_unbounded(owner)

    @staticmethod
    def _population_depth(proximities: np.ndarray, bits: int,
                          minimum: int) -> int:
        """Neighborhood depth derived from the true node population."""
        cumulative = 0
        for depth in range(bits - 1, -1, -1):
            cumulative += int(np.count_nonzero(proximities == depth))
            if cumulative >= minimum:
                return depth
        return 0

    @classmethod
    def from_tables(cls, config: OverlayConfig,
                    tables: Mapping[int, RoutingTable]) -> "Overlay":
        """Wrap externally built tables (used by tests)."""
        return cls(config, sorted(tables), tables)

    # ------------------------------------------------------------------
    # Accessors

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    def __contains__(self, address: object) -> bool:
        return address in self._index_of

    def table(self, address: int) -> RoutingTable:
        """Routing table of the node at *address*."""
        try:
            return self._tables[address]
        except KeyError:
            raise OverlayError(f"no node at address {address}") from None

    def index_of(self, address: int) -> int:
        """Dense index (0..n-1) of a node address."""
        try:
            return self._index_of[address]
        except KeyError:
            raise OverlayError(f"no node at address {address}") from None

    def address_array(self) -> np.ndarray:
        """All node addresses as a ``uint64`` array (dense-index order)."""
        return self._address_array

    def fingerprint(self) -> str:
        """Content address of this topology (stable across processes).

        A SHA-256 digest over every :class:`OverlayConfig` parameter
        that determines construction (node count, address bits, bucket
        capacities, build seed, neighborhood rule) *and* the realized
        structure itself — the node addresses and every routing-table
        edge. Two overlays with equal fingerprints route identically,
        which is what lets the :mod:`repro.perf` table cache hand one
        next-hop table to every sweep worker that needs this topology;
        hashing the edges (not just the config) keeps hand-crafted
        :meth:`from_tables` overlays from colliding with built ones.
        """
        if self._fingerprint is None:
            config = self.config
            digest = hashlib.sha256()
            header = json.dumps(
                {
                    "n_nodes": config.n_nodes,
                    "bits": config.bits,
                    "bucket_default": config.limits.default,
                    "bucket_overrides": sorted(
                        (int(k), int(v))
                        for k, v in config.limits.overrides.items()
                    ),
                    "seed": config.seed,
                    "neighborhood_min": config.neighborhood_min,
                    "symmetric_neighborhood": config.symmetric_neighborhood,
                },
                sort_keys=True,
            )
            digest.update(header.encode())
            digest.update(self._address_array.tobytes())
            for address in self.addresses:
                peers = np.asarray(
                    sorted(self._tables[address].peers()), dtype=np.uint64
                )
                digest.update(peers.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def closest_node(self, target: int) -> int:
        """The node address XOR-closest to *target* (the storer).

        This is global knowledge: the simulator uses it to place chunks
        ("only the node closest to a data chunk's address is storing
        that chunk", paper §IV-B).
        """
        self.space.validate(target, name="target")
        index = int(np.argmin(self._address_array ^ np.uint64(target)))
        return int(self._address_array[index])

    def storer_table(self) -> np.ndarray:
        """Precomputed storer (dense node index) for every address.

        A ``uint32`` array of length ``2**bits`` mapping each chunk
        address to the dense index of its closest node. Computed once
        and cached; at the paper's scale (65536 addresses x 1000
        nodes) this takes well under a second.
        """
        if self._storer_cache is None:
            size = self.space.size
            targets = np.arange(size, dtype=np.uint64)
            storers = np.empty(size, dtype=np.uint32)
            # Chunked to bound peak memory at ~ chunk * n_nodes * 8B.
            chunk = max(1, (1 << 22) // max(1, len(self.addresses)))
            for start in range(0, size, chunk):
                block = targets[start:start + chunk]
                distances = block[:, None] ^ self._address_array[None, :]
                storers[start:start + chunk] = np.argmin(distances, axis=1)
            self._storer_cache = storers
        return self._storer_cache

    def degree_histogram(self) -> dict[int, int]:
        """Map node address -> number of known peers."""
        return {address: len(self._tables[address]) for address in self.addresses}

    # ------------------------------------------------------------------
    # Persistence (multi-machine result merging support)

    def to_dict(self) -> dict:
        """Serialize the overlay structure to plain data."""
        return {
            "config": {
                "n_nodes": self.config.n_nodes,
                "bits": self.config.bits,
                "seed": self.config.seed,
                "neighborhood_min": self.config.neighborhood_min,
                "symmetric_neighborhood": self.config.symmetric_neighborhood,
                "limits": {
                    "default": self.config.limits.default,
                    "overrides": {
                        str(k): v for k, v in self.config.limits.overrides.items()
                    },
                },
            },
            "addresses": list(self.addresses),
            "tables": {
                str(address): self._tables[address].peers()
                for address in self.addresses
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Overlay":
        """Rebuild an overlay serialized with :meth:`to_dict`."""
        raw_config = data["config"]
        limits = BucketLimits(
            default=raw_config["limits"]["default"],
            overrides={
                int(k): v
                for k, v in raw_config["limits"]["overrides"].items()
            },
        )
        config = OverlayConfig(
            n_nodes=raw_config["n_nodes"],
            bits=raw_config["bits"],
            limits=limits,
            seed=raw_config["seed"],
            neighborhood_min=raw_config["neighborhood_min"],
            symmetric_neighborhood=raw_config["symmetric_neighborhood"],
        )
        space = config.space
        tables: dict[int, RoutingTable] = {}
        for raw_owner, peers in data["tables"].items():
            owner = int(raw_owner)
            table = RoutingTable(owner, space, config.limits)
            for peer in peers:
                table.add_unbounded(int(peer))
            tables[owner] = table
        return cls(config, [int(a) for a in data["addresses"]], tables)

    def save(self, path: str | Path) -> None:
        """Write the overlay to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Overlay":
        """Read an overlay from a JSON file written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
