"""K-buckets: the per-proximity-order peer lists of a routing table.

A Kademlia routing table groups known peers by proximity order to the
table owner. Bucket ``i`` holds peers sharing exactly ``i`` leading
bits with the owner (paper §III-A and Fig. 3). Ordinary buckets are
capped at the *bucket size* ``k`` (Swarm default 4, Kademlia paper
default 20); the *neighborhood* — every peer at proximity order at
least the owner's neighborhood depth — is kept uncapped so that
routing can always complete the last hops (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .._validation import require_int
from ..errors import ConfigurationError, OverlayError

__all__ = ["KBucket", "BucketLimits"]

#: Swarm's default bucket size (paper §IV-B).
SWARM_BUCKET_SIZE = 4
#: The Kademlia paper's default bucket size (paper §IV-B).
KADEMLIA_BUCKET_SIZE = 20
#: Minimum neighborhood population used to derive the depth
#: (paper §III-A: "cannot connect to at least four other nodes").
NEIGHBORHOOD_MIN = 4


@dataclass(frozen=True)
class BucketLimits:
    """Per-bucket capacity configuration.

    ``default`` applies to every bucket not listed in ``overrides``.
    ``overrides`` maps a bucket index to its own capacity — this is how
    the paper's §V ablation ("increase k only for bucket zero") is
    expressed. A capacity of ``None`` means unbounded.
    """

    default: int = SWARM_BUCKET_SIZE
    overrides: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_int(self.default, "default bucket size")
        if self.default < 1:
            raise ConfigurationError(
                f"default bucket size must be >= 1, got {self.default}"
            )
        for index, capacity in self.overrides.items():
            require_int(index, "bucket index")
            require_int(capacity, "bucket capacity override")
            if index < 0:
                raise ConfigurationError(f"bucket index must be >= 0, got {index}")
            if capacity < 1:
                raise ConfigurationError(
                    f"bucket capacity must be >= 1, got {capacity} for "
                    f"bucket {index}"
                )

    def capacity(self, bucket_index: int) -> int:
        """Capacity of the bucket at *bucket_index*."""
        return self.overrides.get(bucket_index, self.default)

    @classmethod
    def uniform(cls, size: int) -> "BucketLimits":
        """All buckets share one capacity (the common case)."""
        return cls(default=size)

    @classmethod
    def with_bucket_zero(cls, default: int, bucket_zero: int) -> "BucketLimits":
        """Paper §V ablation: a different capacity for bucket 0 only."""
        return cls(default=default, overrides={0: bucket_zero})


class KBucket:
    """An ordered, capacity-limited set of peer addresses.

    Insertion order is preserved (it is the paper's "chosen k of the
    candidates"); membership checks are O(1). The bucket never holds
    duplicates. A full bucket rejects further peers rather than
    evicting — the paper's overlays are static, so no LRU churn
    handling is needed; :meth:`replace` exists for churn experiments.
    """

    __slots__ = ("index", "capacity", "_order", "_members")

    def __init__(self, index: int, capacity: int | None) -> None:
        require_int(index, "bucket index")
        if index < 0:
            raise ConfigurationError(f"bucket index must be >= 0, got {index}")
        if capacity is not None:
            require_int(capacity, "bucket capacity")
            if capacity < 1:
                raise ConfigurationError(
                    f"bucket capacity must be >= 1, got {capacity}"
                )
        self.index = index
        self.capacity = capacity
        self._order: list[int] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __contains__(self, address: object) -> bool:
        return address in self._members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KBucket(index={self.index}, capacity={self.capacity}, "
            f"peers={self._order!r})"
        )

    @property
    def is_full(self) -> bool:
        """Whether the bucket has reached its capacity."""
        return self.capacity is not None and len(self._order) >= self.capacity

    @property
    def peers(self) -> tuple[int, ...]:
        """The bucket's peers, in insertion order."""
        return tuple(self._order)

    def add(self, address: int) -> bool:
        """Add *address*; return ``True`` if it was inserted.

        Returns ``False`` when the address is already present or the
        bucket is full. The caller decides whether a full bucket is an
        error.
        """
        if address in self._members:
            return False
        if self.is_full:
            return False
        self._order.append(address)
        self._members.add(address)
        return True

    def remove(self, address: int) -> None:
        """Remove *address*; raise :class:`OverlayError` if absent."""
        if address not in self._members:
            raise OverlayError(
                f"address {address} not in bucket {self.index}"
            )
        self._members.remove(address)
        self._order.remove(address)

    def replace(self, old: int, new: int) -> None:
        """Swap *old* for *new* in place, preserving position.

        Used by churn experiments where a departed peer is replaced by
        a fresh candidate without disturbing the rest of the bucket.
        """
        if old not in self._members:
            raise OverlayError(f"address {old} not in bucket {self.index}")
        if new in self._members:
            raise OverlayError(f"address {new} already in bucket {self.index}")
        position = self._order.index(old)
        self._order[position] = new
        self._members.remove(old)
        self._members.add(new)

    def extend(self, addresses: Sequence[int]) -> int:
        """Add each address until the bucket fills; return count added."""
        added = 0
        for address in addresses:
            if self.is_full:
                break
            if self.add(address):
                added += 1
        return added
