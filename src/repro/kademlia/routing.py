"""Forwarding-Kademlia routing (paper §III-A, Fig. 1).

In forwarding Kademlia the *request travels*, not the requester: each
node on the path forwards the request to the peer in its own routing
table that is XOR-closest to the target address, and the chunk later
flows back along the same path. No node can tell whether its upstream
is the originator or another forwarder, which is Swarm's privacy
property.

:class:`Router` implements the greedy next-hop rule on top of an
:class:`~repro.kademlia.overlay.Overlay` and records per-route
telemetry in :class:`Route` / aggregate telemetry in
:class:`RoutingStats`. Greedy forwarding makes strict progress (every
hop is strictly XOR-closer to the target — see DESIGN.md §2), so a
route has at most ``bits`` hops. If greedy stalls before reaching the
global closest node — possible only in pathological capped-bucket
topologies without a symmetric neighborhood — the router performs an
explicit *neighborhood hand-off* to the storer and counts it, or
raises in ``strict`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RoutingError
from .overlay import Overlay

__all__ = ["Route", "RoutingStats", "Router"]


@dataclass(frozen=True)
class Route:
    """The resolved path of one chunk request.

    Attributes
    ----------
    target:
        The chunk address being fetched.
    path:
        Node addresses from the originator (inclusive) to the node that
        served the chunk (inclusive). ``path[1]`` — when present — is
        the *zero-proximity node*: the only hop the originator pays
        under Swarm's default policy (paper §III-B).
    fallback:
        True when greedy forwarding stalled and the final hop used the
        neighborhood hand-off.
    """

    target: int
    path: tuple[int, ...]
    fallback: bool = False

    @property
    def originator(self) -> int:
        """The node that issued the request."""
        return self.path[0]

    @property
    def storer(self) -> int:
        """The node that served the chunk (end of the path)."""
        return self.path[-1]

    @property
    def hops(self) -> int:
        """Number of edges traversed (0 when the originator stores it)."""
        return len(self.path) - 1

    @property
    def first_hop(self) -> int | None:
        """The zero-proximity node, or ``None`` for a local hit."""
        return self.path[1] if len(self.path) > 1 else None

    @property
    def forwarders(self) -> tuple[int, ...]:
        """Every node that transmitted the chunk downstream.

        This is the paper's "forwarded chunks" unit: every node on the
        path except the originator transmits the chunk once (the storer
        serves it, intermediate nodes relay it).
        """
        return self.path[1:]


@dataclass
class RoutingStats:
    """Aggregate telemetry across many routes."""

    routes: int = 0
    total_hops: int = 0
    local_hits: int = 0
    fallback_hops: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)

    def record(self, route: Route) -> None:
        """Fold one route into the aggregate."""
        self.routes += 1
        self.total_hops += route.hops
        if route.hops == 0:
            self.local_hits += 1
        if route.fallback:
            self.fallback_hops += 1
        self.hop_histogram[route.hops] = self.hop_histogram.get(route.hops, 0) + 1

    @property
    def mean_hops(self) -> float:
        """Average path length over all recorded routes."""
        if self.routes == 0:
            return 0.0
        return self.total_hops / self.routes

    def merge(self, other: "RoutingStats") -> "RoutingStats":
        """Return a new stats object combining self and *other*."""
        merged = RoutingStats(
            routes=self.routes + other.routes,
            total_hops=self.total_hops + other.total_hops,
            local_hits=self.local_hits + other.local_hits,
            fallback_hops=self.fallback_hops + other.fallback_hops,
            hop_histogram=dict(self.hop_histogram),
        )
        for hops, count in other.hop_histogram.items():
            merged.hop_histogram[hops] = merged.hop_histogram.get(hops, 0) + count
        return merged


class Router:
    """Greedy forwarding-Kademlia router over a static overlay.

    Parameters
    ----------
    overlay:
        The built overlay whose routing tables drive forwarding.
    strict:
        When True, a greedy stall raises :class:`RoutingError` instead
        of using the neighborhood hand-off. Paper-scale overlays with
        symmetric neighborhoods never stall; ``strict=True`` is used in
        tests to prove that.
    """

    def __init__(self, overlay: Overlay, *, strict: bool = False) -> None:
        self.overlay = overlay
        self.strict = strict
        self.stats = RoutingStats()

    def route(self, origin: int, target: int) -> Route:
        """Resolve the path a request for *target* takes from *origin*.

        The path ends at the chunk's storer — the globally XOR-closest
        node to *target* (paper §IV-B stores every chunk only there).
        """
        space = self.overlay.space
        space.validate(target, name="target")
        if origin not in self.overlay:
            raise RoutingError(
                f"origin {origin} is not an overlay node",
                origin=origin, target=target,
            )
        storer = self.overlay.closest_node(target)
        path = [origin]
        current = origin
        fallback = False
        # Strict XOR progress bounds the loop by the address width; the
        # explicit bound turns a logic bug into a loud failure instead
        # of an infinite loop.
        for _ in range(space.bits + 1):
            if current == storer:
                break
            table = self.overlay.table(current)
            candidate = table.closest_peer(target)
            if (candidate ^ target) < (current ^ target):
                path.append(candidate)
                current = candidate
                continue
            # Greedy stall: no known peer improves on the current node.
            if self.strict:
                raise RoutingError(
                    f"greedy routing stalled at {current} before reaching "
                    f"storer {storer}",
                    origin=origin, target=target,
                )
            path.append(storer)
            current = storer
            fallback = True
        else:  # pragma: no cover - defended by the progress invariant
            raise RoutingError(
                f"route from {origin} to {target} exceeded {space.bits} hops",
                origin=origin, target=target,
            )
        route = Route(target=target, path=tuple(path), fallback=fallback)
        self.stats.record(route)
        return route

    def route_many(self, origin: int, targets: list[int]) -> list[Route]:
        """Route every chunk address in *targets* from one originator."""
        return [self.route(origin, target) for target in targets]
