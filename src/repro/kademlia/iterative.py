"""Classic (iterative) Kademlia lookup, for contrast with forwarding.

Paper §III-A: "For the lookup procedure in Kademlia, the node that
generated the request repeatedly contacts other nodes for either the
chunk, or addresses closer to the chunk. In this way, all involved
nodes learn the requester's identity. Forwarding Kademlia improves
privacy and prevents censorship."

:class:`IterativeLookup` implements the original Maymounkov-Mazières
procedure over the same overlays this library builds: the requester
keeps a shortlist of the ``k`` closest known candidates and queries
them with concurrency ``alpha``, learning each queried node's own
closest contacts, until the shortlist stabilizes on the true closest
node. The resulting :class:`LookupResult` records the two quantities
the paper's privacy argument turns on:

* ``contacted`` — every node the *requester itself* talked to (all of
  them learn the requester's identity);
* ``round_trips`` — query rounds, the latency proxy.

The privacy comparison experiment pits this against
:class:`~repro.kademlia.routing.Router`, where only the first hop
ever sees the requester.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_int
from ..errors import ConfigurationError, RoutingError
from .overlay import Overlay

__all__ = ["LookupResult", "IterativeLookup"]

#: Default lookup concurrency from the Kademlia paper.
DEFAULT_ALPHA = 3
#: Default shortlist size (the Kademlia paper's k).
DEFAULT_K = 20


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one iterative lookup."""

    target: int
    requester: int
    found: int
    contacted: tuple[int, ...]
    round_trips: int

    @property
    def identity_exposure(self) -> int:
        """Nodes that learned the requester's identity.

        Every contacted node sees the requester directly — the
        quantity forwarding Kademlia reduces to one.
        """
        return len(self.contacted)


class IterativeLookup:
    """Iterative node lookup over a built overlay."""

    def __init__(self, overlay: Overlay, *, alpha: int = DEFAULT_ALPHA,
                 k: int = DEFAULT_K) -> None:
        require_int(alpha, "alpha")
        require_int(k, "k")
        if alpha < 1:
            raise ConfigurationError(f"alpha must be >= 1, got {alpha}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.overlay = overlay
        self.alpha = alpha
        self.k = k

    def lookup(self, requester: int, target: int) -> LookupResult:
        """Find the node closest to *target*, as *requester*.

        Queries proceed in rounds of ``alpha`` unqueried shortlist
        members; each query returns the queried node's ``k`` closest
        known contacts to the target. Terminates when a round fails
        to improve the closest known node and the top-``k`` shortlist
        is fully queried — the standard Kademlia convergence rule.
        """
        space = self.overlay.space
        space.validate(target, name="target")
        if requester not in self.overlay:
            raise RoutingError(
                f"requester {requester} is not an overlay node",
                origin=requester, target=target,
            )
        shortlist: set[int] = {requester}
        shortlist.update(
            self.overlay.table(requester).closest_peers(target, self.k)
        )
        queried: set[int] = {requester}
        contacted: list[int] = []
        round_trips = 0
        for _ in range(len(self.overlay) + 1):
            candidates = [
                node
                for node in space.sort_by_distance(target, shortlist)
                if node not in queried
            ][: self.alpha]
            if not candidates:
                break
            round_trips += 1
            best_before = space.sort_by_distance(target, shortlist)[0]
            for node in candidates:
                queried.add(node)
                contacted.append(node)
                shortlist.update(
                    self.overlay.table(node).closest_peers(target, self.k)
                )
            best_after = space.sort_by_distance(target, shortlist)[0]
            if (best_after ^ target) >= (best_before ^ target):
                # No progress: finish by querying the rest of the
                # current top-k, then stop.
                remaining = [
                    node for node in
                    space.sort_by_distance(target, shortlist)[: self.k]
                    if node not in queried
                ]
                for node in remaining:
                    queried.add(node)
                    contacted.append(node)
                    shortlist.update(
                        self.overlay.table(node).closest_peers(
                            target, self.k
                        )
                    )
                if remaining:
                    round_trips += 1
                break
        else:  # pragma: no cover - bounded by the population size
            raise RoutingError(
                f"iterative lookup for {target} did not converge",
                origin=requester, target=target,
            )
        found = space.sort_by_distance(target, shortlist)[0]
        return LookupResult(
            target=target,
            requester=requester,
            found=found,
            contacted=tuple(contacted),
            round_trips=round_trips,
        )
