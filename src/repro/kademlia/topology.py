"""Topology diagnostics for built overlays.

The paper's discussion (§V) turns on topology-level trade-offs: larger
buckets mean more open connections (maintenance cost) but shorter
routes (less forwarded bandwidth). This module quantifies those
properties for any :class:`~repro.kademlia.overlay.Overlay` — degree
statistics, route-length distributions sampled over the address space,
reachability, and an optional export to ``networkx`` for ad-hoc graph
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive
from ..errors import OverlayError
from .overlay import Overlay
from .routing import Router

__all__ = [
    "DegreeStats",
    "degree_stats",
    "sample_route_lengths",
    "is_fully_routable",
    "to_networkx",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of routing-table sizes across an overlay."""

    n_nodes: int
    min_degree: int
    max_degree: int
    mean_degree: float
    total_edges: int

    def __str__(self) -> str:
        return (
            f"{self.n_nodes} nodes, degree min/mean/max = "
            f"{self.min_degree}/{self.mean_degree:.1f}/{self.max_degree}, "
            f"{self.total_edges} directed edges"
        )


def degree_stats(overlay: Overlay) -> DegreeStats:
    """Compute degree statistics (open-connection cost, paper §V)."""
    degrees = np.array(
        [len(overlay.table(a)) for a in overlay.addresses], dtype=np.int64
    )
    return DegreeStats(
        n_nodes=len(overlay),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        total_edges=int(degrees.sum()),
    )


def sample_route_lengths(overlay: Overlay, samples: int,
                         seed: int = 0) -> np.ndarray:
    """Hop counts for *samples* random (origin, target) routes.

    Origins are sampled uniformly from the nodes and targets uniformly
    from the whole address space, matching the paper's workload shape.
    """
    require_positive(samples, "samples")
    rng = np.random.default_rng(seed)
    router = Router(overlay)
    origins = rng.choice(overlay.address_array(), size=samples)
    targets = rng.integers(0, overlay.space.size, size=samples)
    return np.array(
        [
            router.route(int(origin), int(target)).hops
            for origin, target in zip(origins, targets)
        ],
        dtype=np.int64,
    )


def is_fully_routable(overlay: Overlay, *, strict: bool = True) -> bool:
    """Check that every node can reach every other node's address.

    Exhaustive over node pairs — O(n^2) routes — so intended for the
    small overlays used in tests. With ``strict=True`` a greedy stall
    raises; with ``strict=False`` the check only verifies the routes
    terminate at the correct storer.
    """
    router = Router(overlay, strict=strict)
    for origin in overlay.addresses:
        for destination in overlay.addresses:
            if origin == destination:
                continue
            route = router.route(origin, destination)
            if route.storer != destination:
                raise OverlayError(
                    f"route from {origin} to {destination} ended at "
                    f"{route.storer}"
                )
    return True


def to_networkx(overlay: Overlay):
    """Export the overlay as a directed ``networkx`` graph.

    Requires the optional ``networkx`` dependency; raises ImportError
    with guidance otherwise. Edges carry the bucket index they live in.
    """
    try:
        import networkx as nx
    except ImportError as error:  # pragma: no cover - optional dependency
        raise ImportError(
            "topology export requires networkx; install repro[analysis]"
        ) from error

    graph = nx.DiGraph()
    graph.add_nodes_from(overlay.addresses)
    for owner in overlay.addresses:
        table = overlay.table(owner)
        for peer in table.peers():
            graph.add_edge(
                owner, peer, bucket=overlay.space.proximity(owner, peer)
            )
    return graph
