"""Per-node routing tables for forwarding Kademlia.

A :class:`RoutingTable` is owned by one overlay address and organizes
every peer the node knows into k-buckets by proximity order (paper
§III-A, Fig. 3). It answers the single question routing needs: *which
known peer is XOR-closest to a target address?*

The table also computes the node's **neighborhood depth**: the
shallowest proximity order ``d`` such that the node knows at least
:data:`~repro.kademlia.buckets.NEIGHBORHOOD_MIN` peers at proximity
``>= d``. Peers at or beyond the depth form the neighborhood; overlay
builders keep the neighborhood uncapped and symmetric so greedy
routing converges to the globally closest node (DESIGN.md §2).

Besides the per-node object model, this module owns the vectorized
**incremental storer-table maintenance** the epoch-driven scenario
layer runs on: :func:`alive_storer_table` builds the
closest-*live*-node table from scratch, :func:`patch_storer_table`
produces the identical table from the previous epoch's by touching
only the addresses a leave/join delta actually affects, and
:func:`chain_fingerprint` derives the content address of the patched
table (``parent_fp + delta``) that lets epoch tables hit the
:class:`~repro.perf.table_cache.EpochTableCache` instead of being
recomputed.

The same machinery extends to the dense **terminal-coded routing
matrix** itself (:class:`~repro.backends.fast.NextHopTable`'s
``coded_transposed``): :func:`coded_arrive_patch` computes, for one
epoch's storer table, the sparse set of matrix entries whose coded
value must change so the *static* banded hop kernel reproduces the
epoch's re-homed arrivals — packaged as a :class:`CodedPatch` that
applies in place and reverts from its undo log (indices + prior
values) in O(patch), never copying the ~131 MB paper-scale matrix.
Dead next hops need no matrix entries at all: :func:`dead_value_lut`
builds the per-epoch coded-value table the kernel consults to shunt
them onto the live fallback band sparsely at gather time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError, OverlayError
from .address import AddressSpace
from .buckets import BucketLimits, KBucket, NEIGHBORHOOD_MIN

__all__ = [
    "RoutingTable",
    "alive_storer_table",
    "patch_storer_table",
    "chain_fingerprint",
    "CodedPatch",
    "coded_arrive_patch",
    "dead_value_lut",
]

#: Element budget for the chunked distance scans below (bounds the
#: ``chunk x n_alive``/``chunk x n_joins`` uint64 temporaries).
_SCAN_BUDGET = 1 << 22


def _scatter_closest_live(out: np.ndarray, rows: np.ndarray,
                          addresses: np.ndarray,
                          alive: np.ndarray) -> None:
    """``out[rows] = closest live node to each row's address``.

    The one budget-chunked XOR-argmin scan both the full rebuild and
    the delta patch resolve storers through — keeping them sharing
    one implementation is what makes "patch equals rebuild, exactly"
    a structural property rather than a coincidence of two loops.
    """
    alive_idx = np.flatnonzero(alive).astype(np.int64)
    if alive_idx.size == 0:
        raise ConfigurationError(
            "cannot resolve storers with every node offline"
        )
    live_addresses = addresses[alive_idx]
    row_addresses = rows.astype(np.uint64)
    chunk = max(1, _SCAN_BUDGET // max(1, alive_idx.size))
    for start in range(0, rows.size, chunk):
        block = row_addresses[start:start + chunk]
        distances = block[:, None] ^ live_addresses[None, :]
        out[rows[start:start + chunk]] = (
            alive_idx[np.argmin(distances, axis=1)]
        )


def alive_storer_table(addresses: np.ndarray, alive: np.ndarray,
                       dtype: np.dtype, space_size: int) -> np.ndarray:
    """Closest-live-node index for every address (full rebuild).

    *addresses* are the dense-index node addresses (``uint64``),
    *alive* the boolean liveness mask. XOR distances between distinct
    addresses are distinct, so the result is unique — no tie-break
    rule to preserve. This is the from-scratch reference the delta
    patch below must (and is tested to) reproduce exactly.
    """
    out = np.empty(space_size, dtype=dtype)
    _scatter_closest_live(
        out, np.arange(space_size, dtype=np.int64), addresses, alive
    )
    return out


def patch_storer_table(parent: np.ndarray, addresses: np.ndarray,
                       alive: np.ndarray,
                       leaves: np.ndarray | Sequence[int],
                       joins: np.ndarray | Sequence[int]) -> np.ndarray:
    """The storer table after a leave/join delta, as a delta patch.

    *parent* must be the table for the alive set *before* the delta;
    *alive* is the mask *after* it. Only two slices of the address
    space are touched:

    * addresses whose parent storer left — re-resolved over the new
      live population (which already includes the joiners);
    * addresses a joiner is now strictly closer to than their current
      storer — overwritten with the closest joiner.

    The join pass cannot disturb the re-resolved addresses (their
    entry is already optimal over the new population), so the result
    equals :func:`alive_storer_table` on the new mask exactly, at a
    cost proportional to the delta instead of the population.
    """
    leaves = np.asarray(leaves, dtype=np.int64)
    joins = np.asarray(joins, dtype=np.int64)
    out = parent.copy()
    space_size = parent.size

    if leaves.size:
        affected = np.flatnonzero(np.isin(parent, leaves))
        if affected.size:
            _scatter_closest_live(out, affected, addresses, alive)

    if joins.size:
        join_addresses = addresses[joins]
        targets = np.arange(space_size, dtype=np.uint64)
        current_distance = targets ^ addresses[out.astype(np.int64)]
        chunk = max(1, _SCAN_BUDGET // max(1, joins.size))
        for start in range(0, space_size, chunk):
            block = targets[start:start + chunk]
            distances = block[:, None] ^ join_addresses[None, :]
            best = np.argmin(distances, axis=1)
            best_distance = distances[np.arange(block.size), best]
            improved = best_distance < current_distance[start:start + chunk]
            if improved.any():
                rows = start + np.flatnonzero(improved)
                out[rows] = joins[best[improved]]
    return out


def chain_fingerprint(parent: str,
                      leaves: np.ndarray | Sequence[int],
                      joins: np.ndarray | Sequence[int]) -> str:
    """Content address of ``parent`` patched by a leave/join delta.

    Chaining means an epoch table's identity encodes its entire delta
    history from the base table — replayed schedules (sweep replicas,
    resumed runs) re-derive the same fingerprints and hit the epoch
    cache, while any divergence in the path yields a fresh one.
    Deltas are canonicalized to sorted ``uint32``.
    """
    digest = hashlib.sha256()
    digest.update(parent.encode("ascii"))
    digest.update(b"L")
    digest.update(np.sort(np.asarray(leaves, dtype=np.uint32)).tobytes())
    digest.update(b"J")
    digest.update(np.sort(np.asarray(joins, dtype=np.uint32)).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class CodedPatch:
    """A sparse in-place edit of the terminal-coded routing matrix.

    ``indices`` are flat positions into the C-contiguous
    ``[target, node]`` coded matrix (the narrowest signed dtype that
    spans it) and ``prior`` the pristine entries at those positions —
    the undo log that makes :meth:`revert` restore the matrix
    bit-exactly in O(patch) instead of re-copying or rebuilding it.
    Every patched entry is an **arrive-band promotion** (pristine
    forward value ``s`` becomes ``n + s``), so the epoch values are
    derived as ``prior + n_nodes`` rather than stored: at paper-scale
    churn a patch runs to ~10\\ :sup:`5` entries per epoch, and the
    epoch cache budgets many of them (:attr:`nbytes`) — the undo log
    alone halves what a values+prior representation would hold
    resident. Patches are *absolute* (always expressed against the
    pristine matrix), so one revert + one apply moves the matrix
    between any two epochs.
    """

    indices: np.ndarray
    prior: np.ndarray
    n_nodes: int

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.prior):
            raise ConfigurationError(
                "coded patch arrays must have equal lengths, got "
                f"{len(self.indices)}/{len(self.prior)}"
            )

    @property
    def values(self) -> np.ndarray:
        """The epoch's coded entries (the promotions of ``prior``)."""
        return self.prior + self.prior.dtype.type(self.n_nodes)

    @property
    def nbytes(self) -> int:
        """Memory footprint (how the epoch cache budgets patches)."""
        return int(self.indices.nbytes + self.prior.nbytes)

    def __len__(self) -> int:
        return len(self.indices)

    def apply(self, flat_coded: np.ndarray) -> None:
        """Write the epoch's coded values into the flat matrix."""
        flat_coded[self.indices] = self.values

    def revert(self, flat_coded: np.ndarray) -> None:
        """Restore the pristine coded values from the undo log."""
        flat_coded[self.indices] = self.prior


def coded_arrive_patch(coded: np.ndarray, base_storers: np.ndarray,
                       storers: np.ndarray) -> CodedPatch:
    """The sparse coded-matrix patch for one epoch's storer table.

    *coded* is the **pristine** terminal-coded ``[target, node]``
    matrix, *base_storers* the static storer table it was coded
    against, and *storers* the epoch's (re-homed) storer table. The
    only entries whose coded value must change for the static banded
    kernel to reproduce the decoded dynamic mode are the **arrive-band
    promotions**: in every row ``t`` whose storer moved (its static
    storer died), forward-band entries equal to the new storer
    ``storers[t]`` must read ``n + storers[t]`` so routing terminates
    there as an arrival. Dead next hops and dead-storer stalls are
    *not* patched — the kernel's :func:`dead_value_lut` fixup re-codes
    those sparsely at gather time, which keeps this patch proportional
    to the rows whose storer actually moved (the new storer's forward
    in-degree per such row, ~25 entries at paper scale) rather than to
    every entry pointing at a dead node (~65 000 per dead node).
    """
    n_nodes = coded.shape[1]
    dtype = coded.dtype
    index_dtype = (np.int32 if coded.size <= np.iinfo(np.int32).max
                   else np.int64)
    rows = np.flatnonzero(storers != base_storers)
    if rows.size == 0:
        return CodedPatch(np.empty(0, dtype=index_dtype),
                          np.empty(0, dtype=dtype), n_nodes)
    # Budget-chunked row scan: gather the affected pristine rows and
    # compare against each row's new storer. Forward-band entries are
    # plain node indices, so one equality against storers[t] finds
    # exactly the entries to promote (arrive/fallback bands are >= n
    # and can never compare equal).
    chunk = max(1, _SCAN_BUDGET // max(1, n_nodes))
    index_parts: list[np.ndarray] = []
    prior_parts: list[np.ndarray] = []
    for start in range(0, rows.size, chunk):
        block_rows = rows[start:start + chunk]
        block = coded[block_rows]
        new_storers = storers[block_rows]
        hit_row, hit_col = np.nonzero(block == new_storers[:, None])
        if hit_row.size == 0:
            continue
        index_parts.append(
            (block_rows[hit_row] * np.int64(n_nodes)
             + hit_col).astype(index_dtype)
        )
        # The pristine value at a promoted entry is the new storer's
        # plain index itself — that equality is what found it.
        prior_parts.append(new_storers[hit_row].astype(dtype))
    if not index_parts:
        return CodedPatch(np.empty(0, dtype=index_dtype),
                          np.empty(0, dtype=dtype), n_nodes)
    return CodedPatch(np.concatenate(index_parts),
                      np.concatenate(prior_parts), n_nodes)


def dead_value_lut(alive: np.ndarray) -> np.ndarray:
    """Coded-value deadness table for one epoch's alive mask.

    ``lut[v]`` is ``True`` when the node a terminal-coded value ``v``
    decodes to — the forward target for ``v < n``, the arriving storer
    for ``n <= v < 2n``, the fallback storer for ``2n <= v < 3n`` — is
    offline this epoch. The static banded kernel gathers it per hop
    (3n bools, L1-resident) and re-codes the flagged chunks onto the
    live fallback band in one sparse pass, which is what lets churn
    epochs skip the decoded per-chunk storer/alive columns entirely.
    """
    return np.tile(~np.asarray(alive, dtype=bool), 3)


class RoutingTable:
    """All peers known to one node, organized into k-buckets.

    Parameters
    ----------
    owner:
        Overlay address of the node owning this table.
    space:
        The overlay address space (defines bit width and metrics).
    limits:
        Per-bucket capacities; defaults to Swarm's ``k = 4``.

    Notes
    -----
    The table caches a numpy array of peer addresses for the vectorized
    nearest-peer query; the cache is invalidated on mutation. Tables in
    the paper's experiments are built once and then frozen, so the
    cache is almost always warm.
    """

    def __init__(self, owner: int, space: AddressSpace,
                 limits: BucketLimits | None = None) -> None:
        self.space = space
        self.owner = space.validate(owner, name="owner")
        self.limits = limits if limits is not None else BucketLimits()
        self._buckets: list[KBucket] = [
            KBucket(i, self.limits.capacity(i)) for i in range(space.bits)
        ]
        self._peer_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    def __contains__(self, address: object) -> bool:
        if not isinstance(address, int) or isinstance(address, bool):
            return False
        if address == self.owner or address not in self.space:
            return False
        return address in self._buckets[self.space.proximity(self.owner, address)]

    def __iter__(self) -> Iterator[int]:
        for bucket in self._buckets:
            yield from bucket

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = {
            bucket.index: len(bucket) for bucket in self._buckets if len(bucket)
        }
        return (
            f"RoutingTable(owner={self.owner}, peers={len(self)}, "
            f"buckets={populated})"
        )

    @property
    def buckets(self) -> tuple[KBucket, ...]:
        """The table's buckets, indexed by proximity order."""
        return tuple(self._buckets)

    def bucket(self, index: int) -> KBucket:
        """Return the bucket at proximity order *index*."""
        if not 0 <= index < self.space.bits:
            raise ConfigurationError(
                f"bucket index must be in [0, {self.space.bits}), got {index}"
            )
        return self._buckets[index]

    def bucket_of(self, address: int) -> KBucket:
        """Return the bucket *address* belongs to (whether present or not)."""
        return self._buckets[self.space.bucket_index(self.owner, address)]

    def peers(self) -> list[int]:
        """Every known peer address, shallowest bucket first."""
        return list(self)

    def peer_array(self) -> np.ndarray:
        """Known peers as a cached ``uint64`` numpy array."""
        if self._peer_cache is None:
            self._peer_cache = np.fromiter(
                self, dtype=np.uint64, count=len(self)
            )
        return self._peer_cache

    # ------------------------------------------------------------------
    # Mutation

    def add(self, address: int) -> bool:
        """Learn about a peer; return ``True`` if it was stored.

        A peer is rejected (``False``) when its bucket is full or it is
        already known. Adding the owner's own address raises
        :class:`~repro.errors.AddressError` via ``bucket_index``.
        """
        self.space.validate(address)
        bucket = self.bucket_of(address)
        added = bucket.add(address)
        if added:
            self._peer_cache = None
        return added

    def add_unbounded(self, address: int) -> bool:
        """Learn about a peer ignoring its bucket's capacity.

        Overlay builders use this for neighborhood peers, which Swarm
        keeps uncapped (paper §III-A: the last bucket "includes all
        nodes" beyond the depth).
        """
        self.space.validate(address)
        bucket = self.bucket_of(address)
        if address in bucket:
            return False
        # Bypass the capacity check while preserving bucket invariants.
        saved_capacity = bucket.capacity
        bucket.capacity = None
        try:
            added = bucket.add(address)
        finally:
            bucket.capacity = saved_capacity
        if added:
            self._peer_cache = None
        return added

    def remove(self, address: int) -> None:
        """Forget a peer; raise :class:`OverlayError` if unknown."""
        self.bucket_of(address).remove(address)
        self._peer_cache = None

    def extend(self, addresses: Iterable[int]) -> int:
        """Add peers until buckets fill; return how many were stored."""
        return sum(1 for address in addresses if self.add(address))

    # ------------------------------------------------------------------
    # Queries used by routing

    def closest_peer(self, target: int) -> int:
        """Return the known peer XOR-closest to *target*.

        Raises :class:`OverlayError` when the table is empty. The owner
        itself is never returned; the router compares the result with
        the owner's own distance to decide whether to stop.
        """
        peers = self.peer_array()
        if peers.size == 0:
            raise OverlayError(f"routing table of {self.owner} is empty")
        index = int(np.argmin(peers ^ np.uint64(self.space.validate(target))))
        return int(peers[index])

    def closest_peers(self, target: int, count: int) -> list[int]:
        """Return up to *count* known peers sorted by distance to *target*."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        return self.space.sort_by_distance(target, self.peers())[:count]

    def neighborhood_depth(self, minimum: int = NEIGHBORHOOD_MIN) -> int:
        """Shallowest proximity order with >= *minimum* peers at or beyond it.

        Returns 0 when the node knows fewer than *minimum* peers in
        total (the whole network is its neighborhood). This matches the
        paper's definition: the neighborhood is "defined by the
        proximity at which the node cannot connect to at least four
        other nodes".
        """
        if minimum < 1:
            raise ConfigurationError(f"minimum must be >= 1, got {minimum}")
        cumulative = 0
        # Walk from the deepest bucket toward bucket 0, accumulating
        # the population at proximity >= depth.
        for depth in range(self.space.bits - 1, -1, -1):
            cumulative += len(self._buckets[depth])
            if cumulative >= minimum:
                return depth
        return 0

    def neighborhood(self, minimum: int = NEIGHBORHOOD_MIN) -> list[int]:
        """Peers at proximity order >= :meth:`neighborhood_depth`."""
        depth = self.neighborhood_depth(minimum)
        members: list[int] = []
        for bucket in self._buckets[depth:]:
            members.extend(bucket)
        return members

    def bucket_histogram(self) -> dict[int, int]:
        """Map of bucket index to population, for diagnostics."""
        return {
            bucket.index: len(bucket)
            for bucket in self._buckets
            if len(bucket) > 0
        }
