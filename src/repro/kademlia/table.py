"""Per-node routing tables for forwarding Kademlia.

A :class:`RoutingTable` is owned by one overlay address and organizes
every peer the node knows into k-buckets by proximity order (paper
§III-A, Fig. 3). It answers the single question routing needs: *which
known peer is XOR-closest to a target address?*

The table also computes the node's **neighborhood depth**: the
shallowest proximity order ``d`` such that the node knows at least
:data:`~repro.kademlia.buckets.NEIGHBORHOOD_MIN` peers at proximity
``>= d``. Peers at or beyond the depth form the neighborhood; overlay
builders keep the neighborhood uncapped and symmetric so greedy
routing converges to the globally closest node (DESIGN.md §2).

Besides the per-node object model, this module owns the vectorized
**incremental storer-table maintenance** the epoch-driven scenario
layer runs on: :func:`alive_storer_table` builds the
closest-*live*-node table from scratch, :func:`patch_storer_table`
produces the identical table from the previous epoch's by touching
only the addresses a leave/join delta actually affects, and
:func:`chain_fingerprint` derives the content address of the patched
table (``parent_fp + delta``) that lets epoch tables hit the
:class:`~repro.perf.table_cache.EpochTableCache` instead of being
recomputed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError, OverlayError
from .address import AddressSpace
from .buckets import BucketLimits, KBucket, NEIGHBORHOOD_MIN

__all__ = [
    "RoutingTable",
    "alive_storer_table",
    "patch_storer_table",
    "chain_fingerprint",
]

#: Element budget for the chunked distance scans below (bounds the
#: ``chunk x n_alive``/``chunk x n_joins`` uint64 temporaries).
_SCAN_BUDGET = 1 << 22


def _scatter_closest_live(out: np.ndarray, rows: np.ndarray,
                          addresses: np.ndarray,
                          alive: np.ndarray) -> None:
    """``out[rows] = closest live node to each row's address``.

    The one budget-chunked XOR-argmin scan both the full rebuild and
    the delta patch resolve storers through — keeping them sharing
    one implementation is what makes "patch equals rebuild, exactly"
    a structural property rather than a coincidence of two loops.
    """
    alive_idx = np.flatnonzero(alive).astype(np.int64)
    if alive_idx.size == 0:
        raise ConfigurationError(
            "cannot resolve storers with every node offline"
        )
    live_addresses = addresses[alive_idx]
    row_addresses = rows.astype(np.uint64)
    chunk = max(1, _SCAN_BUDGET // max(1, alive_idx.size))
    for start in range(0, rows.size, chunk):
        block = row_addresses[start:start + chunk]
        distances = block[:, None] ^ live_addresses[None, :]
        out[rows[start:start + chunk]] = (
            alive_idx[np.argmin(distances, axis=1)]
        )


def alive_storer_table(addresses: np.ndarray, alive: np.ndarray,
                       dtype: np.dtype, space_size: int) -> np.ndarray:
    """Closest-live-node index for every address (full rebuild).

    *addresses* are the dense-index node addresses (``uint64``),
    *alive* the boolean liveness mask. XOR distances between distinct
    addresses are distinct, so the result is unique — no tie-break
    rule to preserve. This is the from-scratch reference the delta
    patch below must (and is tested to) reproduce exactly.
    """
    out = np.empty(space_size, dtype=dtype)
    _scatter_closest_live(
        out, np.arange(space_size, dtype=np.int64), addresses, alive
    )
    return out


def patch_storer_table(parent: np.ndarray, addresses: np.ndarray,
                       alive: np.ndarray,
                       leaves: np.ndarray | Sequence[int],
                       joins: np.ndarray | Sequence[int]) -> np.ndarray:
    """The storer table after a leave/join delta, as a delta patch.

    *parent* must be the table for the alive set *before* the delta;
    *alive* is the mask *after* it. Only two slices of the address
    space are touched:

    * addresses whose parent storer left — re-resolved over the new
      live population (which already includes the joiners);
    * addresses a joiner is now strictly closer to than their current
      storer — overwritten with the closest joiner.

    The join pass cannot disturb the re-resolved addresses (their
    entry is already optimal over the new population), so the result
    equals :func:`alive_storer_table` on the new mask exactly, at a
    cost proportional to the delta instead of the population.
    """
    leaves = np.asarray(leaves, dtype=np.int64)
    joins = np.asarray(joins, dtype=np.int64)
    out = parent.copy()
    space_size = parent.size

    if leaves.size:
        affected = np.flatnonzero(np.isin(parent, leaves))
        if affected.size:
            _scatter_closest_live(out, affected, addresses, alive)

    if joins.size:
        join_addresses = addresses[joins]
        targets = np.arange(space_size, dtype=np.uint64)
        current_distance = targets ^ addresses[out.astype(np.int64)]
        chunk = max(1, _SCAN_BUDGET // max(1, joins.size))
        for start in range(0, space_size, chunk):
            block = targets[start:start + chunk]
            distances = block[:, None] ^ join_addresses[None, :]
            best = np.argmin(distances, axis=1)
            best_distance = distances[np.arange(block.size), best]
            improved = best_distance < current_distance[start:start + chunk]
            if improved.any():
                rows = start + np.flatnonzero(improved)
                out[rows] = joins[best[improved]]
    return out


def chain_fingerprint(parent: str,
                      leaves: np.ndarray | Sequence[int],
                      joins: np.ndarray | Sequence[int]) -> str:
    """Content address of ``parent`` patched by a leave/join delta.

    Chaining means an epoch table's identity encodes its entire delta
    history from the base table — replayed schedules (sweep replicas,
    resumed runs) re-derive the same fingerprints and hit the epoch
    cache, while any divergence in the path yields a fresh one.
    Deltas are canonicalized to sorted ``uint32``.
    """
    digest = hashlib.sha256()
    digest.update(parent.encode("ascii"))
    digest.update(b"L")
    digest.update(np.sort(np.asarray(leaves, dtype=np.uint32)).tobytes())
    digest.update(b"J")
    digest.update(np.sort(np.asarray(joins, dtype=np.uint32)).tobytes())
    return digest.hexdigest()


class RoutingTable:
    """All peers known to one node, organized into k-buckets.

    Parameters
    ----------
    owner:
        Overlay address of the node owning this table.
    space:
        The overlay address space (defines bit width and metrics).
    limits:
        Per-bucket capacities; defaults to Swarm's ``k = 4``.

    Notes
    -----
    The table caches a numpy array of peer addresses for the vectorized
    nearest-peer query; the cache is invalidated on mutation. Tables in
    the paper's experiments are built once and then frozen, so the
    cache is almost always warm.
    """

    def __init__(self, owner: int, space: AddressSpace,
                 limits: BucketLimits | None = None) -> None:
        self.space = space
        self.owner = space.validate(owner, name="owner")
        self.limits = limits if limits is not None else BucketLimits()
        self._buckets: list[KBucket] = [
            KBucket(i, self.limits.capacity(i)) for i in range(space.bits)
        ]
        self._peer_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    def __contains__(self, address: object) -> bool:
        if not isinstance(address, int) or isinstance(address, bool):
            return False
        if address == self.owner or address not in self.space:
            return False
        return address in self._buckets[self.space.proximity(self.owner, address)]

    def __iter__(self) -> Iterator[int]:
        for bucket in self._buckets:
            yield from bucket

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = {
            bucket.index: len(bucket) for bucket in self._buckets if len(bucket)
        }
        return (
            f"RoutingTable(owner={self.owner}, peers={len(self)}, "
            f"buckets={populated})"
        )

    @property
    def buckets(self) -> tuple[KBucket, ...]:
        """The table's buckets, indexed by proximity order."""
        return tuple(self._buckets)

    def bucket(self, index: int) -> KBucket:
        """Return the bucket at proximity order *index*."""
        if not 0 <= index < self.space.bits:
            raise ConfigurationError(
                f"bucket index must be in [0, {self.space.bits}), got {index}"
            )
        return self._buckets[index]

    def bucket_of(self, address: int) -> KBucket:
        """Return the bucket *address* belongs to (whether present or not)."""
        return self._buckets[self.space.bucket_index(self.owner, address)]

    def peers(self) -> list[int]:
        """Every known peer address, shallowest bucket first."""
        return list(self)

    def peer_array(self) -> np.ndarray:
        """Known peers as a cached ``uint64`` numpy array."""
        if self._peer_cache is None:
            self._peer_cache = np.fromiter(
                self, dtype=np.uint64, count=len(self)
            )
        return self._peer_cache

    # ------------------------------------------------------------------
    # Mutation

    def add(self, address: int) -> bool:
        """Learn about a peer; return ``True`` if it was stored.

        A peer is rejected (``False``) when its bucket is full or it is
        already known. Adding the owner's own address raises
        :class:`~repro.errors.AddressError` via ``bucket_index``.
        """
        self.space.validate(address)
        bucket = self.bucket_of(address)
        added = bucket.add(address)
        if added:
            self._peer_cache = None
        return added

    def add_unbounded(self, address: int) -> bool:
        """Learn about a peer ignoring its bucket's capacity.

        Overlay builders use this for neighborhood peers, which Swarm
        keeps uncapped (paper §III-A: the last bucket "includes all
        nodes" beyond the depth).
        """
        self.space.validate(address)
        bucket = self.bucket_of(address)
        if address in bucket:
            return False
        # Bypass the capacity check while preserving bucket invariants.
        saved_capacity = bucket.capacity
        bucket.capacity = None
        try:
            added = bucket.add(address)
        finally:
            bucket.capacity = saved_capacity
        if added:
            self._peer_cache = None
        return added

    def remove(self, address: int) -> None:
        """Forget a peer; raise :class:`OverlayError` if unknown."""
        self.bucket_of(address).remove(address)
        self._peer_cache = None

    def extend(self, addresses: Iterable[int]) -> int:
        """Add peers until buckets fill; return how many were stored."""
        return sum(1 for address in addresses if self.add(address))

    # ------------------------------------------------------------------
    # Queries used by routing

    def closest_peer(self, target: int) -> int:
        """Return the known peer XOR-closest to *target*.

        Raises :class:`OverlayError` when the table is empty. The owner
        itself is never returned; the router compares the result with
        the owner's own distance to decide whether to stop.
        """
        peers = self.peer_array()
        if peers.size == 0:
            raise OverlayError(f"routing table of {self.owner} is empty")
        index = int(np.argmin(peers ^ np.uint64(self.space.validate(target))))
        return int(peers[index])

    def closest_peers(self, target: int, count: int) -> list[int]:
        """Return up to *count* known peers sorted by distance to *target*."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        return self.space.sort_by_distance(target, self.peers())[:count]

    def neighborhood_depth(self, minimum: int = NEIGHBORHOOD_MIN) -> int:
        """Shallowest proximity order with >= *minimum* peers at or beyond it.

        Returns 0 when the node knows fewer than *minimum* peers in
        total (the whole network is its neighborhood). This matches the
        paper's definition: the neighborhood is "defined by the
        proximity at which the node cannot connect to at least four
        other nodes".
        """
        if minimum < 1:
            raise ConfigurationError(f"minimum must be >= 1, got {minimum}")
        cumulative = 0
        # Walk from the deepest bucket toward bucket 0, accumulating
        # the population at proximity >= depth.
        for depth in range(self.space.bits - 1, -1, -1):
            cumulative += len(self._buckets[depth])
            if cumulative >= minimum:
                return depth
        return 0

    def neighborhood(self, minimum: int = NEIGHBORHOOD_MIN) -> list[int]:
        """Peers at proximity order >= :meth:`neighborhood_depth`."""
        depth = self.neighborhood_depth(minimum)
        members: list[int] = []
        for bucket in self._buckets[depth:]:
            members.extend(bucket)
        return members

    def bucket_histogram(self) -> dict[int, int]:
        """Map of bucket index to population, for diagnostics."""
        return {
            bucket.index: len(bucket)
            for bucket in self._buckets
            if len(bucket) > 0
        }
