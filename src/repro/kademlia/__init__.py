"""Kademlia overlay substrate: addressing, k-buckets, routing.

This subpackage implements the forwarding-Kademlia overlay that Swarm
builds on (paper §III-A): the flat XOR-metric address space shared by
nodes and content, per-node routing tables with capacity-limited
k-buckets plus an uncapped neighborhood, deterministic overlay
construction, and greedy request forwarding.
"""

from .address import (
    AddressSpace,
    bit_length_array,
    common_prefix_length,
    proximity,
    proximity_array,
    xor_distance,
)
from .buckets import (
    BucketLimits,
    KBucket,
    KADEMLIA_BUCKET_SIZE,
    NEIGHBORHOOD_MIN,
    SWARM_BUCKET_SIZE,
)
from .iterative import IterativeLookup, LookupResult
from .overlay import Overlay, OverlayConfig
from .routing import Route, Router, RoutingStats
from .table import RoutingTable

__all__ = [
    "AddressSpace",
    "BucketLimits",
    "IterativeLookup",
    "KBucket",
    "LookupResult",
    "KADEMLIA_BUCKET_SIZE",
    "NEIGHBORHOOD_MIN",
    "SWARM_BUCKET_SIZE",
    "Overlay",
    "OverlayConfig",
    "Route",
    "Router",
    "RoutingStats",
    "RoutingTable",
    "bit_length_array",
    "common_prefix_length",
    "proximity",
    "proximity_array",
    "xor_distance",
]
