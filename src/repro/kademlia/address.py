"""Overlay addressing for Kademlia-style networks.

Swarm places both nodes and content chunks on a single flat address
space of ``2**bits`` integers and measures distance with the Kademlia
XOR metric. The paper's simulations use ``bits = 16`` (addresses in
``[0, 2**16)``); the helpers here accept any width between 1 and 64
bits so tests can exercise tiny spaces exhaustively.

Key notions (paper §III-A):

* **XOR distance** ``d(a, b) = a ^ b`` — a metric: symmetric,
  ``d(a, b) = 0`` iff ``a == b``, and it satisfies the triangle
  inequality. Uniquely, for any ``a`` and distance ``d`` there is
  exactly one ``b`` with ``d(a, b) = d``, so "the closest node to an
  address" is well defined up to the address itself.
* **Proximity order** ``po(a, b)`` — the number of leading bits the
  two addresses share. ``po`` buckets the address space
  logarithmically: roughly half of a uniform population lies at
  ``po = 0``, a quarter at ``po = 1``, and so on. By convention
  ``po(a, a) == bits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import AddressError, ConfigurationError

__all__ = [
    "AddressSpace",
    "xor_distance",
    "proximity",
    "common_prefix_length",
    "bit_length_array",
    "proximity_array",
    "target_dtype",
]

#: Maximum supported address width in bits. 64 keeps every address a
#: machine int; the paper only needs 16.
MAX_BITS = 64


def xor_distance(a: int, b: int) -> int:
    """Return the Kademlia XOR distance between two addresses."""
    return a ^ b


def common_prefix_length(a: int, b: int, bits: int) -> int:
    """Return the number of leading bits shared by *a* and *b*.

    Equals *bits* when the addresses are identical.
    """
    diff = a ^ b
    if diff == 0:
        return bits
    return bits - diff.bit_length()


#: Alias matching the Swarm literature's name for this quantity.
proximity = common_prefix_length


def bit_length_array(values: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length`` of every element of an unsigned array.

    Implemented with integer shifts (a binary search over the bit
    positions) rather than ``log2``/``frexp``, which round and give
    off-by-one answers for integers above 2**53.
    """
    values = np.asarray(values, dtype=np.uint64)
    result = np.zeros(values.shape, dtype=np.int64)
    work = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        mask = work >= (np.uint64(1) << np.uint64(shift))
        result[mask] += shift
        work[mask] >>= np.uint64(shift)
    result[values != 0] += 1
    return result


def target_dtype(bits: int) -> np.dtype:
    """Smallest unsigned dtype holding every address of a *bits* space.

    The compact-dtype discipline of the vectorized backend: chunk
    target columns (and persisted trace addresses) stay in this dtype
    so the hop kernel never widens them. Spaces beyond 32 bits exceed
    every supported compact dtype and raise.
    """
    if bits < 1:
        raise ConfigurationError(f"bits must be >= 1, got {bits}")
    for candidate in (np.uint16, np.uint32):
        if (1 << bits) - 1 <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise ConfigurationError(
        f"a {bits}-bit address space exceeds the 32-bit capacity of the "
        f"widest supported target dtype"
    )


def proximity_array(owner: int, others: np.ndarray, bits: int) -> np.ndarray:
    """Proximity order of *owner* to every address in *others*.

    Vectorized counterpart of :func:`common_prefix_length`; entries
    equal to *owner* get proximity *bits*.
    """
    others = np.asarray(others, dtype=np.uint64)
    return bits - bit_length_array(others ^ np.uint64(owner))


@dataclass(frozen=True)
class AddressSpace:
    """A flat ``2**bits`` overlay address space.

    The address space is the single authority on address validity,
    distance and proximity computations. It is an immutable value
    object: two spaces with the same width are interchangeable.

    Parameters
    ----------
    bits:
        Address width in bits; the paper uses 16.
    """

    bits: int = 16

    def __post_init__(self) -> None:
        if isinstance(self.bits, bool) or not isinstance(self.bits, int):
            raise ConfigurationError(
                f"bits must be an int, got {type(self.bits).__name__}"
            )
        if not 1 <= self.bits <= MAX_BITS:
            raise ConfigurationError(
                f"bits must be in [1, {MAX_BITS}], got {self.bits}"
            )

    @property
    def size(self) -> int:
        """Number of distinct addresses, ``2**bits``."""
        return 1 << self.bits

    @property
    def max_address(self) -> int:
        """Largest valid address, ``2**bits - 1``."""
        return self.size - 1

    def __contains__(self, address: object) -> bool:
        return (
            isinstance(address, int)
            and not isinstance(address, bool)
            and 0 <= address < self.size
        )

    def validate(self, address: int, *, name: str = "address") -> int:
        """Return *address* if valid, else raise :class:`AddressError`."""
        if address not in self:
            raise AddressError(
                f"{name} {address!r} outside address space [0, {self.size})"
            )
        return address

    def validate_many(self, addresses: Iterable[int],
                      *, name: str = "address") -> list[int]:
        """Validate every address in *addresses*; return them as a list."""
        return [self.validate(a, name=name) for a in addresses]

    def distance(self, a: int, b: int) -> int:
        """XOR distance between two validated addresses."""
        self.validate(a, name="a")
        self.validate(b, name="b")
        return a ^ b

    def proximity(self, a: int, b: int) -> int:
        """Proximity order (shared prefix length) of two addresses."""
        self.validate(a, name="a")
        self.validate(b, name="b")
        return common_prefix_length(a, b, self.bits)

    def bucket_index(self, owner: int, other: int) -> int:
        """Routing-table bucket of *other* from *owner*'s point of view.

        This is exactly the proximity order; kept as a separate name
        because routing tables index buckets by it. Raises
        :class:`AddressError` for ``owner == other`` — a node never
        stores itself in a bucket.
        """
        if owner == other:
            raise AddressError("a node has no bucket for its own address")
        return self.proximity(owner, other)

    def closest(self, target: int, candidates: Sequence[int]) -> int:
        """Return the candidate address XOR-closest to *target*.

        Ties are impossible in the XOR metric (distinct candidates have
        distinct distances to any target), so the result is unique.
        Raises :class:`AddressError` if *candidates* is empty.
        """
        self.validate(target, name="target")
        if len(candidates) == 0:
            raise AddressError("closest() requires at least one candidate")
        best = None
        best_distance = self.size
        for candidate in candidates:
            self.validate(candidate, name="candidate")
            distance = candidate ^ target
            if distance < best_distance:
                best = candidate
                best_distance = distance
        assert best is not None
        return best

    def closest_index(self, target: int, candidates: np.ndarray) -> int:
        """Vectorized :meth:`closest` over a numpy array of addresses.

        Returns the *index* of the closest candidate rather than the
        address, which is what the vectorized router needs.
        """
        if candidates.size == 0:
            raise AddressError("closest_index() requires at least one candidate")
        return int(np.argmin(candidates ^ np.uint64(target)))

    def sort_by_distance(self, target: int,
                         candidates: Iterable[int]) -> list[int]:
        """Return *candidates* sorted by increasing XOR distance to *target*."""
        self.validate(target, name="target")
        return sorted(candidates, key=lambda c: c ^ target)

    def random_addresses(self, count: int, rng: np.random.Generator,
                         *, unique: bool = False) -> list[int]:
        """Draw *count* uniform addresses from the space.

        With ``unique=True`` the addresses are drawn without
        replacement (requires ``count <= size``).
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if unique:
            if count > self.size:
                raise ConfigurationError(
                    f"cannot draw {count} unique addresses from a space of "
                    f"{self.size}"
                )
            chosen = rng.choice(self.size, size=count, replace=False)
            return [int(a) for a in chosen]
        return [int(a) for a in rng.integers(0, self.size, size=count)]

    def iter_prefix_group(self, prefix: int, prefix_len: int) -> Iterator[int]:
        """Yield all addresses whose top *prefix_len* bits equal *prefix*.

        Useful in tests to enumerate a bucket's candidate set
        exhaustively in small spaces.
        """
        if not 0 <= prefix_len <= self.bits:
            raise ConfigurationError(
                f"prefix_len must be in [0, {self.bits}], got {prefix_len}"
            )
        if prefix >= (1 << prefix_len) and prefix_len > 0:
            raise AddressError(
                f"prefix {prefix} does not fit in {prefix_len} bits"
            )
        suffix_bits = self.bits - prefix_len
        base = prefix << suffix_bits
        for suffix in range(1 << suffix_bits):
            yield base | suffix

    def format_address(self, address: int) -> str:
        """Render an address as a zero-padded binary string."""
        self.validate(address)
        return format(address, f"0{self.bits}b")
