"""Performance subsystem: table caching, sharing, and benchmarking.

PR 2 measured ``sweep --jobs 4`` running *slower* than serial because
every worker process rebuilt the dense
:class:`~repro.backends.fast.NextHopTable` (about 5 s and 131 MB at
paper scale) for every sweep point. This package removes that
redundancy and tracks the repository's performance trajectory:

* :mod:`~repro.perf.table_cache` — a process-global, content-addressed
  :class:`TableCache` keyed by
  :meth:`~repro.kademlia.overlay.Overlay.fingerprint`; every consumer
  of :func:`repro.backends.fast.cached_next_hop_table` goes through
  it, so one topology is built at most once per process;
* :mod:`~repro.perf.shared` — publishes built tables into
  :mod:`multiprocessing.shared_memory` (refcounted, unlinked when the
  last sweep releases them) and attaches them read-only in worker
  processes, so a K-seed x M-parameter sweep over one topology builds
  its table exactly once machine-wide;
* :mod:`~repro.perf.bench` — the ``repro-swarm bench`` headline
  benchmark, which emits ``BENCH_headline.json`` with git/seed
  provenance and compares against a committed baseline (the CI perf
  smoke gate).

The epoch-driven scenario layer adds :class:`EpochTableCache` beside
the dense-table cache: per-epoch storer tables under topology change
are content-addressed by chained delta fingerprints and satisfied by
incremental patches of the parent epoch's table (see
:mod:`repro.kademlia.table` and :mod:`repro.scenarios.plan`), so
replayed scenario schedules — sweep seed replicas in particular —
never recompute an epoch's table twice in one process.
"""

from .bench import BENCH_FORMAT, check_regression, headline_bench
from .shared import (
    SharedArraySpec,
    SharedTableHandle,
    SharedTableRegistry,
    attach_table,
    shared_table_registry,
)
from .table_cache import (
    EPOCH_TABLE_LOG_ENV,
    CacheStats,
    EpochCacheStats,
    EpochTableCache,
    TableCache,
    global_epoch_table_cache,
    global_table_cache,
)

__all__ = [
    "BENCH_FORMAT",
    "CacheStats",
    "EPOCH_TABLE_LOG_ENV",
    "EpochCacheStats",
    "EpochTableCache",
    "SharedArraySpec",
    "SharedTableHandle",
    "SharedTableRegistry",
    "TableCache",
    "attach_table",
    "check_regression",
    "global_epoch_table_cache",
    "global_table_cache",
    "headline_bench",
    "shared_table_registry",
]
