"""Content-addressed, process-global next-hop-table cache.

Every consumer of a :class:`~repro.backends.fast.NextHopTable` —
:class:`~repro.backends.fast.FastSimulation`, the baselines wrapping
it, and the sweep workers — resolves tables through one
:class:`TableCache` keyed by
:meth:`Overlay.fingerprint() <repro.kademlia.overlay.Overlay.fingerprint>`.
The cache has three sources, tried in order:

1. **memo** — a table already resolved in this process (hit);
2. **shared memory** — a :class:`~repro.perf.shared.SharedTableHandle`
   registered by the sweep executor: the table is attached read-only
   from the publishing process instead of being rebuilt (attach);
3. **build** — a cold :class:`~repro.backends.fast.NextHopTable`
   construction (build).

:attr:`TableCache.stats` counts each source, which is how the
instrumented sweep tests assert "exactly one build per topology"
without depending on machine speed. The cache is intentionally
unbounded: a process touches at most a handful of topologies, and the
paper-scale table is ~131 MB — far below the cost of rebuilding it
per sweep point.

The epoch-driven scenario layer adds a second, lighter cache:
:class:`EpochTableCache` memoizes the per-epoch *storer* tables that
topology dynamics (churn with re-replication, join storms) would
otherwise recompute every epoch of every run. Keys are the chained
fingerprints of :func:`~repro.kademlia.table.chain_fingerprint`
(``parent_fp + delta``), so any two runs replaying the same scenario
schedule over the same overlay — sweep seed replicas above all —
resolve each epoch's table once per process; misses are satisfied by
a delta *patch* of the parent epoch's table rather than a full
rebuild whenever the plan still holds a valid parent. Set the
:data:`EPOCH_TABLE_LOG_ENV` environment variable to a file path to
record one ``"<fingerprint> <pid> <patch|rebuild|hit>"`` line per
resolution — the instrumented scenario-sweep tests use it to prove
the delta cache beats rebuild-per-epoch without timing anything.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.fast import NextHopTable
    from ..kademlia.overlay import Overlay
    from .shared import SharedTableHandle

__all__ = [
    "CacheStats",
    "TableCache",
    "global_table_cache",
    "EpochCacheStats",
    "EpochTableCache",
    "global_epoch_table_cache",
    "configure_epoch_table_cache",
    "log_epoch_event",
    "EPOCH_TABLE_LOG_ENV",
]

#: When set, every epoch-table resolution appends one
#: ``"<fingerprint> <pid> <event>"`` line to the named file.
EPOCH_TABLE_LOG_ENV = "REPRO_EPOCH_TABLE_LOG"


@dataclass
class CacheStats:
    """How many tables this cache built, attached, and re-served."""

    builds: int = 0
    attaches: int = 0
    hits: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-data copy (for logs and assertions)."""
        return {
            "builds": self.builds,
            "attaches": self.attaches,
            "hits": self.hits,
        }


class TableCache:
    """Memoizes :class:`NextHopTable` instances by overlay fingerprint.

    Not thread-safe; the simulation stack is process-parallel, never
    thread-parallel, and each process owns its cache.
    """

    def __init__(self) -> None:
        self._tables: dict[str, "NextHopTable"] = {}
        self._handles: dict[str, "SharedTableHandle"] = {}
        self._working: dict[str, np.ndarray] = {}
        self.stats = CacheStats()

    def get(self, overlay: "Overlay") -> "NextHopTable":
        """The table for *overlay*: memoized, attached, or built."""
        fingerprint = overlay.fingerprint()
        table = self._tables.get(fingerprint)
        if table is not None:
            self.stats.hits += 1
            return table
        handle = self._handles.get(fingerprint)
        if handle is not None:
            from .shared import attach_table

            table = attach_table(handle, overlay)
            self.stats.attaches += 1
        else:
            from ..backends.fast import NextHopTable

            table = NextHopTable(overlay)
            self.stats.builds += 1
        self._tables[fingerprint] = table
        return table

    def register_handle(self, handle: "SharedTableHandle") -> None:
        """Offer a shared-memory table for future :meth:`get` calls.

        Registration is lazy and idempotent: nothing is attached until
        a simulation actually asks for that topology, and re-offering
        the same fingerprint simply replaces the handle.
        """
        self._handles[handle.fingerprint] = handle

    def install(self, fingerprint: str, table: "NextHopTable") -> None:
        """Memoize an externally built table under *fingerprint*."""
        self._tables[fingerprint] = table

    def writable_coded(self, table: "NextHopTable") -> np.ndarray:
        """A writable coded matrix for in-place epoch patching.

        Built tables own their coded matrix, so epoch plans patch (and
        revert) it directly — zero copies. Shared-memory attachments
        are read-only by design; for those, one writable copy per
        topology is made here and reused by every later run in this
        process (each run reverts its patches on exit, so the copy is
        pristine again whenever it is handed out).
        """
        coded = table.coded_transposed
        if coded.flags.writeable:
            return coded
        fingerprint = table.overlay.fingerprint()
        working = self._working.get(fingerprint)
        if working is None:
            working = np.array(coded)
            self._working[fingerprint] = working
        return working

    def discard(self, fingerprint: str) -> None:
        """Drop one memoized table and any registered handle for it."""
        self._tables.pop(fingerprint, None)
        self._handles.pop(fingerprint, None)
        self._working.pop(fingerprint, None)

    def clear(self) -> None:
        """Drop every table, handle, working copy, and counter."""
        self._tables.clear()
        self._handles.clear()
        self._working.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._tables


@dataclass
class EpochCacheStats:
    """How many epoch tables were patched, rebuilt, and re-served.

    ``shared`` counts artifacts installed from another process's
    shared-memory publication — work this process did *not* do.
    """

    patches: int = 0
    rebuilds: int = 0
    hits: int = 0
    shared: int = 0

    @property
    def resolutions(self) -> int:
        """Total epoch-table requests served."""
        return self.patches + self.rebuilds + self.hits

    def snapshot(self) -> dict[str, int]:
        """Plain-data copy (for logs and assertions)."""
        return {
            "patches": self.patches,
            "rebuilds": self.rebuilds,
            "hits": self.hits,
            "shared": self.shared,
        }


def log_epoch_event(fingerprint: str, event: str) -> None:
    """Append one epoch-table event line to the instrumentation log.

    Used by the cache itself (``hit``/``patch``/``rebuild``/``shared``
    resolutions) and by the epoch plans' coded-matrix patching
    (``coded-patch``/``coded-revert``), so the instrumented tests can
    reconstruct exactly which process did which table work.
    """
    path = os.environ.get(EPOCH_TABLE_LOG_ENV)
    if not path:
        return
    # O_APPEND single-line writes don't interleave across the sweep
    # worker processes the instrumented tests fan out over.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{fingerprint} {os.getpid()} {event}\n")


class EpochTableCache:
    """Memoizes per-epoch storer tables by chained fingerprint.

    Values are the compact per-address storer arrays the epoch plans
    resolve (a few hundred KB at paper scale) and, under a
    ``"coded:"``-prefixed key, the sparse
    :class:`~repro.kademlia.table.CodedPatch` objects that re-home the
    coded routing matrix's arrive band for storer-recomputing epochs
    (anything exposing ``nbytes`` participates in the bytes budget). Unlike the dense
    :class:`TableCache`, every churn epoch has a distinct alive set —
    a long run inserts one table per epoch forever — so this cache is
    **LRU-bounded**. The default bound is a *bytes* budget
    (:data:`DEFAULT_MAX_BYTES`), measured against each table's actual
    ``nbytes``, so the resident-memory ceiling is the same whether the
    address space is 12 bits (tiny tables, thousands cached) or 22
    bits (8 MB tables, a handful cached) — bounding a table *count*
    instead would scale memory 64x across that range. ``max_tables``
    overrides the budget with an explicit count (exposed as
    ``repro-swarm sweep --epoch-cache-tables``). Eviction is always
    safe: a live :class:`~repro.scenarios.plan.EpochPlan` patches
    from its own chain-tip reference, never from the cache, so
    dropping an old epoch only costs a replayed schedule a recompute.
    Process-global and not thread-safe, like :class:`TableCache`.
    """

    #: Default bytes budget, equivalent to the historical 256-table
    #: bound at the paper's 16-bit space (131 KB per uint16 table,
    #: ~34 MB resident).
    DEFAULT_MAX_BYTES = 256 * (1 << 16) * 2

    #: The historical count bound the bytes budget replaced; kept as
    #: the reference point for sizing and the CLI help text.
    DEFAULT_MAX_TABLES = 256

    def __init__(self, max_tables: int | None = None,
                 max_bytes: int | None = None) -> None:
        if max_tables is not None and max_tables < 1:
            raise ValueError(f"max_tables must be >= 1, got {max_tables}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_tables is None and max_bytes is None:
            max_bytes = self.DEFAULT_MAX_BYTES
        self._tables: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.max_tables = max_tables
        self.max_bytes = max_bytes
        self._bytes = 0
        self.stats = EpochCacheStats()
        # Shared-memory segments whose lifetime is tied to installed
        # epoch artifacts (see adopt_segments); closed on clear().
        self._segments: list = []

    @property
    def nbytes(self) -> int:
        """Bytes currently held by cached epoch tables."""
        return self._bytes

    def get(self, fingerprint: str,
            build: Callable[[], np.ndarray], *,
            patched: bool = True) -> np.ndarray:
        """The table for *fingerprint*, building via *build* on a miss.

        ``patched`` records how a miss was satisfied — a delta patch
        of the parent epoch's table or a from-scratch rebuild — so the
        benchmark and the instrumented tests can tell the two apart.
        """
        table = self._tables.get(fingerprint)
        if table is not None:
            self.stats.hits += 1
            self._tables.move_to_end(fingerprint)
            log_epoch_event(fingerprint, "hit")
            return table
        table = build()
        if patched:
            self.stats.patches += 1
            log_epoch_event(fingerprint, "patch")
        else:
            self.stats.rebuilds += 1
            log_epoch_event(fingerprint, "rebuild")
        self._tables[fingerprint] = table
        self._bytes += int(table.nbytes)
        self._evict()
        return table

    def install(self, fingerprint: str, table) -> bool:
        """Adopt a pre-resolved epoch artifact published by another process.

        Sweeps precompute each schedule's storer tables and coded
        patches once in the parent and ship them over shared memory;
        workers install the attached views here so their epoch plans
        resolve every request as a hit without redoing the patch work.
        Returns ``False`` (and counts nothing) when *fingerprint* is
        already resident.
        """
        if fingerprint in self._tables:
            return False
        self._tables[fingerprint] = table
        self._bytes += int(table.nbytes)
        self.stats.shared += 1
        log_epoch_event(fingerprint, "shared")
        self._evict()
        return True

    def adopt_segments(self, segments) -> None:
        """Keep *segments* (shared-memory handles) open until clear().

        Installed views alias these segments' buffers, so they must
        outlive the cached entries.
        """
        self._segments.extend(segments)

    def _evict(self) -> None:
        """Drop LRU entries until within bounds (keeping the newest)."""
        while len(self._tables) > 1 and (
            (self.max_tables is not None
             and len(self._tables) > self.max_tables)
            or (self.max_bytes is not None
                and self._bytes > self.max_bytes)
        ):
            _, evicted = self._tables.popitem(last=False)
            self._bytes -= int(evicted.nbytes)

    def clear(self) -> None:
        """Drop every epoch table and counter (for tests)."""
        self._tables.clear()
        self._bytes = 0
        self.stats = EpochCacheStats()
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, ValueError):  # pragma: no cover - teardown
                pass
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._tables


_GLOBAL_CACHE: TableCache | None = None
_GLOBAL_EPOCH_CACHE: EpochTableCache | None = None


def global_table_cache() -> TableCache:
    """The process-wide cache behind ``cached_next_hop_table``."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = TableCache()
    return _GLOBAL_CACHE


def global_epoch_table_cache() -> EpochTableCache:
    """The process-wide cache epoch plans resolve storer tables through."""
    global _GLOBAL_EPOCH_CACHE
    if _GLOBAL_EPOCH_CACHE is None:
        _GLOBAL_EPOCH_CACHE = EpochTableCache()
    return _GLOBAL_EPOCH_CACHE


def configure_epoch_table_cache(max_tables: int | None = None,
                                max_bytes: int | None = None
                                ) -> EpochTableCache:
    """Re-bound the process-global epoch cache, keeping its contents.

    Called by sweep workers with the ``--epoch-cache-tables`` value
    before executing a point. Idempotent — re-applying the same bounds
    is free, and contents survive a bound change (only the overflow,
    if any, is evicted), so per-point calls never flush the
    cross-replica amortization the cache exists for.
    """
    if max_tables is not None and max_tables < 1:
        raise ValueError(f"max_tables must be >= 1, got {max_tables}")
    if max_tables is None and max_bytes is None:
        max_bytes = EpochTableCache.DEFAULT_MAX_BYTES
    cache = global_epoch_table_cache()
    if cache.max_tables != max_tables or cache.max_bytes != max_bytes:
        cache.max_tables = max_tables
        cache.max_bytes = max_bytes
        cache._evict()
    return cache
