"""Content-addressed, process-global next-hop-table cache.

Every consumer of a :class:`~repro.backends.fast.NextHopTable` —
:class:`~repro.backends.fast.FastSimulation`, the baselines wrapping
it, and the sweep workers — resolves tables through one
:class:`TableCache` keyed by
:meth:`Overlay.fingerprint() <repro.kademlia.overlay.Overlay.fingerprint>`.
The cache has three sources, tried in order:

1. **memo** — a table already resolved in this process (hit);
2. **shared memory** — a :class:`~repro.perf.shared.SharedTableHandle`
   registered by the sweep executor: the table is attached read-only
   from the publishing process instead of being rebuilt (attach);
3. **build** — a cold :class:`~repro.backends.fast.NextHopTable`
   construction (build).

:attr:`TableCache.stats` counts each source, which is how the
instrumented sweep tests assert "exactly one build per topology"
without depending on machine speed. The cache is intentionally
unbounded: a process touches at most a handful of topologies, and the
paper-scale table is ~131 MB — far below the cost of rebuilding it
per sweep point.

The epoch-driven scenario layer adds a second, lighter cache:
:class:`EpochTableCache` memoizes the per-epoch *storer* tables that
topology dynamics (churn with re-replication, join storms) would
otherwise recompute every epoch of every run. Keys are the chained
fingerprints of :func:`~repro.kademlia.table.chain_fingerprint`
(``parent_fp + delta``), so any two runs replaying the same scenario
schedule over the same overlay — sweep seed replicas above all —
resolve each epoch's table once per process; misses are satisfied by
a delta *patch* of the parent epoch's table rather than a full
rebuild whenever the plan still holds a valid parent. Set the
:data:`EPOCH_TABLE_LOG_ENV` environment variable to a file path to
record one ``"<fingerprint> <pid> <patch|rebuild|hit>"`` line per
resolution — the instrumented scenario-sweep tests use it to prove
the delta cache beats rebuild-per-epoch without timing anything.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.fast import NextHopTable
    from ..kademlia.overlay import Overlay
    from .shared import SharedTableHandle

__all__ = [
    "CacheStats",
    "TableCache",
    "global_table_cache",
    "EpochCacheStats",
    "EpochTableCache",
    "global_epoch_table_cache",
    "EPOCH_TABLE_LOG_ENV",
]

#: When set, every epoch-table resolution appends one
#: ``"<fingerprint> <pid> <event>"`` line to the named file.
EPOCH_TABLE_LOG_ENV = "REPRO_EPOCH_TABLE_LOG"


@dataclass
class CacheStats:
    """How many tables this cache built, attached, and re-served."""

    builds: int = 0
    attaches: int = 0
    hits: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-data copy (for logs and assertions)."""
        return {
            "builds": self.builds,
            "attaches": self.attaches,
            "hits": self.hits,
        }


class TableCache:
    """Memoizes :class:`NextHopTable` instances by overlay fingerprint.

    Not thread-safe; the simulation stack is process-parallel, never
    thread-parallel, and each process owns its cache.
    """

    def __init__(self) -> None:
        self._tables: dict[str, "NextHopTable"] = {}
        self._handles: dict[str, "SharedTableHandle"] = {}
        self.stats = CacheStats()

    def get(self, overlay: "Overlay") -> "NextHopTable":
        """The table for *overlay*: memoized, attached, or built."""
        fingerprint = overlay.fingerprint()
        table = self._tables.get(fingerprint)
        if table is not None:
            self.stats.hits += 1
            return table
        handle = self._handles.get(fingerprint)
        if handle is not None:
            from .shared import attach_table

            table = attach_table(handle, overlay)
            self.stats.attaches += 1
        else:
            from ..backends.fast import NextHopTable

            table = NextHopTable(overlay)
            self.stats.builds += 1
        self._tables[fingerprint] = table
        return table

    def register_handle(self, handle: "SharedTableHandle") -> None:
        """Offer a shared-memory table for future :meth:`get` calls.

        Registration is lazy and idempotent: nothing is attached until
        a simulation actually asks for that topology, and re-offering
        the same fingerprint simply replaces the handle.
        """
        self._handles[handle.fingerprint] = handle

    def install(self, fingerprint: str, table: "NextHopTable") -> None:
        """Memoize an externally built table under *fingerprint*."""
        self._tables[fingerprint] = table

    def discard(self, fingerprint: str) -> None:
        """Drop one memoized table and any registered handle for it."""
        self._tables.pop(fingerprint, None)
        self._handles.pop(fingerprint, None)

    def clear(self) -> None:
        """Drop every table, handle, and counter (for tests)."""
        self._tables.clear()
        self._handles.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._tables


@dataclass
class EpochCacheStats:
    """How many epoch tables were patched, rebuilt, and re-served."""

    patches: int = 0
    rebuilds: int = 0
    hits: int = 0

    @property
    def resolutions(self) -> int:
        """Total epoch-table requests served."""
        return self.patches + self.rebuilds + self.hits

    def snapshot(self) -> dict[str, int]:
        """Plain-data copy (for logs and assertions)."""
        return {
            "patches": self.patches,
            "rebuilds": self.rebuilds,
            "hits": self.hits,
        }


def _log_epoch_event(fingerprint: str, event: str) -> None:
    path = os.environ.get(EPOCH_TABLE_LOG_ENV)
    if not path:
        return
    # O_APPEND single-line writes don't interleave across the sweep
    # worker processes the instrumented tests fan out over.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{fingerprint} {os.getpid()} {event}\n")


class EpochTableCache:
    """Memoizes per-epoch storer tables by chained fingerprint.

    Values are the compact per-address storer arrays the epoch plans
    resolve (a few hundred KB at paper scale). Unlike the dense
    :class:`TableCache`, every churn epoch has a distinct alive set —
    a long run inserts one table per epoch forever — so this cache is
    **LRU-bounded** (``max_tables``). Eviction is always safe: a live
    :class:`~repro.scenarios.plan.EpochPlan` patches from its own
    chain-tip reference, never from the cache, so dropping an old
    epoch only costs a replayed schedule a recompute. Process-global
    and not thread-safe, like :class:`TableCache`.
    """

    #: Default LRU bound: at the paper's 16-bit space (131 KB per
    #: table) this caps resident epoch tables at ~34 MB.
    DEFAULT_MAX_TABLES = 256

    def __init__(self, max_tables: int = DEFAULT_MAX_TABLES) -> None:
        if max_tables < 1:
            raise ValueError(f"max_tables must be >= 1, got {max_tables}")
        self._tables: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.max_tables = max_tables
        self.stats = EpochCacheStats()

    def get(self, fingerprint: str,
            build: Callable[[], np.ndarray], *,
            patched: bool = True) -> np.ndarray:
        """The table for *fingerprint*, building via *build* on a miss.

        ``patched`` records how a miss was satisfied — a delta patch
        of the parent epoch's table or a from-scratch rebuild — so the
        benchmark and the instrumented tests can tell the two apart.
        """
        table = self._tables.get(fingerprint)
        if table is not None:
            self.stats.hits += 1
            self._tables.move_to_end(fingerprint)
            _log_epoch_event(fingerprint, "hit")
            return table
        table = build()
        if patched:
            self.stats.patches += 1
            _log_epoch_event(fingerprint, "patch")
        else:
            self.stats.rebuilds += 1
            _log_epoch_event(fingerprint, "rebuild")
        self._tables[fingerprint] = table
        while len(self._tables) > self.max_tables:
            self._tables.popitem(last=False)
        return table

    def clear(self) -> None:
        """Drop every epoch table and counter (for tests)."""
        self._tables.clear()
        self.stats = EpochCacheStats()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._tables


_GLOBAL_CACHE: TableCache | None = None
_GLOBAL_EPOCH_CACHE: EpochTableCache | None = None


def global_table_cache() -> TableCache:
    """The process-wide cache behind ``cached_next_hop_table``."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = TableCache()
    return _GLOBAL_CACHE


def global_epoch_table_cache() -> EpochTableCache:
    """The process-wide cache epoch plans resolve storer tables through."""
    global _GLOBAL_EPOCH_CACHE
    if _GLOBAL_EPOCH_CACHE is None:
        _GLOBAL_EPOCH_CACHE = EpochTableCache()
    return _GLOBAL_EPOCH_CACHE
