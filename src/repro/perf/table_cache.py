"""Content-addressed, process-global next-hop-table cache.

Every consumer of a :class:`~repro.backends.fast.NextHopTable` —
:class:`~repro.backends.fast.FastSimulation`, the baselines wrapping
it, and the sweep workers — resolves tables through one
:class:`TableCache` keyed by
:meth:`Overlay.fingerprint() <repro.kademlia.overlay.Overlay.fingerprint>`.
The cache has three sources, tried in order:

1. **memo** — a table already resolved in this process (hit);
2. **shared memory** — a :class:`~repro.perf.shared.SharedTableHandle`
   registered by the sweep executor: the table is attached read-only
   from the publishing process instead of being rebuilt (attach);
3. **build** — a cold :class:`~repro.backends.fast.NextHopTable`
   construction (build).

:attr:`TableCache.stats` counts each source, which is how the
instrumented sweep tests assert "exactly one build per topology"
without depending on machine speed. The cache is intentionally
unbounded: a process touches at most a handful of topologies, and the
paper-scale table is ~131 MB — far below the cost of rebuilding it
per sweep point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.fast import NextHopTable
    from ..kademlia.overlay import Overlay
    from .shared import SharedTableHandle

__all__ = ["CacheStats", "TableCache", "global_table_cache"]


@dataclass
class CacheStats:
    """How many tables this cache built, attached, and re-served."""

    builds: int = 0
    attaches: int = 0
    hits: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-data copy (for logs and assertions)."""
        return {
            "builds": self.builds,
            "attaches": self.attaches,
            "hits": self.hits,
        }


class TableCache:
    """Memoizes :class:`NextHopTable` instances by overlay fingerprint.

    Not thread-safe; the simulation stack is process-parallel, never
    thread-parallel, and each process owns its cache.
    """

    def __init__(self) -> None:
        self._tables: dict[str, "NextHopTable"] = {}
        self._handles: dict[str, "SharedTableHandle"] = {}
        self.stats = CacheStats()

    def get(self, overlay: "Overlay") -> "NextHopTable":
        """The table for *overlay*: memoized, attached, or built."""
        fingerprint = overlay.fingerprint()
        table = self._tables.get(fingerprint)
        if table is not None:
            self.stats.hits += 1
            return table
        handle = self._handles.get(fingerprint)
        if handle is not None:
            from .shared import attach_table

            table = attach_table(handle, overlay)
            self.stats.attaches += 1
        else:
            from ..backends.fast import NextHopTable

            table = NextHopTable(overlay)
            self.stats.builds += 1
        self._tables[fingerprint] = table
        return table

    def register_handle(self, handle: "SharedTableHandle") -> None:
        """Offer a shared-memory table for future :meth:`get` calls.

        Registration is lazy and idempotent: nothing is attached until
        a simulation actually asks for that topology, and re-offering
        the same fingerprint simply replaces the handle.
        """
        self._handles[handle.fingerprint] = handle

    def install(self, fingerprint: str, table: "NextHopTable") -> None:
        """Memoize an externally built table under *fingerprint*."""
        self._tables[fingerprint] = table

    def discard(self, fingerprint: str) -> None:
        """Drop one memoized table and any registered handle for it."""
        self._tables.pop(fingerprint, None)
        self._handles.pop(fingerprint, None)

    def clear(self) -> None:
        """Drop every table, handle, and counter (for tests)."""
        self._tables.clear()
        self._handles.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._tables


_GLOBAL_CACHE: TableCache | None = None


def global_table_cache() -> TableCache:
    """The process-wide cache behind ``cached_next_hop_table``."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = TableCache()
    return _GLOBAL_CACHE
