"""Shared-memory publication of next-hop tables.

The sweep executor's parent process builds (or reuses) each unique
topology's :class:`~repro.backends.fast.NextHopTable` once, copies its
two dense arrays — the terminal-coded ``[target, node]`` matrix and
the per-address storer vector, both already in the compact entry
dtype —
into :class:`multiprocessing.shared_memory.SharedMemory` segments, and
ships a small plain-data :class:`SharedTableHandle` to every worker.
Workers attach the segments **read-only** and wrap them in a
:class:`~repro.backends.fast.NextHopTable` via
:meth:`~repro.backends.fast.NextHopTable.from_arrays` — zero copies,
zero rebuilds, and (on Linux) one physical copy of the ~131 MB
paper-scale table shared by every worker.

Cleanup is refcounted in the publishing process: each sweep run
acquires the handles it needs from the :class:`SharedTableRegistry`
and releases them when done; a segment is closed and unlinked when its
last acquirer releases it. Workers deliberately *detach without
unlinking* (the publisher owns the segment), which requires opting
out of :mod:`multiprocessing.resource_tracker` bookkeeping — Python
3.13 has ``track=False`` for exactly this, and :func:`_open_segment`
falls back to unregistering manually on older interpreters.
"""

from __future__ import annotations

import os
import secrets
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.fast import NextHopTable
    from ..kademlia.overlay import Overlay

__all__ = [
    "SharedArraySpec",
    "SharedTableHandle",
    "SharedEpochTablesHandle",
    "SharedTableRegistry",
    "attach_table",
    "attach_epoch_tables",
    "pinned_tables",
    "shared_table_registry",
    "sweep_stale_segments",
]

#: Prefix of every segment this registry creates. Embedding the
#: publisher's pid makes leaked segments attributable: a segment named
#: ``repro_<pid>_...`` whose pid no longer exists can only be garbage
#: left by a killed publisher, which is exactly what
#: :func:`sweep_stale_segments` reclaims at startup.
SEGMENT_PREFIX = "repro"

#: Where POSIX shared memory appears as files (Linux). On platforms
#: without it the stale sweep degrades to a silent no-op.
_SHM_DIR = Path("/dev/shm")


def _segment_name() -> str:
    """A fresh ``repro_<pid>_<hex>`` segment name for this process."""
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    """Whether *pid* currently names a process we may not disturb."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists (another user's), or unknowable: keep it
    return True


def sweep_stale_segments() -> list[str]:
    """Unlink ``repro_<pid>_*`` segments whose publisher is dead.

    A publisher killed with SIGKILL never reaches its refcounted
    ``release`` path, leaving its segments pinned in ``/dev/shm``
    forever (shared memory survives process death by design). Every
    fresh publisher sweeps those on startup: a segment carrying a pid
    that no longer exists is unowned by construction — live publishers
    always outlive their segments' names. Returns the names removed.
    """
    removed: list[str] = []
    try:
        entries = list(_SHM_DIR.iterdir())
    except OSError:
        return removed
    for entry in entries:
        parts = entry.name.split("_", 2)
        if len(parts) != 3 or parts[0] != SEGMENT_PREFIX:
            continue
        try:
            pid = int(parts[1])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = _open_segment(entry.name)
        except (OSError, ValueError):  # pragma: no cover - raced away
            continue
        try:
            segment.unlink()
            segment.close()
        except OSError:  # pragma: no cover - raced away
            continue
        removed.append(entry.name)
    if removed:
        warnings.warn(
            f"reclaimed {len(removed)} stale shared-memory segment(s) "
            f"left by dead publisher(s): {sorted(removed)}",
            RuntimeWarning,
        )
    return removed


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-map one array from shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def to_payload(self) -> dict:
        """Plain-data form safe to pickle into spawn workers."""
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SharedArraySpec":
        """Inverse of :meth:`to_payload`."""
        return cls(
            name=str(payload["name"]),
            shape=tuple(int(v) for v in payload["shape"]),
            dtype=str(payload["dtype"]),
        )


@dataclass(frozen=True)
class SharedTableHandle:
    """A published table: fingerprint plus its two array segments."""

    fingerprint: str
    coded: SharedArraySpec
    storer: SharedArraySpec

    def to_payload(self) -> dict:
        """Plain-data form safe to pickle into spawn workers."""
        return {
            "fingerprint": self.fingerprint,
            "coded": self.coded.to_payload(),
            "storer": self.storer.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SharedTableHandle":
        """Inverse of :meth:`to_payload`."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            coded=SharedArraySpec.from_payload(payload["coded"]),
            storer=SharedArraySpec.from_payload(payload["storer"]),
        )


@dataclass(frozen=True)
class SharedEpochTablesHandle:
    """One scenario schedule's published epoch artifacts.

    The publishing sweep parent replays the scenario schedule once
    (:func:`~repro.scenarios.plan.precompute_epoch_tables`) and packs
    the results into at most three segments: every epoch storer table
    stacked into one ``(k, space)`` matrix, and every sparse
    :class:`~repro.kademlia.table.CodedPatch` concatenated into one
    indices and one prior array, sliced back apart by ``patch_offsets``
    on attach. ``storer_keys``/``patch_keys`` carry the chained
    fingerprints the attaching worker installs the artifacts under in
    its :class:`~repro.perf.table_cache.EpochTableCache` — which is
    what turns per-worker epoch patching into once-per-machine.
    """

    key: str
    n_nodes: int
    storer_keys: tuple[str, ...]
    storers: SharedArraySpec | None
    patch_keys: tuple[str, ...]
    patch_offsets: tuple[int, ...]
    patch_indices: SharedArraySpec | None
    patch_prior: SharedArraySpec | None

    def to_payload(self) -> dict:
        """Plain-data form safe to pickle into spawn workers.

        Carries ``kind`` so :func:`repro.sweeps.worker.
        register_table_handles` can dispatch it alongside the dense
        :class:`SharedTableHandle` payloads in one mapping.
        """
        return {
            "kind": "epoch-tables",
            "key": self.key,
            "n_nodes": self.n_nodes,
            "storer_keys": list(self.storer_keys),
            "storers": (None if self.storers is None
                        else self.storers.to_payload()),
            "patch_keys": list(self.patch_keys),
            "patch_offsets": list(self.patch_offsets),
            "patch_indices": (None if self.patch_indices is None
                              else self.patch_indices.to_payload()),
            "patch_prior": (None if self.patch_prior is None
                            else self.patch_prior.to_payload()),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SharedEpochTablesHandle":
        """Inverse of :meth:`to_payload`."""

        def spec(key: str) -> SharedArraySpec | None:
            value = payload[key]
            return (None if value is None
                    else SharedArraySpec.from_payload(value))

        return cls(
            key=str(payload["key"]),
            n_nodes=int(payload["n_nodes"]),
            storer_keys=tuple(str(k) for k in payload["storer_keys"]),
            storers=spec("storers"),
            patch_keys=tuple(str(k) for k in payload["patch_keys"]),
            patch_offsets=tuple(int(v) for v in payload["patch_offsets"]),
            patch_indices=spec("patch_indices"),
            patch_prior=spec("patch_prior"),
        )


def _create_segment(array: np.ndarray
                    ) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy *array* into a fresh shared-memory segment.

    Segments are named ``repro_<pid>_<hex>`` (see
    :data:`SEGMENT_PREFIX`) so that a later publisher can attribute —
    and reclaim — anything a killed publisher left behind.
    """
    array = np.ascontiguousarray(array)
    while True:
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=array.nbytes, name=_segment_name()
            )
            break
        except FileExistsError:  # pragma: no cover - 32-bit collision
            continue
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[:] = array
    spec = SharedArraySpec(
        name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
    )
    return segment, spec


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    The publisher owns unlinking. On Python 3.13+ ``track=False``
    keeps the attach out of :mod:`multiprocessing.resource_tracker`
    entirely. Older interpreters register every attach — but our
    attachers are always spawn children of the publisher and therefore
    *share its tracker process*, where registration is a per-name set:
    the duplicate add is a no-op, and the publisher's own ``unlink``
    clears the single entry. Manually unregistering here would instead
    delete the publisher's registration out from under it (observed as
    ``KeyError`` noise in the tracker), so the fallback deliberately
    leaves the bookkeeping alone.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _attach_array(spec: SharedArraySpec
                  ) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map one published array read-only."""
    segment = _open_segment(spec.name)
    array = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    return segment, array


def attach_table(handle: SharedTableHandle,
                 overlay: "Overlay") -> "NextHopTable":
    """Wrap a published table for *overlay* (read-only, zero-copy).

    *overlay* must be the topology the table was built from; the
    fingerprint is checked so a stale handle can never silently route
    a different network.
    """
    if overlay.fingerprint() != handle.fingerprint:
        raise ConfigurationError(
            f"shared table {handle.fingerprint[:12]}... does not match "
            f"overlay {overlay.fingerprint()[:12]}...; refusing to attach"
        )
    from ..backends.fast import NextHopTable

    segments = []
    try:
        coded_segment, coded = _attach_array(handle.coded)
        segments.append(coded_segment)
        storer_segment, storer = _attach_array(handle.storer)
        segments.append(storer_segment)
        return NextHopTable.from_arrays(
            overlay,
            coded=coded,
            storer=storer,
            segments=tuple(segments),
        )
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close best effort
                pass
        raise


def attach_epoch_tables(handle: SharedEpochTablesHandle
                        ) -> tuple[dict, tuple]:
    """Map one published epoch-table block read-only (zero-copy).

    Returns ``(artifacts, segments)``: *artifacts* maps each chained
    fingerprint to its storer-table row view or reconstructed
    :class:`~repro.kademlia.table.CodedPatch` (views into the shared
    buffers), and *segments* must be kept alive as long as any of the
    views are — the attaching cache adopts them.
    """
    from ..kademlia.table import CodedPatch

    artifacts: dict = {}
    segments: list[shared_memory.SharedMemory] = []
    try:
        if handle.storers is not None:
            segment, stacked = _attach_array(handle.storers)
            segments.append(segment)
            for index, key in enumerate(handle.storer_keys):
                artifacts[key] = stacked[index]
        if handle.patch_indices is not None:
            index_segment, indices = _attach_array(handle.patch_indices)
            segments.append(index_segment)
            prior_segment, prior = _attach_array(handle.patch_prior)
            segments.append(prior_segment)
            offsets = handle.patch_offsets
            for index, key in enumerate(handle.patch_keys):
                lo, hi = offsets[index], offsets[index + 1]
                artifacts[key] = CodedPatch(
                    indices[lo:hi], prior[lo:hi], handle.n_nodes
                )
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close best effort
                pass
        raise
    return artifacts, tuple(segments)


class SharedTableRegistry:
    """Publisher-side refcounted registry of shared table segments.

    ``acquire`` publishes a table (or bumps the refcount of an already
    published one) and returns its handle; ``release`` drops one
    reference and unlinks the segments when the last holder lets go.
    Overlapping sweeps in one process therefore share one published
    copy per topology, and nothing leaks into ``/dev/shm`` after the
    last sweep finishes.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}

    def acquire(self, table: "NextHopTable") -> SharedTableHandle:
        """Publish *table* (idempotent) and take a reference."""
        fingerprint = table.overlay.fingerprint()
        entry = self._entries.get(fingerprint)
        if entry is None:
            segments = []
            try:
                coded_segment, coded_spec = _create_segment(
                    table.coded_transposed
                )
                segments.append(coded_segment)
                storer_segment, storer_spec = _create_segment(table.storer)
                segments.append(storer_segment)
            except BaseException:
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except OSError:  # pragma: no cover
                        pass
                raise
            entry = {
                "handle": SharedTableHandle(
                    fingerprint=fingerprint,
                    coded=coded_spec,
                    storer=storer_spec,
                ),
                "segments": tuple(segments),
                "references": 0,
            }
            self._entries[fingerprint] = entry
        entry["references"] += 1
        return entry["handle"]

    def acquire_epochs(self, key: str, storer_tables: Mapping,
                       patches: Mapping, n_nodes: int
                       ) -> SharedEpochTablesHandle:
        """Publish one schedule's epoch artifacts (idempotent by *key*).

        *storer_tables* maps chained fingerprints to per-address storer
        arrays (all one shape/dtype), *patches* maps ``"coded:"`` keys
        to :class:`~repro.kademlia.table.CodedPatch` objects. Entries
        are packed into one stacked segment plus one concatenated
        indices/prior pair, refcounted under *key* exactly like dense
        tables (release with :meth:`release`).
        """
        entry = self._entries.get(key)
        if entry is None:
            segments: list[shared_memory.SharedMemory] = []
            storer_keys = tuple(storer_tables)
            patch_keys = tuple(patches)
            try:
                storer_spec = None
                if storer_keys:
                    segment, storer_spec = _create_segment(np.stack(
                        [storer_tables[k] for k in storer_keys]
                    ))
                    segments.append(segment)
                index_spec = prior_spec = None
                offsets = [0]
                if patch_keys:
                    for patch in patches.values():
                        offsets.append(offsets[-1] + len(patch))
                    segment, index_spec = _create_segment(np.concatenate(
                        [patches[k].indices for k in patch_keys]
                    ))
                    segments.append(segment)
                    segment, prior_spec = _create_segment(np.concatenate(
                        [patches[k].prior for k in patch_keys]
                    ))
                    segments.append(segment)
            except BaseException:
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except OSError:  # pragma: no cover
                        pass
                raise
            entry = {
                "handle": SharedEpochTablesHandle(
                    key=key,
                    n_nodes=int(n_nodes),
                    storer_keys=storer_keys,
                    storers=storer_spec,
                    patch_keys=patch_keys,
                    patch_offsets=tuple(offsets),
                    patch_indices=index_spec,
                    patch_prior=prior_spec,
                ),
                "segments": tuple(segments),
                "references": 0,
            }
            self._entries[key] = entry
        entry["references"] += 1
        return entry["handle"]

    def release(self, fingerprint: str) -> None:
        """Drop one reference; unlink the segments on the last one."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return
        entry["references"] -= 1
        if entry["references"] <= 0:
            del self._entries[fingerprint]
            for segment in entry["segments"]:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover - cleanup best effort
                    pass

    def references(self, fingerprint: str) -> int:
        """Current reference count for a published topology (0 if none)."""
        entry = self._entries.get(fingerprint)
        return 0 if entry is None else int(entry["references"])

    def __len__(self) -> int:
        return len(self._entries)


@contextmanager
def pinned_tables(base, points):
    """Pin every unique topology of a sweep for one host session.

    A distributed ``sweep-work`` host runs many small lease batches
    through a fresh :class:`~repro.sweeps.executors.ProcessExecutor`
    call each; per-batch publication would create and unlink the
    shared segments over and over (builds are already amortized by the
    in-process table cache, but the segment copies are not). Holding a
    session-level reference here turns every per-batch
    ``acquire``/``release`` pair into pure refcount traffic on
    segments that live for the whole host session — and, as a side
    effect, builds every topology the spec can lease *eagerly*, so a
    host pays its one build per topology up front instead of on the
    first unlucky batch.

    Yields the pinned fingerprints. Degrades to a no-op (with a
    warning) where shared memory is unavailable, exactly like the
    executor's own publication path.
    """
    from ..backends.fast import cached_overlay
    from ..sweeps.executors import table_topologies
    from .table_cache import global_table_cache

    registry = shared_table_registry()
    pinned: list[str] = []
    try:
        try:
            for config in table_topologies(base, points):
                table = global_table_cache().get(cached_overlay(config))
                pinned.append(registry.acquire(table).fingerprint)
        except (ImportError, OSError) as error:
            warnings.warn(
                f"shared-memory table pinning unavailable ({error}); "
                f"each lease batch will republish its tables",
                RuntimeWarning,
            )
        yield tuple(pinned)
    finally:
        for fingerprint in pinned:
            try:
                registry.release(fingerprint)
            except Exception as error:  # pragma: no cover - best effort
                warnings.warn(
                    f"failed to release pinned table segment "
                    f"{fingerprint!r}: {error}",
                    RuntimeWarning,
                )


_GLOBAL_REGISTRY: SharedTableRegistry | None = None


def shared_table_registry() -> SharedTableRegistry:
    """The process-wide publisher registry used by sweep executors.

    The first call in a process also sweeps ``/dev/shm`` for segments
    leaked by dead publishers (:func:`sweep_stale_segments`), so a
    previously SIGKILLed sweep never permanently pins memory.
    """
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        sweep_stale_segments()
        _GLOBAL_REGISTRY = SharedTableRegistry()
    return _GLOBAL_REGISTRY
