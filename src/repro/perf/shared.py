"""Shared-memory publication of next-hop tables.

The sweep executor's parent process builds (or reuses) each unique
topology's :class:`~repro.backends.fast.NextHopTable` once, copies its
two dense arrays — the terminal-coded ``[target, node]`` matrix and
the per-address storer vector, both already in the compact entry
dtype —
into :class:`multiprocessing.shared_memory.SharedMemory` segments, and
ships a small plain-data :class:`SharedTableHandle` to every worker.
Workers attach the segments **read-only** and wrap them in a
:class:`~repro.backends.fast.NextHopTable` via
:meth:`~repro.backends.fast.NextHopTable.from_arrays` — zero copies,
zero rebuilds, and (on Linux) one physical copy of the ~131 MB
paper-scale table shared by every worker.

Cleanup is refcounted in the publishing process: each sweep run
acquires the handles it needs from the :class:`SharedTableRegistry`
and releases them when done; a segment is closed and unlinked when its
last acquirer releases it. Workers deliberately *detach without
unlinking* (the publisher owns the segment), which requires opting
out of :mod:`multiprocessing.resource_tracker` bookkeeping — Python
3.13 has ``track=False`` for exactly this, and :func:`_open_segment`
falls back to unregistering manually on older interpreters.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.fast import NextHopTable
    from ..kademlia.overlay import Overlay

__all__ = [
    "SharedArraySpec",
    "SharedTableHandle",
    "SharedTableRegistry",
    "attach_table",
    "shared_table_registry",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-map one array from shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def to_payload(self) -> dict:
        """Plain-data form safe to pickle into spawn workers."""
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SharedArraySpec":
        """Inverse of :meth:`to_payload`."""
        return cls(
            name=str(payload["name"]),
            shape=tuple(int(v) for v in payload["shape"]),
            dtype=str(payload["dtype"]),
        )


@dataclass(frozen=True)
class SharedTableHandle:
    """A published table: fingerprint plus its two array segments."""

    fingerprint: str
    coded: SharedArraySpec
    storer: SharedArraySpec

    def to_payload(self) -> dict:
        """Plain-data form safe to pickle into spawn workers."""
        return {
            "fingerprint": self.fingerprint,
            "coded": self.coded.to_payload(),
            "storer": self.storer.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SharedTableHandle":
        """Inverse of :meth:`to_payload`."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            coded=SharedArraySpec.from_payload(payload["coded"]),
            storer=SharedArraySpec.from_payload(payload["storer"]),
        )


def _create_segment(array: np.ndarray
                    ) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy *array* into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[:] = array
    spec = SharedArraySpec(
        name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
    )
    return segment, spec


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    The publisher owns unlinking. On Python 3.13+ ``track=False``
    keeps the attach out of :mod:`multiprocessing.resource_tracker`
    entirely. Older interpreters register every attach — but our
    attachers are always spawn children of the publisher and therefore
    *share its tracker process*, where registration is a per-name set:
    the duplicate add is a no-op, and the publisher's own ``unlink``
    clears the single entry. Manually unregistering here would instead
    delete the publisher's registration out from under it (observed as
    ``KeyError`` noise in the tracker), so the fallback deliberately
    leaves the bookkeeping alone.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _attach_array(spec: SharedArraySpec
                  ) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map one published array read-only."""
    segment = _open_segment(spec.name)
    array = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    return segment, array


def attach_table(handle: SharedTableHandle,
                 overlay: "Overlay") -> "NextHopTable":
    """Wrap a published table for *overlay* (read-only, zero-copy).

    *overlay* must be the topology the table was built from; the
    fingerprint is checked so a stale handle can never silently route
    a different network.
    """
    if overlay.fingerprint() != handle.fingerprint:
        raise ConfigurationError(
            f"shared table {handle.fingerprint[:12]}... does not match "
            f"overlay {overlay.fingerprint()[:12]}...; refusing to attach"
        )
    from ..backends.fast import NextHopTable

    segments = []
    try:
        coded_segment, coded = _attach_array(handle.coded)
        segments.append(coded_segment)
        storer_segment, storer = _attach_array(handle.storer)
        segments.append(storer_segment)
        return NextHopTable.from_arrays(
            overlay,
            coded=coded,
            storer=storer,
            segments=tuple(segments),
        )
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close best effort
                pass
        raise


class SharedTableRegistry:
    """Publisher-side refcounted registry of shared table segments.

    ``acquire`` publishes a table (or bumps the refcount of an already
    published one) and returns its handle; ``release`` drops one
    reference and unlinks the segments when the last holder lets go.
    Overlapping sweeps in one process therefore share one published
    copy per topology, and nothing leaks into ``/dev/shm`` after the
    last sweep finishes.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}

    def acquire(self, table: "NextHopTable") -> SharedTableHandle:
        """Publish *table* (idempotent) and take a reference."""
        fingerprint = table.overlay.fingerprint()
        entry = self._entries.get(fingerprint)
        if entry is None:
            segments = []
            try:
                coded_segment, coded_spec = _create_segment(
                    table.coded_transposed
                )
                segments.append(coded_segment)
                storer_segment, storer_spec = _create_segment(table.storer)
                segments.append(storer_segment)
            except BaseException:
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except OSError:  # pragma: no cover
                        pass
                raise
            entry = {
                "handle": SharedTableHandle(
                    fingerprint=fingerprint,
                    coded=coded_spec,
                    storer=storer_spec,
                ),
                "segments": tuple(segments),
                "references": 0,
            }
            self._entries[fingerprint] = entry
        entry["references"] += 1
        return entry["handle"]

    def release(self, fingerprint: str) -> None:
        """Drop one reference; unlink the segments on the last one."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return
        entry["references"] -= 1
        if entry["references"] <= 0:
            del self._entries[fingerprint]
            for segment in entry["segments"]:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover - cleanup best effort
                    pass

    def references(self, fingerprint: str) -> int:
        """Current reference count for a published topology (0 if none)."""
        entry = self._entries.get(fingerprint)
        return 0 if entry is None else int(entry["references"])

    def __len__(self) -> int:
        return len(self._entries)


_GLOBAL_REGISTRY: SharedTableRegistry | None = None


def shared_table_registry() -> SharedTableRegistry:
    """The process-wide publisher registry used by sweep executors."""
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        _GLOBAL_REGISTRY = SharedTableRegistry()
    return _GLOBAL_REGISTRY
