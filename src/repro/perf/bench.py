"""The ``repro-swarm bench`` headline benchmark and its JSON format.

One benchmark record captures the three numbers this repository's
performance story is built on:

* ``table_build_seconds`` — cold :class:`NextHopTable` construction
  (what every sweep worker used to pay per topology);
* ``table_publish_seconds`` / ``table_attach_seconds`` — the shared-
  memory path that replaces those rebuilds;
* ``run_seconds`` / ``chunks_per_second`` — the batched hop-wave
  kernel's end-to-end throughput (best of ``repeats``);
* the ``dynamics`` section — the same workload under the paper's
  churn headline (:data:`DYNAMICS_SCENARIO`), routed by the static
  kernel over the sparsely epoch-patched coded matrix, with its
  slowdown ratio against the static run;
* the ``latency`` section — the same workload through the
  time-domain event wheel under :data:`LATENCY_PROFILE` (finite
  fair-share bandwidth, Poisson arrivals, slotted completions), with
  measured latency percentiles and its slowdown against the static
  run;
* the ``sweep`` section — a small fixed grid through the *whole*
  sweep engine (:data:`SWEEP_GRID`), serial vs ``jobs=2``, in
  points/s. The serial figure is regression-gated; the parallel
  speedup is recorded but not gated (shared 1-core runners routinely
  invert it);
* the ``serve`` section — the same workload re-fed through the
  streaming session in :data:`SERVE_MAX_BATCH`-file micro-epochs
  (the ``repro-swarm serve`` execution path: persistent
  :class:`StreamSession`, per-epoch scratch results absorbed into a
  :class:`StreamingAggregator`), in streamed chunks/s plus the
  process RSS before/after as the bounded-memory record. Throughput
  is regression-gated; RSS is machine commentary.

Records carry git/seed/config provenance and are written to
``BENCH_headline.json``; committing one per machine-visible change
builds the perf trajectory, and :func:`check_regression` is the CI
smoke gate — it fails when throughput (static *or* dynamics) drops by
more than the given factor against the committed baseline (loose by
design: shared CI runners are noisy; the gate exists to catch
order-of-magnitude regressions, not percent-level drift).
"""

from __future__ import annotations

import dataclasses
import platform
import time
from typing import Mapping

import numpy as np

from ..backends.config import FastSimulationConfig
from ..backends.fast import (
    FastSimulation,
    NextHopTable,
    StreamSession,
    cached_overlay,
)
from ..errors import ConfigurationError
from ..sweeps.store import git_provenance
from .shared import attach_table, shared_table_registry
from .table_cache import global_table_cache

__all__ = ["BENCH_FORMAT", "QUICK_SCALE", "PAPER_SCALE",
           "DYNAMICS_SCENARIO", "LATENCY_PROFILE", "SWEEP_GRID",
           "SWEEP_SCALE", "SERVE_MAX_BATCH", "headline_bench",
           "check_regression"]

BENCH_FORMAT = "repro-swarm-bench/1"

#: The dynamics headline: the paper's §VI churn rate, routed in the
#: patched-static mode (dead-value LUT + sparse coded patches, no
#: per-epoch matrix copy). The acceptance bar for the epoch-patching
#: work is this scenario staying within 1.2x of the static headline.
DYNAMICS_SCENARIO = "churn:rate=0.1"

#: CI-friendly scale: the benchmark harness's 300-node overlay, with
#: enough files (~1.1M chunks) that the timed region is not noise.
QUICK_SCALE = {"n_nodes": 300, "n_files": 2000}

#: The paper's §VI headline scale: ~5.5M chunk retrievals.
PAPER_SCALE = {"n_nodes": 1000, "n_files": 10_000}

#: The time-domain headline: contended fair-share bandwidth with
#: Poisson arrivals and 10 ms completion slots — dense enough that
#: the event wheel (not the analytic fast path) is what's measured.
#: The acceptance bar is the paper-scale record staying under a
#: minute on one core.
LATENCY_PROFILE = {
    "hop_latency_ms": 30.0,
    "node_up_mbps": 50.0,
    "node_down_mbps": 50.0,
    "arrival_rate": 200.0,
    "time_quantum_ms": 10.0,
}

#: The sweep-engine headline: two topologies x two seeds through
#: run_sweep — spec expansion, executor, retry bookkeeping, store
#: callbacks — measured end to end in points/s.
SWEEP_GRID = {"bucket_size": (4, 8)}
SWEEP_SEEDS = 2

#: Per-point scale for the sweep section. Smaller than the static
#: headline: the sweep runs 2 x #grid-cells x seeds full simulations
#: and must not dominate the benchmark's wall clock.
SWEEP_SCALE = {
    "quick": {"n_nodes": 150, "n_files": 200},
    "paper": {"n_nodes": 300, "n_files": 500},
}

#: Micro-epoch size for the serve section — the serve CLI default.
SERVE_MAX_BATCH = 256


def _rss_kib() -> int:
    """Current resident set size in KiB (Linux; ru_maxrss fallback)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    import resource  # pragma: no cover - non-Linux

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def headline_bench(*, quick: bool = False, repeats: int = 3) -> dict:
    """Measure build/attach/run at one scale; returns the JSON record."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    scale = QUICK_SCALE if quick else PAPER_SCALE
    config = FastSimulationConfig(**scale)
    overlay = cached_overlay(config.overlay_config())

    started = time.perf_counter()
    table = NextHopTable(overlay)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    _ = table.flat_coded
    encode_seconds = time.perf_counter() - started

    registry = shared_table_registry()
    fingerprint = overlay.fingerprint()
    started = time.perf_counter()
    handle = registry.acquire(table)
    publish_seconds = time.perf_counter() - started
    try:
        started = time.perf_counter()
        attached = attach_table(handle, overlay)
        attach_seconds = time.perf_counter() - started
        # Run the workload against the attached table — the exact
        # object sweep workers use — so the throughput number covers
        # the shared path, not a privileged local one.
        global_table_cache().install(fingerprint, attached)
        simulation = FastSimulation(config)
        run_times = []
        result = None
        for _ in range(repeats):
            run_started = time.perf_counter()
            result = simulation.run()
            run_times.append(time.perf_counter() - run_started)
        run_seconds = min(run_times)
        # The dynamics headline runs against the same attached table:
        # the first repeat pays the one-off working-copy + epoch-patch
        # derivation, the later repeats (and the best-of min) measure
        # the steady state sweeps actually run in.
        dynamics_config = dataclasses.replace(
            config, scenario=DYNAMICS_SCENARIO
        )
        dynamics_simulation = FastSimulation(dynamics_config)
        dynamics_times = []
        dynamics_result = None
        for _ in range(repeats):
            run_started = time.perf_counter()
            dynamics_result = dynamics_simulation.run()
            dynamics_times.append(time.perf_counter() - run_started)
        dynamics_seconds = min(dynamics_times)
        # The time-domain headline reuses the same attached table
        # through the wrapped FastSimulation; routing is identical,
        # the extra cost is path recording plus the fluid wheel.
        from ..backends.timed import TimedSimulation

        latency_config = dataclasses.replace(config, **LATENCY_PROFILE)
        latency_simulation = TimedSimulation(latency_config)
        latency_times = []
        latency_result = None
        for _ in range(repeats):
            run_started = time.perf_counter()
            latency_result = latency_simulation.run()
            latency_times.append(time.perf_counter() - run_started)
        latency_seconds = min(latency_times)
    finally:
        global_table_cache().discard(fingerprint)
        registry.release(fingerprint)

    assert result is not None
    assert dynamics_result is not None
    assert latency_result is not None

    # Sweep-engine throughput: the same small grid serially and with
    # a 2-process pool. Oversubscription warnings are expected (CI
    # runners are often 1-core) and suppressed — the speedup figure
    # itself records what the hardware did.
    import warnings

    from ..sweeps import SweepSpec, run_sweep, table_topologies

    label = "quick" if quick else "paper"
    sweep_spec = SweepSpec(
        base=FastSimulationConfig(**SWEEP_SCALE[label]),
        grid=SWEEP_GRID,
        backends=("fast",),
        seeds=SWEEP_SEEDS,
    )
    # Pre-build both topologies' tables so serial and jobs=2 measure
    # the same steady state (neither charged the one-off cold builds).
    for topology in table_topologies(sweep_spec.base,
                                     sweep_spec.points()):
        global_table_cache().get(cached_overlay(topology))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        sweep_serial = run_sweep(sweep_spec, jobs=1)
        sweep_jobs2 = run_sweep(sweep_spec, jobs=2)

    # Serve-path throughput: the exact loop ``repro-swarm serve``
    # runs — persistent session, micro-epoch scratch results, online
    # aggregation — minus the JSON I/O. RSS is sampled around the
    # best-of repeats as the bounded-memory record.
    from ..analysis.streaming import StreamingAggregator
    from ..workloads.streams import GeneratorStream

    addresses = simulation.overlay.address_array().astype(np.int64)
    serve_times = []
    serve_aggregator = None
    serve_rss_before = _rss_kib()
    for _ in range(repeats):
        stream = GeneratorStream(
            config.workload(), max_batch=SERVE_MAX_BATCH
        )
        aggregator = StreamingAggregator(addresses)
        run_started = time.perf_counter()
        with StreamSession(simulation) as session:
            for batch in stream.batches(
                simulation.overlay.address_array(), simulation.space
            ):
                scratch = simulation.new_result()
                file_origins, sizes, targets = (
                    simulation.flatten_events(batch)
                )
                scratch.files += len(sizes)
                session.feed(np.repeat(file_origins, sizes), targets,
                             into=scratch)
                aggregator.absorb(scratch)
        serve_times.append(time.perf_counter() - run_started)
        serve_aggregator = aggregator
    serve_seconds = min(serve_times)
    serve_rss_after = _rss_kib()
    assert serve_aggregator is not None

    static_rate = result.chunks / run_seconds
    dynamics_rate = dynamics_result.chunks / dynamics_seconds
    latency_rate = latency_result.chunks / latency_seconds
    latency_stats = latency_result.latency_stats()
    return {
        "format": BENCH_FORMAT,
        "label": "quick" if quick else "paper",
        "config": {
            "n_nodes": config.n_nodes,
            "n_files": config.n_files,
            "bits": config.bits,
            "bucket_size": config.bucket_size,
            "overlay_seed": config.overlay_seed,
            "workload_seed": config.workload_seed,
        },
        "provenance": {
            **git_provenance(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": {
            "files": int(result.files),
            "chunks": int(result.chunks),
            "total_hops": int(result.total_hops),
        },
        "metrics": {
            "table_build_seconds": round(build_seconds, 4),
            "table_encode_seconds": round(encode_seconds, 4),
            "table_publish_seconds": round(publish_seconds, 4),
            "table_attach_seconds": round(attach_seconds, 4),
            "run_seconds": round(run_seconds, 4),
            "files_per_second": round(result.files / run_seconds, 1),
            "chunks_per_second": round(static_rate, 1),
            "attach_vs_build_speedup": round(
                build_seconds / max(attach_seconds, 1e-9), 1
            ),
        },
        "dynamics": {
            "scenario": DYNAMICS_SCENARIO,
            "workload": {
                "files": int(dynamics_result.files),
                "chunks": int(dynamics_result.chunks),
                "total_hops": int(dynamics_result.total_hops),
            },
            "metrics": {
                "run_seconds": round(dynamics_seconds, 4),
                "chunks_per_second": round(dynamics_rate, 1),
                "slowdown_vs_static": round(
                    static_rate / max(dynamics_rate, 1e-9), 3
                ),
            },
        },
        "latency": {
            "profile": dict(LATENCY_PROFILE),
            "workload": {
                "files": int(latency_result.files),
                "chunks": int(latency_result.chunks),
                "total_hops": int(latency_result.total_hops),
            },
            "metrics": {
                "run_seconds": round(latency_seconds, 4),
                "chunks_per_second": round(latency_rate, 1),
                "slowdown_vs_static": round(
                    static_rate / max(latency_rate, 1e-9), 3
                ),
                "latency_p50_ms": round(latency_stats.p50_ms, 2),
                "latency_p95_ms": round(latency_stats.p95_ms, 2),
                "latency_p99_ms": round(latency_stats.p99_ms, 2),
            },
        },
        "sweep": {
            "spec": {
                **SWEEP_SCALE[label],
                "grid": {name: list(values)
                         for name, values in SWEEP_GRID.items()},
                "backends": ["fast"],
                "seeds": SWEEP_SEEDS,
                "points": len(sweep_spec),
            },
            "metrics": {
                "serial_seconds": round(sweep_serial.elapsed, 4),
                "serial_points_per_second": round(
                    sweep_serial.points_per_second, 3
                ),
                "jobs2_seconds": round(sweep_jobs2.elapsed, 4),
                "jobs2_points_per_second": round(
                    sweep_jobs2.points_per_second, 3
                ),
                "parallel_speedup": round(
                    sweep_jobs2.points_per_second
                    / max(sweep_serial.points_per_second, 1e-9), 3
                ),
            },
        },
        "serve": {
            "max_batch": SERVE_MAX_BATCH,
            "workload": {
                "files": int(serve_aggregator.files),
                "chunks": int(serve_aggregator.chunks),
                "total_hops": int(serve_aggregator.total_hops),
            },
            "metrics": {
                "run_seconds": round(serve_seconds, 4),
                "chunks_per_second": round(
                    serve_aggregator.chunks / serve_seconds, 1
                ),
                "slowdown_vs_static": round(
                    static_rate
                    / max(serve_aggregator.chunks / serve_seconds,
                          1e-9), 3
                ),
                "rss_kib": serve_rss_after,
                "rss_growth_kib": serve_rss_after - serve_rss_before,
            },
        },
    }


def check_regression(current: Mapping, baseline: Mapping,
                     max_regression: float = 2.0) -> list[str]:
    """Compare a fresh record against a committed baseline.

    Returns a list of human-readable problems (empty = pass). Records
    must describe the same benchmark (format, label, simulated
    workload); throughput may not drop by more than *max_regression*.
    Absolute times are not compared — they are machine properties —
    only the ratio gate on throughput, which a >2x kernel regression
    trips even on a slower shared runner.
    """
    if max_regression < 1.0:
        raise ConfigurationError(
            f"max_regression must be >= 1.0, got {max_regression}"
        )
    problems: list[str] = []
    for record, who in ((current, "current"), (baseline, "baseline")):
        if record.get("format") != BENCH_FORMAT:
            problems.append(
                f"{who} record is not a {BENCH_FORMAT} benchmark record"
            )
    if problems:
        return problems
    if current.get("label") != baseline.get("label"):
        problems.append(
            f"benchmark scales differ: current={current.get('label')!r} "
            f"vs baseline={baseline.get('label')!r}"
        )
    if current.get("workload") != baseline.get("workload"):
        problems.append(
            "simulated workloads differ; the throughput comparison "
            "would be meaningless (did the config or seeds change?)"
        )
    if problems:
        return problems
    current_rate = float(current["metrics"]["chunks_per_second"])
    baseline_rate = float(baseline["metrics"]["chunks_per_second"])
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"throughput regression: {current_rate:,.0f} chunks/s is more "
            f"than {max_regression:.1f}x below the baseline "
            f"{baseline_rate:,.0f} chunks/s"
        )
    current_dynamics = current.get("dynamics")
    baseline_dynamics = baseline.get("dynamics")
    if current_dynamics is None or baseline_dynamics is None:
        # Pre-dynamics baselines gate only the static kernel; the
        # dynamics gate arms itself once a baseline carrying the
        # section is committed.
        return problems
    if (current_dynamics.get("scenario") != baseline_dynamics.get("scenario")
            or current_dynamics.get("workload")
            != baseline_dynamics.get("workload")):
        problems.append(
            "dynamics scenarios/workloads differ; the dynamics "
            "throughput comparison would be meaningless"
        )
        return problems
    current_rate = float(current_dynamics["metrics"]["chunks_per_second"])
    baseline_rate = float(baseline_dynamics["metrics"]["chunks_per_second"])
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"dynamics throughput regression "
            f"({current_dynamics['scenario']}): {current_rate:,.0f} "
            f"chunks/s is more than {max_regression:.1f}x below the "
            f"baseline {baseline_rate:,.0f} chunks/s"
        )
    current_latency = current.get("latency")
    baseline_latency = baseline.get("latency")
    if current_latency is None or baseline_latency is None:
        # Pre-latency baselines gate static + dynamics only; the
        # latency gate arms itself once a baseline carrying the
        # section is committed.
        return problems
    if (current_latency.get("profile") != baseline_latency.get("profile")
            or current_latency.get("workload")
            != baseline_latency.get("workload")):
        problems.append(
            "latency profiles/workloads differ; the time-domain "
            "throughput comparison would be meaningless"
        )
        return problems
    current_rate = float(current_latency["metrics"]["chunks_per_second"])
    baseline_rate = float(baseline_latency["metrics"]["chunks_per_second"])
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"time-domain throughput regression: {current_rate:,.0f} "
            f"chunks/s is more than {max_regression:.1f}x below the "
            f"baseline {baseline_rate:,.0f} chunks/s"
        )
    current_sweep = current.get("sweep")
    baseline_sweep = baseline.get("sweep")
    if current_sweep is None or baseline_sweep is None:
        # Pre-sweep-section baselines gate the kernels only; this gate
        # arms itself once a baseline carrying the section is
        # committed.
        return problems
    if current_sweep.get("spec") != baseline_sweep.get("spec"):
        problems.append(
            "sweep-section specs differ; the sweep throughput "
            "comparison would be meaningless"
        )
        return problems
    # Only the serial figure is gated: it measures the engine's
    # per-point overhead. The parallel speedup is hardware commentary
    # (1-core CI runners legitimately invert it).
    current_rate = float(
        current_sweep["metrics"]["serial_points_per_second"]
    )
    baseline_rate = float(
        baseline_sweep["metrics"]["serial_points_per_second"]
    )
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"sweep-engine regression: {current_rate:,.2f} points/s "
            f"(serial) is more than {max_regression:.1f}x below the "
            f"baseline {baseline_rate:,.2f} points/s"
        )
    current_serve = current.get("serve")
    baseline_serve = baseline.get("serve")
    if current_serve is None or baseline_serve is None:
        # Pre-serve-section baselines gate everything above only; the
        # streaming gate arms itself once a baseline carrying the
        # section is committed.
        return problems
    if (current_serve.get("max_batch") != baseline_serve.get("max_batch")
            or current_serve.get("workload")
            != baseline_serve.get("workload")):
        problems.append(
            "serve-section batching/workloads differ; the streaming "
            "throughput comparison would be meaningless"
        )
        return problems
    # Only streamed throughput is gated; the RSS figures are machine
    # properties recorded for the bounded-memory story.
    current_rate = float(current_serve["metrics"]["chunks_per_second"])
    baseline_rate = float(baseline_serve["metrics"]["chunks_per_second"])
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"serve streaming regression: {current_rate:,.0f} chunks/s "
            f"is more than {max_regression:.1f}x below the baseline "
            f"{baseline_rate:,.0f} chunks/s"
        )
    return problems
