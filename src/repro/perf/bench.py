"""The ``repro-swarm bench`` headline benchmark and its JSON format.

One benchmark record captures the three numbers this repository's
performance story is built on:

* ``table_build_seconds`` — cold :class:`NextHopTable` construction
  (what every sweep worker used to pay per topology);
* ``table_publish_seconds`` / ``table_attach_seconds`` — the shared-
  memory path that replaces those rebuilds;
* ``run_seconds`` / ``chunks_per_second`` — the batched hop-wave
  kernel's end-to-end throughput (best of ``repeats``).

Records carry git/seed/config provenance and are written to
``BENCH_headline.json``; committing one per machine-visible change
builds the perf trajectory, and :func:`check_regression` is the CI
smoke gate — it fails when throughput drops by more than the given
factor against the committed baseline (loose by design: shared CI
runners are noisy; the gate exists to catch order-of-magnitude
regressions, not percent-level drift).
"""

from __future__ import annotations

import platform
import time
from typing import Mapping

import numpy as np

from ..backends.config import FastSimulationConfig
from ..backends.fast import FastSimulation, NextHopTable, cached_overlay
from ..errors import ConfigurationError
from ..sweeps.store import git_provenance
from .shared import attach_table, shared_table_registry
from .table_cache import global_table_cache

__all__ = ["BENCH_FORMAT", "QUICK_SCALE", "PAPER_SCALE",
           "headline_bench", "check_regression"]

BENCH_FORMAT = "repro-swarm-bench/1"

#: CI-friendly scale: the benchmark harness's 300-node overlay, with
#: enough files (~1.1M chunks) that the timed region is not noise.
QUICK_SCALE = {"n_nodes": 300, "n_files": 2000}

#: The paper's §VI headline scale: ~5.5M chunk retrievals.
PAPER_SCALE = {"n_nodes": 1000, "n_files": 10_000}


def headline_bench(*, quick: bool = False, repeats: int = 3) -> dict:
    """Measure build/attach/run at one scale; returns the JSON record."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    scale = QUICK_SCALE if quick else PAPER_SCALE
    config = FastSimulationConfig(**scale)
    overlay = cached_overlay(config.overlay_config())

    started = time.perf_counter()
    table = NextHopTable(overlay)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    _ = table.flat_coded
    encode_seconds = time.perf_counter() - started

    registry = shared_table_registry()
    fingerprint = overlay.fingerprint()
    started = time.perf_counter()
    handle = registry.acquire(table)
    publish_seconds = time.perf_counter() - started
    try:
        started = time.perf_counter()
        attached = attach_table(handle, overlay)
        attach_seconds = time.perf_counter() - started
        # Run the workload against the attached table — the exact
        # object sweep workers use — so the throughput number covers
        # the shared path, not a privileged local one.
        global_table_cache().install(fingerprint, attached)
        simulation = FastSimulation(config)
        run_times = []
        result = None
        for _ in range(repeats):
            run_started = time.perf_counter()
            result = simulation.run()
            run_times.append(time.perf_counter() - run_started)
        run_seconds = min(run_times)
    finally:
        global_table_cache().discard(fingerprint)
        registry.release(fingerprint)

    assert result is not None
    return {
        "format": BENCH_FORMAT,
        "label": "quick" if quick else "paper",
        "config": {
            "n_nodes": config.n_nodes,
            "n_files": config.n_files,
            "bits": config.bits,
            "bucket_size": config.bucket_size,
            "overlay_seed": config.overlay_seed,
            "workload_seed": config.workload_seed,
        },
        "provenance": {
            **git_provenance(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": {
            "files": int(result.files),
            "chunks": int(result.chunks),
            "total_hops": int(result.total_hops),
        },
        "metrics": {
            "table_build_seconds": round(build_seconds, 4),
            "table_encode_seconds": round(encode_seconds, 4),
            "table_publish_seconds": round(publish_seconds, 4),
            "table_attach_seconds": round(attach_seconds, 4),
            "run_seconds": round(run_seconds, 4),
            "files_per_second": round(result.files / run_seconds, 1),
            "chunks_per_second": round(result.chunks / run_seconds, 1),
            "attach_vs_build_speedup": round(
                build_seconds / max(attach_seconds, 1e-9), 1
            ),
        },
    }


def check_regression(current: Mapping, baseline: Mapping,
                     max_regression: float = 2.0) -> list[str]:
    """Compare a fresh record against a committed baseline.

    Returns a list of human-readable problems (empty = pass). Records
    must describe the same benchmark (format, label, simulated
    workload); throughput may not drop by more than *max_regression*.
    Absolute times are not compared — they are machine properties —
    only the ratio gate on throughput, which a >2x kernel regression
    trips even on a slower shared runner.
    """
    if max_regression < 1.0:
        raise ConfigurationError(
            f"max_regression must be >= 1.0, got {max_regression}"
        )
    problems: list[str] = []
    for record, who in ((current, "current"), (baseline, "baseline")):
        if record.get("format") != BENCH_FORMAT:
            problems.append(
                f"{who} record is not a {BENCH_FORMAT} benchmark record"
            )
    if problems:
        return problems
    if current.get("label") != baseline.get("label"):
        problems.append(
            f"benchmark scales differ: current={current.get('label')!r} "
            f"vs baseline={baseline.get('label')!r}"
        )
    if current.get("workload") != baseline.get("workload"):
        problems.append(
            "simulated workloads differ; the throughput comparison "
            "would be meaningless (did the config or seeds change?)"
        )
    if problems:
        return problems
    current_rate = float(current["metrics"]["chunks_per_second"])
    baseline_rate = float(baseline["metrics"]["chunks_per_second"])
    if current_rate * max_regression < baseline_rate:
        problems.append(
            f"throughput regression: {current_rate:,.0f} chunks/s is more "
            f"than {max_regression:.1f}x below the baseline "
            f"{baseline_rate:,.0f} chunks/s"
        )
    return problems
