"""Import measured join/leave logs as dynamics traces.

Swarm/IPFS-style membership logs record when peers arrive and depart
as timestamped events; the engine consumes dynamics as a per-epoch
:class:`~repro.scenarios.base.Schedule`. This module buckets a
measured log onto an epoch grid and maps its peer identifiers onto
the overlay population (integers that are overlay addresses map
directly; anything else lands on a deterministic SHA-256-hashed
node, the same convention as the request-log importer), producing a
versioned :class:`~repro.scenarios.trace.DynamicsTrace` that replays
through the unchanged ``trace:path=...`` scenario machinery.
``repro-swarm trace import-dynamics`` is the CLI wrapper.

Accepted input: NDJSON, one membership event per line — an object
with a timestamp (``ts`` or ``time``, seconds), an event kind
(``event`` or ``action``: ``join``/``leave``, with ``arrive``/
``connect`` and ``depart``/``disconnect`` as aliases), and a peer
identifier (``node`` or ``peer``). Example::

    {"ts": 1696000000.0, "event": "leave", "node": "12D3KooWA..."}
    {"ts": 1696000007.5, "event": "join", "node": 40163}

Each log event becomes its own :class:`TopologyDelta` within its
epoch, so the log's leave/join interleaving is preserved exactly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import IO, Iterable

from ..errors import ConfigurationError
from ..workloads.ingest import stable_hash
from .events import TopologyDelta
from .trace import DynamicsTrace

__all__ = ["DynamicsImportSummary", "import_dynamics"]

_JOIN_WORDS = frozenset({"join", "arrive", "connect", "up"})
_LEAVE_WORDS = frozenset({"leave", "depart", "disconnect", "down"})


@dataclass(frozen=True)
class DynamicsImportSummary:
    """What an import did, for CLI output and tests."""

    events: int
    joins: int
    leaves: int
    n_epochs: int
    span_seconds: float
    direct_nodes: int
    hashed_nodes: int

    def __str__(self) -> str:
        return (
            f"{self.events} membership events ({self.joins} joins, "
            f"{self.leaves} leaves) over {self.span_seconds:.1f}s -> "
            f"{self.n_epochs} epoch(s); peer ids: {self.direct_nodes} "
            f"direct, {self.hashed_nodes} hashed"
        )


def import_dynamics(lines: Iterable[str] | IO[str], *, overlay,
                    n_epochs: int | None = None,
                    epoch_seconds: float | None = None,
                    recompute_storers: bool = False,
                    source: str = "import",
                    ) -> tuple[DynamicsTrace, DynamicsImportSummary]:
    """Bucket a membership log onto an epoch grid.

    Exactly one of *n_epochs* (split the log's time span into that
    many equal epochs) or *epoch_seconds* (fixed-width epochs) must
    be given. Returns the trace plus an import summary.
    """
    if (n_epochs is None) == (epoch_seconds is None):
        raise ConfigurationError(
            "give exactly one of n_epochs or epoch_seconds to define "
            "the epoch grid"
        )
    if n_epochs is not None and n_epochs < 1:
        raise ConfigurationError(
            f"n_epochs must be >= 1, got {n_epochs}"
        )
    if epoch_seconds is not None and epoch_seconds <= 0:
        raise ConfigurationError(
            f"epoch_seconds must be > 0, got {epoch_seconds}"
        )

    addresses = overlay.address_array()
    population = {int(a): i for i, a in enumerate(addresses)}
    n_nodes = len(addresses)
    direct = hashed = 0

    def map_node(value) -> int:
        nonlocal direct, hashed
        if (isinstance(value, int) and not isinstance(value, bool)
                and value in population):
            direct += 1
            return population[value]
        hashed += 1
        return stable_hash(str(value)) % n_nodes

    records: list[tuple[float, bool, int]] = []  # (ts, is_join, index)
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            item = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"bad membership log line {lineno}: not valid JSON "
                f"({error})"
            ) from None
        if not isinstance(item, dict):
            raise ConfigurationError(
                f"bad membership log line {lineno}: expected a JSON "
                f"object, got {type(item).__name__}"
            )
        ts = item.get("ts", item.get("time"))
        kind = item.get("event", item.get("action"))
        node = item.get("node", item.get("peer"))
        if ts is None or kind is None or node is None:
            raise ConfigurationError(
                f"bad membership log line {lineno}: need 'ts', "
                f"'event' and 'node' fields"
            )
        try:
            ts = float(ts)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"bad membership log line {lineno}: timestamp "
                f"{ts!r} is not a number"
            ) from None
        kind = str(kind).lower()
        if kind in _JOIN_WORDS:
            is_join = True
        elif kind in _LEAVE_WORDS:
            is_join = False
        else:
            raise ConfigurationError(
                f"bad membership log line {lineno}: unknown event "
                f"kind {kind!r} (expected join/leave)"
            )
        records.append((ts, is_join, map_node(node)))

    if not records:
        raise ConfigurationError(
            "membership log contained no events; nothing to import"
        )

    t0 = min(r[0] for r in records)
    t1 = max(r[0] for r in records)
    span = t1 - t0
    if epoch_seconds is not None:
        n_epochs = max(1, math.ceil(span / epoch_seconds) or 1)
        width = epoch_seconds
    else:
        assert n_epochs is not None
        width = span / n_epochs if span > 0 else 1.0

    epochs: list[list[TopologyDelta]] = [[] for _ in range(n_epochs)]
    joins = leaves = 0
    for ts, is_join, index in records:
        epoch = min(int((ts - t0) / width), n_epochs - 1)
        if is_join:
            joins += 1
            epochs[epoch].append(TopologyDelta(joins=(index,)))
        else:
            leaves += 1
            epochs[epoch].append(TopologyDelta(leaves=(index,)))

    trace = DynamicsTrace(
        bits=overlay.space.bits,
        n_nodes=n_nodes,
        overlay_seed=overlay.config.seed,
        source=source,
        recompute_storers=recompute_storers,
        n_epochs=n_epochs,
        streams=(tuple(tuple(epoch) for epoch in epochs),),
    )
    summary = DynamicsImportSummary(
        events=len(records), joins=joins, leaves=leaves,
        n_epochs=n_epochs, span_seconds=span,
        direct_nodes=direct, hashed_nodes=hashed,
    )
    return trace, summary
