"""The :class:`Scenario` protocol and epoch-schedule plumbing.

A scenario is a *pure description* of network dynamics: given a
:class:`ScenarioContext` (how many nodes, how many epochs, how large
the address space), it deterministically produces an **epoch
schedule** — one tuple of :mod:`~repro.scenarios.events` per epoch.
Scenarios never see the simulation state; the
:class:`~repro.scenarios.plan.EpochPlan` interprets the schedule into
per-epoch alive masks, cache policy, and policy overrides for the
unified hop kernel, and the same schedule drives the incremental
table maintenance in :mod:`repro.perf.table_cache`.

Determinism contract: ``schedule(ctx)`` depends only on the scenario's
own frozen parameters and *ctx* — never on wall clock, process, or
call order — so composed sweeps replayed across worker processes see
identical dynamics (the property suite pins this).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

from ..errors import ConfigurationError
from .events import Event

__all__ = ["ScenarioContext", "Scenario", "Schedule"]

#: One tuple of events per epoch, indexed by epoch number.
Schedule = tuple[tuple[Event, ...], ...]


@dataclass(frozen=True)
class ScenarioContext:
    """Everything a scenario may condition its schedule on.

    ``n_epochs`` is derived from the *actual* workload (number of
    files over ``batch_files``), so custom workloads and trace replays
    get correctly sized schedules. ``overlay_seed`` identifies the
    overlay the run routes on — synthetic scenarios ignore it, but a
    recorded dynamics trace uses it to refuse replay against a
    different overlay than it was captured for (``None`` means the
    caller did not say, which skips that check).
    """

    n_nodes: int
    n_epochs: int
    space_size: int
    overlay_seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(
                f"n_nodes must be >= 1, got {self.n_nodes}"
            )
        if self.n_epochs < 0:
            raise ConfigurationError(
                f"n_epochs must be >= 0, got {self.n_epochs}"
            )
        if self.space_size < 1:
            raise ConfigurationError(
                f"space_size must be >= 1, got {self.space_size}"
            )


class Scenario:
    """One composable source of per-epoch dynamics.

    Concrete scenarios are frozen dataclasses (hashable, reprable,
    and parseable from the CLI grammar in
    :mod:`repro.scenarios.parse`). Subclasses set ``kind`` — the
    grammar name — and implement :meth:`schedule`.

    ``recompute_storers`` declares that content is re-homed to the
    closest *live* node whenever the alive set changes (Swarm's
    neighborhood re-replication); the plan resolves the per-epoch
    storer tables through the delta-patching epoch cache. When it is
    ``False``, chunks whose static storer is offline simply count as
    unavailable.
    """

    kind: ClassVar[str] = ""
    recompute_storers: ClassVar[bool] = False

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        """The per-epoch event schedule, ``len == ctx.n_epochs``."""
        raise NotImplementedError

    def spec(self) -> str:
        """Canonical ``kind:key=value,...`` form (inverse of parsing).

        Fields equal to their defaults are omitted, so specs stay
        short and two equal scenarios always render identically.
        """
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            default = field.default
            if default is not dataclasses.MISSING and value == default:
                continue
            parts.append(f"{field.name}={value}")
        if not parts:
            return self.kind
        return f"{self.kind}:{','.join(parts)}"

    def flattened(self) -> tuple["Scenario", ...]:
        """The scenario as a flat composition (overridden by Compose)."""
        return (self,)

    def stream_schedules(self, ctx: ScenarioContext
                         ) -> tuple[Schedule, ...]:
        """The scenario's schedule split into independent event streams.

        The :class:`~repro.scenarios.plan.EpochPlan` folds each
        stream's :class:`~repro.scenarios.events.TopologyDelta` events
        into a **private** alive mask and ANDs the masks per epoch —
        the composition rule that keeps one dynamic's joins from
        resurrecting another's offline cohort. A plain scenario is one
        stream; :class:`~repro.scenarios.compose.Compose` concatenates
        its children's streams, and a replayed dynamics trace
        (:class:`~repro.scenarios.library.TraceReplay`) re-emits the
        per-stream structure it recorded, so replay preserves the
        source composition's topology semantics exactly.
        """
        return (self.schedule(ctx),)

    def _check_schedule(self, ctx: ScenarioContext,
                        schedule: Schedule) -> Schedule:
        if len(schedule) != ctx.n_epochs:
            raise ConfigurationError(
                f"scenario {self.kind!r} produced {len(schedule)} epochs "
                f"for a {ctx.n_epochs}-epoch context"
            )
        return schedule
