"""Epoch events: the vocabulary scenarios speak to the engine in.

A scenario never touches the simulation engine directly; it emits a
per-epoch schedule of three event kinds, which the
:class:`~repro.scenarios.plan.EpochPlan` folds into the running
dynamic state the unified hop kernel consumes:

* :class:`TopologyDelta` — node departures and (re)joins, expressed as
  dense node indices. Deltas are incremental by design: the plan
  maintains one alive mask across epochs, and the same delta feeds the
  chained table fingerprint that lets per-epoch storer tables hit the
  :class:`~repro.perf.table_cache.EpochTableCache` instead of being
  rebuilt.
* :class:`CacheState` — switch the path-cache model on (optionally
  with a FIFO capacity bound) or off. The cache mask itself persists
  across epochs; the event only changes the policy.
* :class:`PolicyOverride` — incentive/demand policy: a set of
  originators whose downloads are never paid for (free-riding), or an
  origin focus set that concentrates this epoch's demand on a hot
  subset of nodes (demand shift).

Events are frozen dataclasses with tuple payloads, so schedules are
hashable, comparable, and deterministic — properties the composition
tests pin. :func:`event_to_json` / :func:`event_from_json` give every
event an exact plain-data form (the dynamics-trace file format of
:mod:`repro.scenarios.trace` is built on it): payloads are tagged by
``kind`` and round-trip bit-exactly — the replayed schedule compares
equal to the recorded one, which is what makes trace replay
bit-identical to running the source scenario directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError

__all__ = [
    "TopologyDelta",
    "CacheState",
    "PolicyOverride",
    "Event",
    "event_to_json",
    "event_from_json",
]


def _index_tuple(values, name: str) -> tuple[int, ...]:
    """Normalize an index sequence to a tuple of plain non-negative ints."""
    out = tuple(int(v) for v in values)
    if any(v < 0 for v in out):
        raise ConfigurationError(f"{name} indices must be >= 0, got {out}")
    return out


@dataclass(frozen=True)
class TopologyDelta:
    """Nodes leaving and joining the overlay at an epoch boundary.

    Indices are dense overlay indices. A node may appear in ``joins``
    without ever having left (initial warm-up populations start fully
    alive); leaving an already-dead node is a no-op. The plan applies
    leaves before joins, event by event, in schedule order.
    """

    leaves: tuple[int, ...] = ()
    joins: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "leaves", _index_tuple(self.leaves, "leaves")
        )
        object.__setattr__(self, "joins", _index_tuple(self.joins, "joins"))

    def __bool__(self) -> bool:
        return bool(self.leaves or self.joins)


@dataclass(frozen=True)
class CacheState:
    """Path-cache policy from this epoch on.

    ``capacity`` bounds the number of distinct cached chunk addresses
    (FIFO eviction in insertion order); ``0`` means unbounded — the
    paper-extension model where every delivered chunk stays cached on
    its path.
    """

    enabled: bool = True
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {self.capacity}"
            )


@dataclass(frozen=True)
class PolicyOverride:
    """Incentive/demand policy from this epoch on.

    ``unpaid_origins`` replaces the set of free-riding originators
    (dense indices; ``None`` leaves the current set unchanged, an
    empty tuple clears it). ``origin_focus`` concentrates demand: each
    download origin ``o`` is remapped to ``focus[o % len(focus)]``
    for the epochs the focus is in force (``None`` unchanged, empty
    tuple restores the workload's own origins).
    """

    unpaid_origins: tuple[int, ...] | None = None
    origin_focus: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.unpaid_origins is not None:
            object.__setattr__(
                self, "unpaid_origins",
                _index_tuple(self.unpaid_origins, "unpaid_origins"),
            )
        if self.origin_focus is not None:
            object.__setattr__(
                self, "origin_focus",
                _index_tuple(self.origin_focus, "origin_focus"),
            )


Event = TopologyDelta | CacheState | PolicyOverride


def event_to_json(event: Event) -> dict:
    """The tagged plain-data form of one event (JSON-serializable)."""
    if isinstance(event, TopologyDelta):
        return {
            "kind": "topology",
            "leaves": list(event.leaves),
            "joins": list(event.joins),
        }
    if isinstance(event, CacheState):
        return {
            "kind": "cache",
            "enabled": event.enabled,
            "capacity": event.capacity,
        }
    if isinstance(event, PolicyOverride):
        return {
            "kind": "policy",
            "unpaid_origins": (
                None if event.unpaid_origins is None
                else list(event.unpaid_origins)
            ),
            "origin_focus": (
                None if event.origin_focus is None
                else list(event.origin_focus)
            ),
        }
    raise ConfigurationError(f"unknown scenario event {event!r}")


def event_from_json(payload: Mapping) -> Event:
    """Inverse of :func:`event_to_json`; exact tuple round-trip.

    Unknown or missing ``kind`` tags fail loudly — a trace written by
    a newer format must not silently replay a subset of its dynamics.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"a trace event must be an object, got "
            f"{type(payload).__name__}"
        )
    kind = payload.get("kind")
    try:
        if kind == "topology":
            return TopologyDelta(
                leaves=tuple(payload["leaves"]),
                joins=tuple(payload["joins"]),
            )
        if kind == "cache":
            return CacheState(
                enabled=bool(payload["enabled"]),
                capacity=int(payload["capacity"]),
            )
        if kind == "policy":
            unpaid = payload["unpaid_origins"]
            focus = payload["origin_focus"]
            return PolicyOverride(
                unpaid_origins=None if unpaid is None else tuple(unpaid),
                origin_focus=None if focus is None else tuple(focus),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"malformed {kind!r} trace event {payload!r}: {error}"
        ) from None
    raise ConfigurationError(
        f"unknown trace event kind {kind!r}; this file needs a newer "
        f"reader (known kinds: topology, cache, policy)"
    )
