"""Epoch plans: folding scenario schedules into engine-ready state.

:class:`EpochPlan` is the interpreter between the declarative world
(:class:`~repro.scenarios.base.Scenario` schedules of
:mod:`~repro.scenarios.events`) and the vectorized engine: consumed
strictly in epoch order, it maintains the running alive mask, the
path-cache runtime, the free-rider mask, and the demand focus, and
hands the unified hop kernel one :class:`EpochState` per epoch.

Storer tables under topology change are resolved through the
process-global :class:`~repro.perf.table_cache.EpochTableCache`:
every epoch whose alive set changed chains a fingerprint
(``parent_fp + delta``) and, on a miss, *patches* the parent epoch's
table with :func:`~repro.kademlia.table.patch_storer_table` instead
of rebuilding from scratch — so sweep replicas that share a scenario
schedule compute each epoch's table once per process, and even cold
epochs pay only for the addresses the delta actually touched.

When handed a writable coded routing matrix, the plan additionally
keeps that matrix patched to the current epoch's storer set with the
sparse absolute :class:`~repro.kademlia.table.CodedPatch` diffs of
:func:`~repro.kademlia.table.coded_arrive_patch` — applied in place on
epoch entry, reverted on the next transition and on
:meth:`EpochPlan.restore_coded` — which is what lets the engine route
dynamic epochs with the *static* banded kernel instead of the decoded
three-column mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..kademlia.table import (
    alive_storer_table,
    chain_fingerprint,
    coded_arrive_patch,
    dead_value_lut,
    patch_storer_table,
)
from .base import Scenario, ScenarioContext
from .events import CacheState, PolicyOverride, TopologyDelta

__all__ = [
    "CacheRuntime",
    "EpochState",
    "EpochPlan",
    "precompute_epoch_tables",
]


class CacheRuntime:
    """Mutable path-cache state shared across epochs.

    ``mask`` flags cached chunk addresses; a non-zero ``capacity``
    bounds the number of distinct cached addresses with FIFO eviction
    in first-insertion order. ``capacity == 0`` reproduces the legacy
    unbounded mask bit-for-bit (insertion is a plain mask write).
    """

    def __init__(self, space_size: int, capacity: int = 0) -> None:
        self.mask = np.zeros(space_size, dtype=bool)
        self.capacity = int(capacity)
        self.enabled = True
        self._ring = np.empty(0, dtype=np.int64)

    @property
    def cached_count(self) -> int:
        """Number of distinct addresses currently cached."""
        return int(np.count_nonzero(self.mask))

    def set_capacity(self, capacity: int) -> None:
        """Change the FIFO bound, reconciling already-cached addresses.

        Raising or introducing a bound after addresses were cached
        under an unbounded policy adopts address order as their
        insertion order (the only deterministic choice — the original
        order was never tracked); lowering the bound evicts the
        overflow immediately, oldest first.
        """
        capacity = int(capacity)
        if capacity == self.capacity:
            return
        if capacity == 0:
            self.capacity = 0
            self._ring = np.empty(0, dtype=np.int64)
            return
        cached = np.flatnonzero(self.mask)
        if self._ring.size != cached.size:
            self._ring = cached.astype(np.int64)
        self.capacity = capacity
        overflow = self._ring.size - capacity
        if overflow > 0:
            evicted, self._ring = (
                self._ring[:overflow], self._ring[overflow:].copy()
            )
            self.mask[evicted] = False

    def insert(self, targets: np.ndarray) -> None:
        """Cache every address in *targets* (deduped, FIFO-evicting)."""
        if targets.size == 0:
            return
        if self.capacity == 0:
            self.mask[targets] = True
            return
        unique, first_seen = np.unique(targets, return_index=True)
        fresh = ~self.mask[unique]
        # Ring order is first-occurrence order within the batch, not
        # np.unique's sorted order — FIFO means insertion time.
        arrivals = unique[fresh][np.argsort(first_seen[fresh],
                                            kind="stable")]
        if arrivals.size == 0:
            return
        self.mask[arrivals] = True
        self._ring = np.concatenate(
            (self._ring, arrivals.astype(np.int64))
        )
        overflow = self._ring.size - self.capacity
        if overflow > 0:
            evicted, self._ring = (
                self._ring[:overflow], self._ring[overflow:].copy()
            )
            self.mask[evicted] = False


@dataclass
class EpochState:
    """Everything dynamic the engine needs to route one epoch's slab.

    ``alive`` is ``None`` until the first topology event materializes
    a mask (the static fast path). ``storers`` is the full per-address
    storer table for the current alive set when re-homing is active,
    else ``None`` (use the static table). ``cache`` is the live
    :class:`CacheRuntime` when caching is enabled this epoch.
    ``unpaid`` and ``origin_map`` carry the policy overrides.
    ``dead_lut`` is the epoch's 3n-entry dead-value lookup
    (:func:`~repro.kademlia.table.dead_value_lut`) when any node is
    offline, else ``None`` — the patched-static kernel gathers it per
    hop to spot coded values that point at dead nodes.
    ``timestamp`` is when this epoch begins on the simulation clock
    (seconds): the timeless engines leave it at 0.0, the time-domain
    backend sets it to the arrival time of the epoch's first file, so
    scenario events (churn draws, cache flips) land at a wall-clock
    instant instead of an abstract slab index.
    """

    index: int
    alive: np.ndarray | None
    storers: np.ndarray | None
    cache: CacheRuntime | None
    unpaid: np.ndarray | None
    origin_map: np.ndarray | None
    dead_lut: np.ndarray | None = None
    timestamp: float = 0.0


class EpochPlan:
    """Sequential interpreter of one (possibly composed) scenario.

    Topology composition semantics: every composed child owns a
    **private alive stream** — its :class:`TopologyDelta` events fold
    into its own mask, because each scenario computes deltas against
    its own history (churn against its previous random draw, a join
    storm against its cohort). The engine's alive mask for an epoch is
    the AND of the child masks: a node is alive iff *every* dynamic
    keeps it alive. Folding all deltas into one shared mask instead
    would let one scenario's joins resurrect another's offline cohort.
    With a single topology-emitting child the AND is the identity, so
    single-scenario runs (and the legacy churn fields) are unaffected.

    Parameters
    ----------
    scenario, ctx:
        The composed scenario and the context its schedule was sized
        for.
    table_fingerprint:
        The base overlay/table fingerprint the epoch-table chain
        starts from.
    base_storers:
        The static per-address storer table (compact entry dtype).
    addresses:
        Dense-index node addresses (``uint64``).
    epoch_tables:
        The cache epoch storer tables resolve through; defaults to
        the process-global one.
    coded:
        A *writable* terminal-coded routing matrix
        (``coded_transposed``, shape ``(space_size, n_nodes)``) for
        in-place epoch patching, or ``None`` to skip coded patching
        (the decoded reference mode). When given, the plan keeps an
        absolute sparse :class:`~repro.kademlia.table.CodedPatch` per
        storer-recomputing epoch applied to it, reverting on every
        epoch transition and on :meth:`restore_coded`, so the matrix
        is bit-exact pristine again when the run finishes.
    timestamps:
        Per-epoch start times on the simulation clock (seconds,
        ``n_epochs`` entries), or ``None`` for the timeless engines
        (every :attr:`EpochState.timestamp` stays 0.0). The time
        backend passes each slab's first file-arrival time, turning
        epoch boundaries into wall-clock instants.
    """

    def __init__(self, scenario: Scenario, ctx: ScenarioContext, *,
                 table_fingerprint: str, base_storers: np.ndarray,
                 addresses: np.ndarray, epoch_tables=None,
                 coded: np.ndarray | None = None,
                 timestamps: np.ndarray | None = None) -> None:
        if epoch_tables is None:
            from ..perf.table_cache import global_epoch_table_cache

            epoch_tables = global_epoch_table_cache()
        self.scenario = scenario
        self.ctx = ctx
        # One event stream per composed child (a replayed dynamics
        # trace re-emits its recorded per-stream structure): each
        # stream's topology deltas fold into a private alive mask.
        self._streams = []
        for index, stream in enumerate(scenario.stream_schedules(ctx)):
            if len(stream) != ctx.n_epochs:
                raise ConfigurationError(
                    f"scenario {scenario.spec()!r} stream {index} "
                    f"produced {len(stream)} epochs for a "
                    f"{ctx.n_epochs}-epoch plan"
                )
            self._streams.append(stream)
        self.recompute_storers = scenario.recompute_storers
        self._epoch_tables = epoch_tables
        self._base_storers = base_storers
        self._addresses = addresses
        self._fingerprint = table_fingerprint
        self._alive: np.ndarray | None = None
        self._stream_alive: dict[int, np.ndarray] = {}
        self._storers: np.ndarray | None = None
        # Whether _storers (or, when None, _base_storers) matches the
        # current alive set — lost when every node goes offline.
        self._parent_valid = True
        self._cache: CacheRuntime | None = None
        self._unpaid: np.ndarray | None = None
        self._origin_map: np.ndarray | None = None
        if coded is not None and not (
            coded.flags.writeable and coded.flags.c_contiguous
        ):
            # Contiguity guarantees reshape(-1) below is a *view* — a
            # silent copy would divert every patch away from the
            # matrix the kernel actually gathers from.
            raise ConfigurationError(
                "EpochPlan needs a writable C-contiguous coded matrix "
                "for in-place patching; pass "
                "TableCache.writable_coded(table)"
            )
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=np.float64)
            if timestamps.shape != (ctx.n_epochs,):
                raise ConfigurationError(
                    f"timestamps must carry one start time per epoch "
                    f"({ctx.n_epochs}), got shape {timestamps.shape}"
                )
        self._timestamps = timestamps
        self._coded = coded
        self._flat_coded = None if coded is None else coded.reshape(-1)
        self._coded_patch = None
        self._coded_key: str | None = None
        self._dead_lut: np.ndarray | None = None
        self._next = 0

    @property
    def n_epochs(self) -> int:
        return self.ctx.n_epochs

    def epoch(self, index: int) -> EpochState:
        """Fold epoch *index*'s events and return its engine state.

        Epochs must be consumed in order — the plan's state (alive
        masks, cache contents, fingerprint chain) is cumulative.
        """
        if index != self._next:
            raise ConfigurationError(
                f"epochs must be consumed in order: expected "
                f"{self._next}, got {index}"
            )
        self._next += 1
        touched = False
        for stream_index, schedule in enumerate(self._streams):
            for event in schedule[index]:
                if isinstance(event, TopologyDelta):
                    mask = self._stream_alive.get(stream_index)
                    if mask is None:
                        mask = np.ones(self.ctx.n_nodes, dtype=bool)
                        self._stream_alive[stream_index] = mask
                    touched = True
                    if event.leaves:
                        mask[list(event.leaves)] = False
                    if event.joins:
                        mask[list(event.joins)] = True
                elif isinstance(event, CacheState):
                    if self._cache is None:
                        self._cache = CacheRuntime(
                            self.ctx.space_size, event.capacity
                        )
                    else:
                        self._cache.set_capacity(event.capacity)
                    self._cache.enabled = event.enabled
                elif isinstance(event, PolicyOverride):
                    self._apply_policy(event)
                else:  # pragma: no cover - new event kinds fail loudly
                    raise ConfigurationError(
                        f"unknown scenario event {event!r}"
                    )
        if touched:
            before = (
                self._alive if self._alive is not None
                else np.ones(self.ctx.n_nodes, dtype=bool)
            )
            combined = np.ones(self.ctx.n_nodes, dtype=bool)
            for mask in self._stream_alive.values():
                combined &= mask
            self._alive = combined
            self._dead_lut = (
                dead_value_lut(combined) if not combined.all() else None
            )
            if self.recompute_storers:
                self._advance_storers(before)
        cache = (
            self._cache
            if self._cache is not None and self._cache.enabled
            else None
        )
        return EpochState(
            index=index,
            alive=self._alive,
            storers=self._storers if self.recompute_storers else None,
            cache=cache,
            unpaid=self._unpaid,
            origin_map=self._origin_map,
            dead_lut=self._dead_lut,
            timestamp=(0.0 if self._timestamps is None
                       else float(self._timestamps[index])),
        )

    # ------------------------------------------------------------------
    # Event folding

    def _apply_policy(self, event: PolicyOverride) -> None:
        if event.unpaid_origins is not None:
            if event.unpaid_origins:
                mask = np.zeros(self.ctx.n_nodes, dtype=bool)
                mask[list(event.unpaid_origins)] = True
                self._unpaid = mask
            else:
                self._unpaid = None
        if event.origin_focus is not None:
            if event.origin_focus:
                focus = np.asarray(event.origin_focus, dtype=np.int64)
                self._origin_map = focus[
                    np.arange(self.ctx.n_nodes) % focus.size
                ]
            else:
                self._origin_map = None

    def _advance_storers(self, before: np.ndarray) -> None:
        """Chain the table fingerprint and resolve the epoch's storers."""
        alive = self._alive
        assert alive is not None
        leaves = np.flatnonzero(before & ~alive)
        joins = np.flatnonzero(~before & alive)
        if leaves.size == 0 and joins.size == 0:
            return
        self._fingerprint = chain_fingerprint(
            self._fingerprint, leaves, joins
        )
        if not alive.any():
            # Extinct epoch: the engine skips it entirely; the next
            # populated epoch cannot patch from here.
            self._storers = None
            self._parent_valid = False
            self.restore_coded()
            return
        parent = (
            self._storers if self._storers is not None
            else self._base_storers
        )
        parent_valid = self._parent_valid
        addresses = self._addresses
        alive_now = alive.copy()

        def build() -> np.ndarray:
            if parent_valid:
                return patch_storer_table(
                    parent, addresses, alive_now, leaves, joins
                )
            return alive_storer_table(
                addresses, alive_now, parent.dtype, self.ctx.space_size
            )

        self._storers = self._epoch_tables.get(
            self._fingerprint, build, patched=parent_valid
        )
        self._parent_valid = True
        self._patch_coded()

    # ------------------------------------------------------------------
    # In-place coded-matrix patching

    def _patch_coded(self) -> None:
        """Swap the coded matrix's patch to this epoch's storer set.

        Patches are *absolute* — computed against the pristine matrix,
        never against the previous epoch's patched state — so an epoch
        transition is revert-outstanding-then-apply, O(both patches)
        regardless of how far the two alive sets drifted apart. The
        patch itself only promotes forward entries equal to the
        epoch's storer into the arrive band: a storer can differ from
        the static one only because the static storer died (joins just
        resurrect built-in nodes), so every other divergence is a
        *dead* coded value the kernel's dead-value LUT already
        reroutes. Patch objects are memoized in the epoch-table cache
        under ``"coded:" + fingerprint``, so sweep replicas replaying
        one schedule scan the matrix once per process.
        """
        if self._flat_coded is None:
            return
        self.restore_coded()
        storers = self._storers
        assert storers is not None
        coded = self._coded
        base = self._base_storers
        key = "coded:" + self._fingerprint

        def build():
            return coded_arrive_patch(coded, base, storers)

        patch = self._epoch_tables.get(key, build, patched=True)
        patch.apply(self._flat_coded)
        self._coded_patch = patch
        self._coded_key = key

    def restore_coded(self) -> None:
        """Revert the outstanding coded-matrix patch, if any.

        Idempotent; the engine calls it in a ``finally`` so the shared
        working matrix is pristine again even when a run dies mid-way.
        """
        if self._coded_patch is None:
            return
        self._coded_patch.revert(self._flat_coded)
        if self._coded_key is not None:
            from ..perf.table_cache import log_epoch_event

            log_epoch_event(self._coded_key, "revert")
        self._coded_patch = None
        self._coded_key = None


def precompute_epoch_tables(
    scenario: Scenario, ctx: ScenarioContext, *,
    table_fingerprint: str, base_storers: np.ndarray,
    addresses: np.ndarray, coded: np.ndarray | None = None,
) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Resolve every epoch artifact of *scenario*'s schedule up front.

    Sweeps call this once in the parent process before fanning out
    replicas: the returned storer tables and coded patches (both
    keyed by chained fingerprint, patches under their ``"coded:"``
    keys) are published over shared memory, and each worker installs
    the attached views into its epoch cache instead of re-deriving
    the whole chain — one patch scan per *machine* instead of one per
    process. Runs through a private, schedule-sized
    :class:`~repro.perf.table_cache.EpochTableCache` so the caller's
    process-global cache (and its stats) stay untouched. Schedules
    are deterministic per ``(scenario spec, ctx)``, so the artifacts
    workers replay are bit-identical to what they would derive
    themselves.
    """
    from ..perf.table_cache import EpochTableCache

    cache = EpochTableCache(max_tables=max(1, 2 * ctx.n_epochs))
    plan = EpochPlan(
        scenario, ctx,
        table_fingerprint=table_fingerprint,
        base_storers=base_storers,
        addresses=addresses,
        epoch_tables=cache,
        coded=coded,
    )
    storer_tables: dict[str, np.ndarray] = {}
    patches: dict[str, object] = {}
    try:
        for index in range(plan.n_epochs):
            state = plan.epoch(index)
            if state.storers is not None:
                storer_tables.setdefault(plan._fingerprint, state.storers)
            if plan._coded_patch is not None and plan._coded_key is not None:
                patches.setdefault(plan._coded_key, plan._coded_patch)
    finally:
        plan.restore_coded()
    return storer_tables, patches
