"""Dynamics traces: record a scenario's schedule, replay it anywhere.

:mod:`repro.workloads.traces` freezes *requests* (who downloads what);
this module freezes *dynamics* — the per-epoch event schedule a
scenario emits (node leave/join logs, cache policy shifts, incentive
overrides) — into a portable JSON file. The two together make a run
fully replayable from recorded inputs, the way the paper's experiments
stress the swarm under recorded conditions rather than fresh synthetic
draws.

A :class:`DynamicsTrace` is a versioned container:

* a **header** carrying the provenance the replay is only valid for —
  address width (``bits``), overlay size (``n_nodes``) and seed
  (``overlay_seed``), the source-scenario composition string, whether
  the source re-homed storers (``recompute_storers``), and the epoch
  count the schedule was sized for;
* one or more **streams**, each a recorded per-epoch event schedule.
  Streams mirror the composed source's children: the
  :class:`~repro.scenarios.plan.EpochPlan` gives every stream a
  private alive mask (see
  :meth:`~repro.scenarios.base.Scenario.stream_schedules`), so a
  recorded ``churn+join`` composition replays with exactly the
  original AND-of-masks topology semantics.

:func:`record_dynamics` captures any scenario; the
:class:`~repro.scenarios.library.TraceReplay` scenario (grammar kind
``trace:path=...``) replays a saved file through the unchanged epoch
machinery — same events, same chained table fingerprints, same
:class:`~repro.perf.table_cache.EpochTableCache` entries — which is
why replaying a recording is bit-identical to running the source
scenario directly (the golden round-trip tests pin this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..errors import ConfigurationError
from .base import Schedule, ScenarioContext
from .events import event_from_json, event_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Scenario

__all__ = ["DYNAMICS_TRACE_FORMAT", "DynamicsTrace", "record_dynamics"]

#: Format tag written into every dynamics-trace file; bumped on any
#: incompatible layout change so old readers fail loudly, not subtly.
DYNAMICS_TRACE_FORMAT = "repro-swarm-dynamics/1"


def _bad_trace(path: str | Path, why: str) -> ConfigurationError:
    return ConfigurationError(
        f"cannot read dynamics trace {path}: {why}"
    )


@dataclass(frozen=True)
class DynamicsTrace:
    """A recorded scenario schedule plus the provenance it replays on.

    ``streams`` is a tuple of per-stream schedules (each ``n_epochs``
    tuples of events); ``source`` is the composition string of the
    scenario that was recorded (informational — replay never re-runs
    it); ``recompute_storers`` preserves the source's re-homing
    semantics, which the schedule alone cannot express.
    """

    bits: int
    n_nodes: int
    overlay_seed: int
    source: str
    recompute_storers: bool
    n_epochs: int
    streams: tuple[Schedule, ...]

    def __post_init__(self) -> None:
        if not self.streams:
            raise ConfigurationError(
                "a dynamics trace needs at least one event stream"
            )
        for index, stream in enumerate(self.streams):
            if len(stream) != self.n_epochs:
                raise ConfigurationError(
                    f"dynamics-trace stream {index} has {len(stream)} "
                    f"epochs, header says {self.n_epochs}"
                )

    @property
    def n_events(self) -> int:
        """Total recorded events across every stream and epoch."""
        return sum(
            len(epoch) for stream in self.streams for epoch in stream
        )

    def describe(self) -> str:
        """One line for CLI output and logs."""
        return (
            f"{self.source!r}: {len(self.streams)} stream(s) x "
            f"{self.n_epochs} epoch(s), {self.n_events} event(s), "
            f"{self.n_nodes} nodes / {self.bits}-bit space "
            f"(overlay seed {self.overlay_seed})"
        )

    # ------------------------------------------------------------------
    # Persistence

    def to_json(self) -> dict:
        """The full versioned document (deterministic key order)."""
        return {
            "format": DYNAMICS_TRACE_FORMAT,
            "bits": self.bits,
            "n_nodes": self.n_nodes,
            "overlay_seed": self.overlay_seed,
            "source": self.source,
            "recompute_storers": self.recompute_storers,
            "n_epochs": self.n_epochs,
            "streams": [
                [[event_to_json(event) for event in epoch]
                 for epoch in stream]
                for stream in self.streams
            ],
        }

    @classmethod
    def from_json(cls, document: Mapping, *,
                  path: str | Path = "<memory>") -> "DynamicsTrace":
        """Decode a document written by :meth:`to_json`.

        Every malformation — wrong format tag, missing header fields,
        non-list streams, unknown event kinds — raises
        :class:`~repro.errors.ConfigurationError` naming *path* and
        the problem, so a truncated or hand-edited file never replays
        a silently different scenario.
        """
        if not isinstance(document, Mapping):
            raise _bad_trace(
                path, f"expected a JSON object, got "
                f"{type(document).__name__}"
            )
        fmt = document.get("format")
        if fmt != DYNAMICS_TRACE_FORMAT:
            raise _bad_trace(
                path,
                f"format tag {fmt!r} is not {DYNAMICS_TRACE_FORMAT!r} "
                f"(is this a request trace or an older file?)"
            )
        try:
            bits = int(document["bits"])
            n_nodes = int(document["n_nodes"])
            overlay_seed = int(document["overlay_seed"])
            source = str(document["source"])
            recompute = bool(document["recompute_storers"])
            n_epochs = int(document["n_epochs"])
            raw_streams = document["streams"]
        except (KeyError, TypeError, ValueError) as error:
            raise _bad_trace(path, f"bad or missing header field "
                             f"({error})") from None
        if not 1 <= bits <= 64:
            raise _bad_trace(path, f"bits must be in [1, 64], got {bits}")
        if n_nodes < 1:
            raise _bad_trace(path, f"n_nodes must be >= 1, got {n_nodes}")
        if n_epochs < 0:
            raise _bad_trace(path, f"n_epochs must be >= 0, got {n_epochs}")
        if not isinstance(raw_streams, list):
            raise _bad_trace(path, "streams must be a list")
        streams = []
        for raw_stream in raw_streams:
            if not isinstance(raw_stream, list):
                raise _bad_trace(path, "each stream must be a list of "
                                 "epochs")
            stream = []
            for raw_epoch in raw_stream:
                if not isinstance(raw_epoch, list):
                    raise _bad_trace(path, "each epoch must be a list "
                                     "of events")
                try:
                    stream.append(tuple(
                        event_from_json(raw_event)
                        for raw_event in raw_epoch
                    ))
                except ConfigurationError as error:
                    raise _bad_trace(path, str(error)) from None
            streams.append(tuple(stream))
        try:
            return cls(
                bits=bits, n_nodes=n_nodes, overlay_seed=overlay_seed,
                source=source, recompute_storers=recompute,
                n_epochs=n_epochs, streams=tuple(streams),
            )
        except ConfigurationError as error:
            raise _bad_trace(path, str(error)) from None

    def save(self, path: str | Path) -> None:
        """Write the trace as versioned JSON."""
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "DynamicsTrace":
        """Read a trace written by :meth:`save` (validating everything)."""
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise _bad_trace(path, str(error)) from None
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise _bad_trace(
                path, f"not valid JSON ({error}); the file may be "
                f"truncated or corrupt"
            ) from None
        return cls.from_json(document, path=path)

    # ------------------------------------------------------------------
    # Replay-side validation

    def check_context(self, ctx: ScenarioContext,
                      *, path: str | Path = "<memory>") -> None:
        """Refuse replay against a context the trace was not recorded for.

        Bits/n_nodes always have to match — recorded dense node
        indices and the epoch count are meaningless on a different
        overlay shape — and the overlay seed must match whenever the
        context carries one. A context asking for *more* epochs than
        were recorded is refused too (the trace simply does not know
        what happened next); fewer is fine, the tail is unused.
        """
        if ctx.space_size != (1 << self.bits):
            raise ConfigurationError(
                f"dynamics trace {path} was recorded for a "
                f"{self.bits}-bit space but this run uses "
                f"{ctx.space_size} addresses; replay traces at the "
                f"bits they were recorded for"
            )
        if ctx.n_nodes != self.n_nodes:
            raise ConfigurationError(
                f"dynamics trace {path} was recorded over "
                f"{self.n_nodes} nodes but this run has "
                f"{ctx.n_nodes}; the recorded dense node indices do "
                f"not transfer between populations"
            )
        if (ctx.overlay_seed is not None
                and ctx.overlay_seed != self.overlay_seed):
            raise ConfigurationError(
                f"dynamics trace {path} was recorded on overlay seed "
                f"{self.overlay_seed} but this run uses overlay seed "
                f"{ctx.overlay_seed}; replay traces against the "
                f"overlay they were captured for"
            )
        if ctx.n_epochs > self.n_epochs:
            raise ConfigurationError(
                f"dynamics trace {path} records {self.n_epochs} "
                f"epoch(s) but this workload spans {ctx.n_epochs}; "
                f"record the trace with at least as many epochs "
                f"(n_files / batch_files) as the replay workload"
            )


def record_dynamics(scenario: "Scenario",
                    ctx: ScenarioContext) -> DynamicsTrace:
    """Capture *scenario*'s emitted schedule for *ctx* as a trace.

    The recording is exact: each composed child contributes its own
    stream(s) via
    :meth:`~repro.scenarios.base.Scenario.stream_schedules`, so the
    replayed plan folds topology deltas into the same private alive
    masks the direct run would. *ctx* must carry the overlay seed —
    a trace without one could not refuse wrong-overlay replays.
    """
    if ctx.overlay_seed is None:
        raise ConfigurationError(
            "recording a dynamics trace needs the overlay seed in the "
            "ScenarioContext; pass overlay_seed=... so replays can be "
            "validated against the right overlay"
        )
    bits = (ctx.space_size - 1).bit_length()
    if (1 << bits) != ctx.space_size:
        raise ConfigurationError(
            f"space_size must be a power of two to record a trace, "
            f"got {ctx.space_size}"
        )
    return DynamicsTrace(
        bits=bits,
        n_nodes=ctx.n_nodes,
        overlay_seed=ctx.overlay_seed,
        source=scenario.spec(),
        recompute_storers=bool(scenario.recompute_storers),
        n_epochs=ctx.n_epochs,
        streams=tuple(scenario.stream_schedules(ctx)),
    )
