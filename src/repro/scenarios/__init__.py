"""Composable epoch-driven network dynamics.

The scenario layer decouples *what changes over time* (churn, path
caching, free-riding, join storms, demand shifts) from *how the
engine routes* (the single epoch-segmented hop kernel in
:mod:`repro.backends.fast`). A scenario deterministically produces a
per-epoch schedule of :mod:`~repro.scenarios.events`; scenarios
compose with :class:`Compose` or the ``+`` grammar of
:func:`parse_scenario`; an :class:`EpochPlan` folds the composed
schedule into per-epoch engine state, resolving storer tables under
topology change through the delta-patched epoch-table cache::

    from repro.scenarios import Churn, PathCaching, Compose

    scenario = Compose(Churn(rate=0.1, recompute=True),
                       PathCaching(size=64))
    # equivalently: parse_scenario("churn:rate=0.1,recompute=true"
    #                              "+caching:size=64")

Every backend consumes scenarios through the ``scenario`` field of
:class:`~repro.backends.config.FastSimulationConfig`, and sweeps
treat the spec string as a first-class axis
(``repro-swarm sweep --scenario ...``).

Dynamics are also **recordable**: :func:`record_dynamics` captures
any scenario's emitted schedule into a versioned
:class:`DynamicsTrace` file, and the ``trace:path=...`` kind
(:class:`TraceReplay`) replays it bit-identically — see
:mod:`repro.scenarios.trace` and ``repro-swarm trace
record-dynamics`` / ``replay-dynamics``.
"""

from .base import Scenario, ScenarioContext, Schedule
from .compose import Compose
from .events import (
    CacheState,
    PolicyOverride,
    TopologyDelta,
    event_from_json,
    event_to_json,
)
from .library import (
    Churn,
    DemandShift,
    FreeRiding,
    NodeJoin,
    PathCaching,
    TraceReplay,
)
from .parse import SCENARIO_KINDS, parse_scenario, scenario_help
from .plan import CacheRuntime, EpochPlan, EpochState
from .trace import DYNAMICS_TRACE_FORMAT, DynamicsTrace, record_dynamics

__all__ = [
    "Scenario",
    "ScenarioContext",
    "Schedule",
    "Compose",
    "TopologyDelta",
    "CacheState",
    "PolicyOverride",
    "event_to_json",
    "event_from_json",
    "Churn",
    "PathCaching",
    "FreeRiding",
    "NodeJoin",
    "DemandShift",
    "TraceReplay",
    "DYNAMICS_TRACE_FORMAT",
    "DynamicsTrace",
    "record_dynamics",
    "SCENARIO_KINDS",
    "parse_scenario",
    "scenario_help",
    "CacheRuntime",
    "EpochPlan",
    "EpochState",
]
