"""Composable epoch-driven network dynamics.

The scenario layer decouples *what changes over time* (churn, path
caching, free-riding, join storms, demand shifts) from *how the
engine routes* (the single epoch-segmented hop kernel in
:mod:`repro.backends.fast`). A scenario deterministically produces a
per-epoch schedule of :mod:`~repro.scenarios.events`; scenarios
compose with :class:`Compose` or the ``+`` grammar of
:func:`parse_scenario`; an :class:`EpochPlan` folds the composed
schedule into per-epoch engine state, resolving storer tables under
topology change through the delta-patched epoch-table cache::

    from repro.scenarios import Churn, PathCaching, Compose

    scenario = Compose(Churn(rate=0.1, recompute=True),
                       PathCaching(size=64))
    # equivalently: parse_scenario("churn:rate=0.1,recompute=true"
    #                              "+caching:size=64")

Every backend consumes scenarios through the ``scenario`` field of
:class:`~repro.backends.config.FastSimulationConfig`, and sweeps
treat the spec string as a first-class axis
(``repro-swarm sweep --scenario ...``).
"""

from .base import Scenario, ScenarioContext, Schedule
from .compose import Compose
from .events import CacheState, PolicyOverride, TopologyDelta
from .library import Churn, DemandShift, FreeRiding, NodeJoin, PathCaching
from .parse import SCENARIO_KINDS, parse_scenario, scenario_help
from .plan import CacheRuntime, EpochPlan, EpochState

__all__ = [
    "Scenario",
    "ScenarioContext",
    "Schedule",
    "Compose",
    "TopologyDelta",
    "CacheState",
    "PolicyOverride",
    "Churn",
    "PathCaching",
    "FreeRiding",
    "NodeJoin",
    "DemandShift",
    "SCENARIO_KINDS",
    "parse_scenario",
    "scenario_help",
    "CacheRuntime",
    "EpochPlan",
    "EpochState",
]
