"""Scenario composition.

``Compose(churn, caching, ...)`` runs several scenarios over the same
epochs. The merge rule is deliberately trivial — and therefore
deterministic and associative: epoch ``e`` of the composition is the
concatenation of epoch ``e`` of every child, in child order, and the
:class:`~repro.scenarios.plan.EpochPlan` folds events into state
strictly in that order. Nested compositions flatten, so
``Compose(Compose(a, b), c)`` and ``Compose(a, b, c)`` are equal and
produce equal schedules, and a single-child ``Compose(a)`` schedules
exactly like the bare ``a`` (the property suite pins both laws).

Topology events are the one place concatenation alone would be wrong:
each child computes its deltas against its *own* history, so the plan
keeps one alive stream per child and ANDs them — composing ``churn``
with a ``join`` storm cannot resurrect the storm's offline cohort
(see :class:`~repro.scenarios.plan.EpochPlan`).
"""

from __future__ import annotations

from .base import Scenario, ScenarioContext, Schedule

__all__ = ["Compose"]


class Compose(Scenario):
    """Run several scenarios over the same epoch sequence.

    Children keep their own seeds and parameters; composition never
    rewires them. Storer recomputation is on when any child requests
    it (re-homing is a property of the network, not of one dynamic).
    """

    kind = "compose"

    def __init__(self, *scenarios: Scenario) -> None:
        flat: list[Scenario] = []
        for scenario in scenarios:
            flat.extend(scenario.flattened())
        self.scenarios: tuple[Scenario, ...] = tuple(flat)

    @property
    def recompute_storers(self) -> bool:  # type: ignore[override]
        return any(s.recompute_storers for s in self.scenarios)

    def flattened(self) -> tuple[Scenario, ...]:
        return self.scenarios

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        child_schedules = [s.schedule(ctx) for s in self.scenarios]
        merged = tuple(
            tuple(
                event
                for child in child_schedules
                for event in child[epoch]
            )
            for epoch in range(ctx.n_epochs)
        )
        return self._check_schedule(ctx, merged)

    def stream_schedules(self, ctx: ScenarioContext
                         ) -> tuple[Schedule, ...]:
        return tuple(
            stream
            for child in self.scenarios
            for stream in child.stream_schedules(ctx)
        )

    def spec(self) -> str:
        return "+".join(s.spec() for s in self.scenarios)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Compose):
            return NotImplemented
        return self.scenarios == other.scenarios

    def __hash__(self) -> int:
        return hash((Compose, self.scenarios))

    def __repr__(self) -> str:
        inner = ", ".join(repr(s) for s in self.scenarios)
        return f"Compose({inner})"
