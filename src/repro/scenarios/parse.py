"""The scenario composition grammar.

One line of text describes a composed scenario stack — the form the
CLI, sweep specs, and the ``scenario`` configuration field speak::

    churn:rate=0.1
    caching:size=64
    churn:rate=0.1,recompute=true+caching:size=64
    join:fraction=0.4,waves=3+freeriding:fraction=0.2

Grammar::

    spec   ::= item ("+" item)*
    item   ::= kind [":" params]
    params ::= key "=" value ("," key "=" value)*

``kind`` is a name from :data:`SCENARIO_KINDS`; parameters are typed
by the scenario dataclass's own fields (ints, floats, bools), so a
bad key or value fails with the field list in the message — at config
construction time, never inside a sweep worker. A single item parses
to the bare scenario; multiple items parse to a
:class:`~repro.scenarios.compose.Compose` in written order.
:func:`parse_scenario` and :meth:`Scenario.spec()
<repro.scenarios.base.Scenario.spec>` are inverses up to omitted
defaults.
"""

from __future__ import annotations

import dataclasses
import typing

from ..errors import ConfigurationError
from .base import Scenario
from .compose import Compose
from .library import (
    Churn,
    DemandShift,
    FreeRiding,
    NodeJoin,
    PathCaching,
    TraceReplay,
)

__all__ = ["SCENARIO_KINDS", "parse_scenario", "scenario_help"]

#: Grammar name -> scenario class; the single registry the parser,
#: the CLI help, and the error messages share.
SCENARIO_KINDS: dict[str, type[Scenario]] = {
    cls.kind: cls
    for cls in (Churn, PathCaching, FreeRiding, NodeJoin, DemandShift,
                TraceReplay)
}


def scenario_help() -> str:
    """One line per kind with its parameters — for CLI help and errors."""
    lines = []
    for kind in sorted(SCENARIO_KINDS):
        fields = ", ".join(
            f"{f.name}={f.default}"
            if f.default is not dataclasses.MISSING
            else f"{f.name}=<required>"
            for f in dataclasses.fields(SCENARIO_KINDS[kind])
        )
        lines.append(f"{kind}:{fields}" if fields else kind)
    return "; ".join(lines)


def _parse_value(cls: type[Scenario], key: str, text: str):
    hints = typing.get_type_hints(cls)
    fields = {f.name: f for f in dataclasses.fields(cls)}
    if key not in fields:
        raise ConfigurationError(
            f"unknown parameter {key!r} for scenario {cls.kind!r}; "
            f"known: {sorted(fields)}"
        )
    target = hints[key]
    try:
        if target is bool:
            lowered = text.lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(text)
        return target(text)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"cannot parse {text!r} as {target.__name__} for scenario "
            f"parameter {cls.kind}:{key}"
        ) from None


def _parse_item(item: str) -> Scenario:
    kind, separator, params_text = item.partition(":")
    kind = kind.strip()
    if kind not in SCENARIO_KINDS:
        raise ConfigurationError(
            f"unknown scenario kind {kind!r}; available: {scenario_help()}"
        )
    cls = SCENARIO_KINDS[kind]
    params = {}
    if separator and params_text.strip():
        for part in params_text.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise ConfigurationError(
                    f"malformed scenario parameter {part!r} in {item!r}; "
                    f"expected key=value"
                )
            if key in params:
                raise ConfigurationError(
                    f"scenario parameter {key!r} given twice in {item!r}"
                )
            params[key] = _parse_value(cls, key, value.strip())
    try:
        return cls(**params)
    except TypeError:
        required = [
            f.name for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING and f.name not in params
        ]
        raise ConfigurationError(
            f"scenario {kind!r} is missing required parameter(s) "
            f"{required}; write e.g. "
            f"{kind}:{','.join(f'{name}=...' for name in required)}"
        ) from None


def parse_scenario(text: str) -> Scenario:
    """Parse a composition spec; ``a+b`` composes in written order."""
    stripped = text.strip()
    if not stripped:
        raise ConfigurationError(
            f"empty scenario spec; available kinds: {scenario_help()}"
        )
    items = [part.strip() for part in stripped.split("+")]
    if any(not part for part in items):
        raise ConfigurationError(
            f"malformed scenario spec {text!r}: empty item between '+'"
        )
    scenarios = [_parse_item(part) for part in items]
    if len(scenarios) == 1:
        return scenarios[0]
    return Compose(*scenarios)
