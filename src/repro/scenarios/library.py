"""The built-in scenario library.

Five composable dynamics, each a frozen dataclass over its own seeds
and rates (so schedules are pure functions of the parameters):

* :class:`Churn` — a fresh independent node-alive mask per epoch,
  expressed as :class:`~repro.scenarios.events.TopologyDelta` flips
  against the previous epoch. Draw-for-draw compatible with the
  legacy ``churn_offline_fraction`` engine fields, which the golden
  scenario fixtures pin bit-identically.
* :class:`PathCaching` — the path-cache model, optionally bounded to
  a FIFO ``size``. ``size=0`` is the legacy unbounded ``caching=True``.
* :class:`FreeRiding` — a fixed set of originators that never pay,
  drawn exactly like the ``freerider`` baseline backend draws its
  riders.
* :class:`NodeJoin` — a join storm: a fraction of the overlay starts
  offline and rejoins in equal waves, with content re-homed to the
  closest live node (``recompute_storers``), exercising the
  delta-patched epoch tables.
* :class:`DemandShift` — each epoch's demand concentrates on a fresh
  hot subset of originators (flash crowds moving around the network).
* :class:`TraceReplay` — not synthetic at all: replays a recorded
  :class:`~repro.scenarios.trace.DynamicsTrace` file, stream for
  stream, after validating its provenance header against the run's
  overlay. Composes with everything above like any other scenario.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .._validation import require_fraction, require_int, require_non_negative
from ..errors import ConfigurationError
from .base import Scenario, ScenarioContext, Schedule
from .events import CacheState, PolicyOverride, TopologyDelta
from .trace import DynamicsTrace

__all__ = [
    "Churn",
    "PathCaching",
    "FreeRiding",
    "NodeJoin",
    "DemandShift",
    "TraceReplay",
]


@dataclass(frozen=True)
class Churn(Scenario):
    """Independent per-epoch offline sampling at a fixed rate.

    Epoch ``e`` draws ``rng.random(n) >= rate`` from a dedicated
    generator — the exact draw stream of the legacy engine loop — and
    emits the flips against epoch ``e - 1`` as a topology delta. The
    delta event is emitted even when empty so the engine runs the
    same (alive-mask) code path every epoch, like the legacy kernel
    did.

    ``recompute`` selects neighborhood re-replication: storers are
    re-homed to the closest live node per epoch (via the incremental
    epoch-table patching); otherwise chunks whose static storer is
    offline count as unavailable.
    """

    rate: float
    seed: int = 99
    recompute: bool = False

    kind = "churn"

    def __post_init__(self) -> None:
        require_fraction(self.rate, "churn rate")
        require_int(self.seed, "churn seed")

    @property
    def recompute_storers(self) -> bool:  # type: ignore[override]
        return self.recompute

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        rng = np.random.default_rng(self.seed)
        previous = np.ones(ctx.n_nodes, dtype=bool)
        epochs = []
        for _ in range(ctx.n_epochs):
            alive = rng.random(ctx.n_nodes) >= self.rate
            leaves = np.flatnonzero(previous & ~alive)
            joins = np.flatnonzero(~previous & alive)
            epochs.append(
                (TopologyDelta(tuple(leaves), tuple(joins)),)
            )
            previous = alive
        return self._check_schedule(ctx, tuple(epochs))


@dataclass(frozen=True)
class PathCaching(Scenario):
    """Path caches along delivery routes; ``size=0`` is unbounded.

    One :class:`CacheState` event at epoch 0 switches the model on;
    the cache mask itself evolves with the traffic (every delivered
    chunk is cached, FIFO-evicted beyond ``size``).
    """

    size: int = 0

    kind = "caching"

    def __post_init__(self) -> None:
        require_int(self.size, "cache size")
        require_non_negative(self.size, "cache size")

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        if ctx.n_epochs == 0:
            return ()
        head: tuple = (CacheState(enabled=True, capacity=self.size),)
        return self._check_schedule(
            ctx, (head,) + ((),) * (ctx.n_epochs - 1)
        )


@dataclass(frozen=True)
class FreeRiding(Scenario):
    """A fixed fraction of originators whose downloads are never paid.

    Riders are sampled once (same draw as the ``freerider`` backend:
    ``round(fraction * n)`` choices without replacement) and installed
    as a :class:`PolicyOverride` at epoch 0.
    """

    fraction: float = 0.3
    seed: int = 13

    kind = "freeriding"

    def __post_init__(self) -> None:
        require_fraction(self.fraction, "free-riding fraction")
        require_int(self.seed, "free-riding seed")

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        if ctx.n_epochs == 0:
            return ()
        n_riders = round(self.fraction * ctx.n_nodes)
        riders: tuple[int, ...] = ()
        if n_riders:
            rng = np.random.default_rng(self.seed)
            riders = tuple(
                sorted(rng.choice(ctx.n_nodes, size=n_riders,
                                  replace=False))
            )
        head: tuple = (PolicyOverride(unpaid_origins=riders),)
        return self._check_schedule(
            ctx, (head,) + ((),) * (ctx.n_epochs - 1)
        )


@dataclass(frozen=True)
class NodeJoin(Scenario):
    """Join storm: an initially offline cohort rejoins in equal waves.

    ``fraction`` of the overlay leaves before the first epoch; the
    cohort then joins in ``waves`` equal slices starting at epoch 1
    (``waves=0`` spreads them across every remaining epoch). Content
    is re-homed to the closest live node as the population grows —
    each join wave is a delta patch on the previous epoch's storer
    table, the cheap path the epoch-table cache exists for.
    """

    fraction: float = 0.3
    waves: int = 0
    seed: int = 17

    kind = "join"
    recompute_storers = True

    def __post_init__(self) -> None:
        require_fraction(self.fraction, "join fraction")
        require_int(self.waves, "join waves")
        require_non_negative(self.waves, "join waves")
        require_int(self.seed, "join seed")

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        if ctx.n_epochs == 0:
            return ()
        n_offline = round(self.fraction * ctx.n_nodes)
        if n_offline == 0:
            return self._check_schedule(ctx, ((),) * ctx.n_epochs)
        rng = np.random.default_rng(self.seed)
        offline = np.sort(
            rng.choice(ctx.n_nodes, size=n_offline, replace=False)
        )
        epochs: list[tuple] = [
            (TopologyDelta(leaves=tuple(offline)),)
        ]
        span = ctx.n_epochs - 1
        waves = min(self.waves, span) if self.waves else span
        if waves:
            slices = np.array_split(offline, waves)
            for wave in range(span):
                if wave < waves and slices[wave].size:
                    epochs.append(
                        (TopologyDelta(joins=tuple(slices[wave])),)
                    )
                else:
                    epochs.append(())
        return self._check_schedule(ctx, tuple(epochs))


@dataclass(frozen=True)
class DemandShift(Scenario):
    """Flash crowds: each epoch's demand focuses on a hot node subset.

    Epoch ``e`` draws a fresh hot set of ``max(1, round(share * n))``
    nodes and remaps every origin into it (``focus[o % len(focus)]``),
    modelling demand that moves around the network instead of staying
    uniformly spread.
    """

    share: float = 0.1
    seed: int = 23

    kind = "demand"

    def __post_init__(self) -> None:
        require_fraction(self.share, "demand share")
        require_int(self.seed, "demand seed")

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        rng = np.random.default_rng(self.seed)
        size = max(1, round(self.share * ctx.n_nodes))
        epochs = []
        for _ in range(ctx.n_epochs):
            hot = np.sort(rng.choice(ctx.n_nodes, size=size, replace=False))
            epochs.append((PolicyOverride(origin_focus=tuple(hot)),))
        return self._check_schedule(ctx, tuple(epochs))


#: Loaded dynamics traces keyed by (resolved path, mtime_ns, size):
#: sweep specs construct every cell's config eagerly, so the same file
#: would otherwise be parsed once per cell per process.
_TRACE_CACHE: dict[tuple, DynamicsTrace] = {}


def _load_dynamics_trace(path: str) -> DynamicsTrace:
    resolved = os.path.abspath(path)
    try:
        stat = os.stat(resolved)
    except OSError as error:
        raise ConfigurationError(
            f"cannot read dynamics trace {path}: {error}"
        ) from None
    key = (resolved, stat.st_mtime_ns, stat.st_size)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = DynamicsTrace.load(resolved)
        while len(_TRACE_CACHE) >= 8:  # a run touches a few files at most
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace


@dataclass(frozen=True)
class TraceReplay(Scenario):
    """Replay a recorded :class:`~repro.scenarios.trace.DynamicsTrace`.

    The file is read (and its versioned header validated) at
    construction time — a bad path or corrupt file fails when the
    configuration is built, never inside a sweep worker. At schedule
    time the header is checked against the actual run context (bits,
    node count, overlay seed, epoch count), so a trace can only replay
    on the overlay it was captured for. The recorded streams pass
    through verbatim: replay is bit-identical to running the source
    scenario directly.

    Note the composition grammar reserves ``+`` and ``,``, so trace
    file paths containing those characters cannot be spelled in a
    ``trace:path=...`` spec string (construct :class:`TraceReplay`
    directly in that case; ``=`` is fine — the grammar splits on the
    first ``=`` only).
    """

    path: str

    kind = "trace"

    def __post_init__(self) -> None:
        self._trace()  # fail early: missing/corrupt files never sweep

    def _trace(self) -> DynamicsTrace:
        return _load_dynamics_trace(self.path)

    @property
    def recompute_storers(self) -> bool:  # type: ignore[override]
        return self._trace().recompute_storers

    def schedule(self, ctx: ScenarioContext) -> Schedule:
        streams = self.stream_schedules(ctx)
        merged = tuple(
            tuple(
                event
                for stream in streams
                for event in stream[epoch]
            )
            for epoch in range(ctx.n_epochs)
        )
        return self._check_schedule(ctx, merged)

    def stream_schedules(self, ctx: ScenarioContext
                         ) -> tuple[Schedule, ...]:
        trace = self._trace()
        trace.check_context(ctx, path=self.path)
        return tuple(
            stream[:ctx.n_epochs] for stream in trace.streams
        )
