"""Core contribution of the paper: incentive accounting and fairness.

This subpackage contains the SWAP accounting protocol, request
pricing, cheque settlement, time-based amortization, payment policies,
the assembled :class:`~repro.core.incentives.SwapIncentives`
mechanism, and the F1/F2 fairness metrics built on the Gini
coefficient.
"""

from .amortization import (
    AmortizationSchedule,
    ExponentialAmortization,
    LinearAmortization,
    NoAmortization,
    make_amortization,
)
from .fairness import (
    FairnessReport,
    LorenzCurve,
    evaluate_fairness,
    f1_values,
    f2_values,
    gini,
    gini_pairwise,
    lorenz_curve,
)
from .incentives import IncentiveMechanism, SwapIncentives
from .overhead import OverheadModel, OverheadReport, overhead_report
from .policies import (
    AllHopsPolicy,
    NoPaymentPolicy,
    Payment,
    PaymentPolicy,
    ZeroProximityPolicy,
    make_policy,
)
from .pricing import (
    FlatPricing,
    PricingStrategy,
    ProximityStepPricing,
    XorDistancePricing,
    make_pricing,
)
from .settlement import Cheque, Chequebook, SettlementService, SettlementStats
from .swap import SwapChannel, SwapLedger, SwapThresholds

__all__ = [
    "AllHopsPolicy",
    "AmortizationSchedule",
    "Cheque",
    "Chequebook",
    "ExponentialAmortization",
    "FairnessReport",
    "FlatPricing",
    "IncentiveMechanism",
    "LinearAmortization",
    "LorenzCurve",
    "NoAmortization",
    "NoPaymentPolicy",
    "OverheadModel",
    "OverheadReport",
    "Payment",
    "PaymentPolicy",
    "PricingStrategy",
    "ProximityStepPricing",
    "SettlementService",
    "SettlementStats",
    "SwapChannel",
    "SwapIncentives",
    "SwapLedger",
    "SwapThresholds",
    "XorDistancePricing",
    "ZeroProximityPolicy",
    "evaluate_fairness",
    "f1_values",
    "f2_values",
    "gini",
    "gini_pairwise",
    "lorenz_curve",
    "make_amortization",
    "make_policy",
    "make_pricing",
    "overhead_report",
]
