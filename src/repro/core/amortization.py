"""Time-based amortization of SWAP balances (paper §III-B).

"All balances gravitate continuously to zero via a time-based
amortization of balances. Thus, nodes may give away a limited amount
of bandwidth per time-unit and connection for free."

Two schedules are provided:

* :class:`LinearAmortization` — debt shrinks by a fixed number of
  accounting units per time unit (Swarm's model: a constant free-tier
  bandwidth allowance per connection).
* :class:`ExponentialAmortization` — debt decays by a fixed fraction
  per time unit (useful as an ablation; heavier debts amortize
  faster in absolute terms).

Schedules are pure: ``forgiven(balance, elapsed)`` returns how much of
*balance* is forgiven after *elapsed* time. The
:class:`~repro.engine.des.EventScheduler` drives them periodically in
the reference simulator.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from .._validation import require_non_negative, require_positive
from ..errors import ConfigurationError

__all__ = [
    "AmortizationSchedule",
    "LinearAmortization",
    "ExponentialAmortization",
    "NoAmortization",
    "make_amortization",
]


class AmortizationSchedule(ABC):
    """How much outstanding debt is forgiven per elapsed time."""

    @abstractmethod
    def forgiven(self, balance: float, elapsed: float) -> float:
        """Units of *balance* forgiven after *elapsed* time.

        Always in ``[0, abs(balance)]``; the sign handling is the
        channel's job.
        """

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier for configs and reports."""


class LinearAmortization(AmortizationSchedule):
    """Constant free bandwidth per time unit and connection."""

    def __init__(self, units_per_time: float) -> None:
        require_positive(units_per_time, "units_per_time")
        self.units_per_time = units_per_time

    def forgiven(self, balance: float, elapsed: float) -> float:
        require_non_negative(elapsed, "elapsed")
        return min(abs(balance), self.units_per_time * elapsed)

    @property
    def name(self) -> str:
        return "linear"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearAmortization(units_per_time={self.units_per_time})"


class ExponentialAmortization(AmortizationSchedule):
    """Debt decays by a fixed fraction per time unit.

    ``rate`` is the decay constant: after time ``t`` a balance ``b``
    becomes ``b * exp(-rate * t)``.
    """

    def __init__(self, rate: float) -> None:
        require_positive(rate, "rate")
        self.rate = rate

    def forgiven(self, balance: float, elapsed: float) -> float:
        require_non_negative(elapsed, "elapsed")
        remaining = abs(balance) * math.exp(-self.rate * elapsed)
        return abs(balance) - remaining

    @property
    def name(self) -> str:
        return "exponential"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExponentialAmortization(rate={self.rate})"


class NoAmortization(AmortizationSchedule):
    """Debt never decays — the paper's single-snapshot experiments.

    The paper's simulation measures accounting units accumulated over
    a burst of downloads without modelling wall-clock time, which is
    equivalent to amortization never firing.
    """

    def forgiven(self, balance: float, elapsed: float) -> float:
        require_non_negative(elapsed, "elapsed")
        return 0.0

    @property
    def name(self) -> str:
        return "none"


def make_amortization(name: str, rate: float = 1.0) -> AmortizationSchedule:
    """Factory for configs ('linear', 'exponential', 'none')."""
    if name == "linear":
        return LinearAmortization(rate)
    if name == "exponential":
        return ExponentialAmortization(rate)
    if name == "none":
        return NoAmortization()
    raise ConfigurationError(
        f"unknown amortization schedule {name!r}; expected 'linear', "
        f"'exponential' or 'none'"
    )
