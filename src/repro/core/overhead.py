"""Overhead accounting (paper §V, first future-work thread).

"With the simulation, we demonstrated that with k = 20, the Gini
coefficient approaches a smaller value, but we did not identify the
produced overhead ... There should be a trade-off between the
quantity of overhead generated and the amount of money received."

This module supplies that missing accounting. §V names three costs of
a larger k, each modelled explicitly:

1. **connection maintenance** — keepalive traffic proportional to the
   number of open connections (routing-table size);
2. **payment transactions** — each paid peer relationship implies
   settlement transactions whose fixed cost can exceed small rewards;
3. **amortization channels** — per-peer time-based accounting state.

:func:`overhead_report` combines a simulation result with a cost
model and answers the §V question directly: net earnings per node
after overhead, and whether the fairness gain of k=20 survives the
extra cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_non_negative
from ..kademlia.overlay import Overlay

__all__ = ["OverheadModel", "OverheadReport", "overhead_report"]


@dataclass(frozen=True)
class OverheadModel:
    """Unit costs of keeping the network running.

    All costs are in the same accounting units as income so they can
    be netted. Defaults are deliberately small relative to a chunk
    price; sweeps raise them to find the break-even point.
    """

    keepalive_cost_per_connection: float = 0.001
    transaction_cost: float = 0.01
    channel_state_cost: float = 0.0005

    def __post_init__(self) -> None:
        require_non_negative(
            self.keepalive_cost_per_connection,
            "keepalive_cost_per_connection",
        )
        require_non_negative(self.transaction_cost, "transaction_cost")
        require_non_negative(
            self.channel_state_cost, "channel_state_cost"
        )


@dataclass(frozen=True)
class OverheadReport:
    """Per-node overhead versus income for one simulation outcome."""

    income: np.ndarray
    connection_cost: np.ndarray
    transaction_cost: np.ndarray
    channel_cost: np.ndarray

    @property
    def total_overhead(self) -> np.ndarray:
        """All per-node costs combined."""
        return self.connection_cost + self.transaction_cost + self.channel_cost

    @property
    def net_income(self) -> np.ndarray:
        """Income minus overhead (may be negative)."""
        return self.income - self.total_overhead

    @property
    def underwater_nodes(self) -> int:
        """Nodes whose overhead exceeds their income (§V's warning)."""
        return int(np.count_nonzero(self.net_income < 0))

    def mean_net_income(self) -> float:
        """Network-wide mean net income."""
        return float(self.net_income.mean())

    def overhead_share(self) -> float:
        """Fraction of gross income consumed by overhead."""
        gross = float(self.income.sum())
        if gross == 0:
            return 0.0
        return float(self.total_overhead.sum()) / gross

    def summary(self) -> str:
        """One-line report."""
        return (
            f"mean net income = {self.mean_net_income():.4f}, "
            f"overhead share = {self.overhead_share():.1%}, "
            f"{self.underwater_nodes} nodes underwater"
        )


def overhead_report(overlay: Overlay, income: np.ndarray,
                    paid_chunks: np.ndarray,
                    model: OverheadModel | None = None) -> OverheadReport:
    """Compute per-node overhead for one simulation outcome.

    Parameters
    ----------
    overlay:
        The overlay the simulation ran on — supplies per-node degree
        (open connections) and, as a proxy for channel state, the
        same degree.
    income:
        Per-node gross income, dense-index order.
    paid_chunks:
        Per-node count of paid (first-hop) chunks; each batch of paid
        chunks implies settlement transactions. The model charges one
        transaction per paid *peer relationship* per run, approximated
        as the node's bucket-0-to-depth degree capped by the paid
        chunk count.
    """
    if model is None:
        model = OverheadModel()
    degrees = np.array(
        [len(overlay.table(a)) for a in overlay.addresses], dtype=np.float64
    )
    if income.shape != degrees.shape or paid_chunks.shape != degrees.shape:
        raise ValueError(
            "income and paid_chunks must align with the overlay's nodes"
        )
    transactions = np.minimum(degrees, paid_chunks.astype(np.float64))
    return OverheadReport(
        income=income.astype(np.float64),
        connection_cost=degrees * model.keepalive_cost_per_connection,
        transaction_cost=transactions * model.transaction_cost,
        channel_cost=degrees * model.channel_state_cost,
    )
