"""SWAP — the Swarm Accounting Protocol (paper §III-B, Fig. 2).

SWAP keeps, for every connected pair of peers, the *relative
bandwidth balance*: how many accounting units of service one peer has
provided to the other beyond what it consumed. Within balance limits
the pair simply trades service for service. When one side's debt hits
the *payment threshold* the creditor must be compensated in BZZ (a
cheque, see :mod:`repro.core.settlement`); if debt instead reaches the
*disconnect threshold* without settlement the creditor stops serving.
Balances also drift back toward zero over time ("time-based
amortization"), which is the free-tier bandwidth the paper describes.

:class:`SwapLedger` is the global bookkeeping object shared by the
reference simulator: it stores all pairwise channels plus per-node
aggregate counters (service provided/consumed, income, expenditure)
that the fairness metrics consume.

Sign convention: a channel between ``a`` and ``b`` (with ``a < b``)
stores ``balance = units a provided to b - units b provided to a``;
positive balance means **b owes a**.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .._validation import require_non_negative, require_positive
from ..errors import AccountingError

__all__ = ["SwapChannel", "SwapThresholds", "SwapLedger"]


@dataclass(frozen=True)
class SwapThresholds:
    """Balance limits of a SWAP channel.

    ``payment`` is the debt at which settlement is due; ``disconnect``
    is the debt at which the creditor refuses further service (Swarm
    sets it above the payment threshold to leave room for in-flight
    messages).
    """

    payment: float = 100.0
    disconnect: float = 150.0

    def __post_init__(self) -> None:
        require_positive(self.payment, "payment threshold")
        require_positive(self.disconnect, "disconnect threshold")
        if self.disconnect < self.payment:
            raise AccountingError(
                "disconnect threshold must be >= payment threshold, got "
                f"{self.disconnect} < {self.payment}"
            )


@dataclass
class SwapChannel:
    """Pairwise accounting state between two peers.

    The channel is symmetric storage for an antisymmetric quantity:
    ``balance_of(a)`` is how much the *other* peer owes ``a``.
    """

    low: int
    high: int
    balance: float = 0.0
    transferred_units: float = 0.0

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise AccountingError(
                f"channel endpoints must satisfy low < high, got "
                f"({self.low}, {self.high})"
            )

    def endpoints(self) -> tuple[int, int]:
        """The channel's two peer addresses, (low, high)."""
        return (self.low, self.high)

    def _check_member(self, peer: int) -> None:
        if peer not in (self.low, self.high):
            raise AccountingError(
                f"peer {peer} is not on channel ({self.low}, {self.high})"
            )

    def balance_of(self, peer: int) -> float:
        """Units the counterparty owes *peer* (negative = peer owes)."""
        self._check_member(peer)
        return self.balance if peer == self.low else -self.balance

    def counterparty(self, peer: int) -> int:
        """The other endpoint of the channel."""
        self._check_member(peer)
        return self.high if peer == self.low else self.low

    def provide(self, provider: int, units: float) -> None:
        """Record that *provider* served *units* to the counterparty."""
        require_positive(units, "units")
        self._check_member(provider)
        self.transferred_units += units
        if provider == self.low:
            self.balance += units
        else:
            self.balance -= units

    def settle(self, creditor: int, amount: float) -> None:
        """Reduce the debt owed to *creditor* by *amount* (a payment).

        Settling more than is owed would flip the channel into credit
        bought in advance; Swarm cheques only cover existing debt, so
        overshoot raises.
        """
        require_positive(amount, "amount")
        owed = self.balance_of(creditor)
        if amount > owed + 1e-9:
            raise AccountingError(
                f"cannot settle {amount} on channel ({self.low}, {self.high}); "
                f"only {owed} is owed to {creditor}"
            )
        if creditor == self.low:
            self.balance -= amount
        else:
            self.balance += amount

    def amortize(self, units: float) -> float:
        """Move the balance toward zero by at most *units*.

        Returns the amount actually forgiven. This is the time-based
        amortization of §III-B: every channel leaks a bounded amount of
        free bandwidth per time unit.
        """
        require_non_negative(units, "units")
        forgiven = min(abs(self.balance), units)
        if self.balance > 0:
            self.balance -= forgiven
        else:
            self.balance += forgiven
        return forgiven


class SwapLedger:
    """All SWAP channels of a network plus per-node aggregates.

    Aggregates maintained per node address:

    * ``service_provided`` / ``service_consumed`` — accounting units of
      bandwidth served/used, regardless of payment;
    * ``income`` / ``expenditure`` — BZZ actually settled;
    * ``chunks_forwarded`` / ``chunks_as_first_hop`` — the two counters
      behind the paper's Table I, Fig. 4 and F1.
    """

    def __init__(self, thresholds: SwapThresholds | None = None) -> None:
        self.thresholds = thresholds if thresholds is not None else SwapThresholds()
        self._channels: dict[tuple[int, int], SwapChannel] = {}
        self.service_provided: defaultdict[int, float] = defaultdict(float)
        self.service_consumed: defaultdict[int, float] = defaultdict(float)
        self.income: defaultdict[int, float] = defaultdict(float)
        self.expenditure: defaultdict[int, float] = defaultdict(float)
        self.chunks_forwarded: defaultdict[int, int] = defaultdict(int)
        self.chunks_as_first_hop: defaultdict[int, int] = defaultdict(int)
        self.total_amortized: float = 0.0

    # ------------------------------------------------------------------
    # Channels

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        if a == b:
            raise AccountingError(f"no SWAP channel from {a} to itself")
        return (a, b) if a < b else (b, a)

    def channel(self, a: int, b: int) -> SwapChannel:
        """The channel between *a* and *b*, created on first use."""
        key = self._key(a, b)
        channel = self._channels.get(key)
        if channel is None:
            channel = SwapChannel(low=key[0], high=key[1])
            self._channels[key] = channel
        return channel

    def channels(self) -> list[SwapChannel]:
        """All channels that have ever carried traffic."""
        return list(self._channels.values())

    def balance(self, peer: int, counterparty: int) -> float:
        """Units *counterparty* owes *peer* (0 for untouched pairs)."""
        key = self._key(peer, counterparty)
        channel = self._channels.get(key)
        if channel is None:
            return 0.0
        return channel.balance_of(peer)

    # ------------------------------------------------------------------
    # Recording traffic

    def record_service(self, provider: int, consumer: int,
                       units: float) -> None:
        """Record bandwidth service on the pair's channel.

        Pure accounting — no payment. Debt accumulates on the channel
        and in the per-node aggregates.
        """
        self.channel(provider, consumer).provide(provider, units)
        self.service_provided[provider] += units
        self.service_consumed[consumer] += units

    def would_disconnect(self, provider: int, consumer: int,
                         units: float) -> bool:
        """Whether serving *units* more would breach the disconnect limit."""
        debt = self.balance(provider, consumer)
        return debt + units > self.thresholds.disconnect

    def settlement_due(self, provider: int, consumer: int) -> float:
        """Debt *consumer* owes above the payment threshold (0 if none)."""
        debt = self.balance(provider, consumer)
        if debt >= self.thresholds.payment:
            return debt
        return 0.0

    def pay(self, payer: int, payee: int, amount: float) -> None:
        """Settle *amount* of the payer's debt with a BZZ transfer.

        Updates both the channel and the income/expenditure
        aggregates. The caller (a payment policy or chequebook) decides
        when and how much. Settling more than the outstanding debt
        raises; use :meth:`pay_direct` for per-request purchases that
        bypass the channel.
        """
        self.channel(payer, payee).settle(payee, amount)
        self.income[payee] += amount
        self.expenditure[payer] += amount

    def pay_direct(self, payer: int, payee: int, amount: float) -> None:
        """Record a direct purchase of service, outside the channel.

        This is the paper's default for originator-generated requests
        to the zero-proximity node: the request is *paid for*, not
        accumulated as SWAP debt, so the channel balance is untouched
        while service and income aggregates are updated.
        """
        require_positive(amount, "amount")
        if payer == payee:
            raise AccountingError(f"no payment from {payer} to itself")
        self.service_provided[payee] += amount
        self.service_consumed[payer] += amount
        self.income[payee] += amount
        self.expenditure[payer] += amount

    def record_forwarded_chunk(self, node: int, *,
                               as_first_hop: bool = False) -> None:
        """Count one chunk transmission by *node* (Table I unit)."""
        self.chunks_forwarded[node] += 1
        if as_first_hop:
            self.chunks_as_first_hop[node] += 1

    # ------------------------------------------------------------------
    # Amortization

    def amortize_all(self, units: float) -> float:
        """Apply time-based amortization of *units* to every channel.

        Returns the total debt forgiven across the network.
        """
        require_non_negative(units, "units")
        forgiven = sum(
            channel.amortize(units) for channel in self._channels.values()
        )
        self.total_amortized += forgiven
        return forgiven

    # ------------------------------------------------------------------
    # Views for the fairness metrics

    def income_vector(self, nodes: list[int]) -> list[float]:
        """Income per node, aligned with *nodes* (F2 input)."""
        return [self.income[node] for node in nodes]

    def forwarded_vector(self, nodes: list[int]) -> list[int]:
        """Forwarded-chunk count per node, aligned with *nodes*."""
        return [self.chunks_forwarded[node] for node in nodes]

    def first_hop_vector(self, nodes: list[int]) -> list[int]:
        """First-hop (paid) chunk count per node, aligned with *nodes*."""
        return [self.chunks_as_first_hop[node] for node in nodes]
