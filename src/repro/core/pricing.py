"""Request pricing strategies (paper §III-B).

Swarm prices every upload/download request "respective to the distance
between the requester and the destination": serving a chunk you are
far from is worth more accounting units than serving one you are close
to, because the far peer has more forwarding work left to fund. The
paper computes the amount paid to the zero-proximity node "by using
the XOR metric to find the distance to the closest node to the
storer".

This module provides that XOR-distance pricing as the default plus two
alternatives used by the pricing ablation (DESIGN.md §3):

* :class:`XorDistancePricing` — paper default; price proportional to
  the XOR distance between the serving peer and the chunk address.
* :class:`ProximityStepPricing` — Swarm bee-client style; price falls
  by one base unit per proximity order between peer and chunk.
* :class:`FlatPricing` — every chunk costs the same.

All strategies are pure functions of (server address, chunk address)
and are safe to share between threads and simulations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .._validation import require_positive
from ..errors import ConfigurationError
from ..kademlia.address import AddressSpace

__all__ = [
    "PricingStrategy",
    "XorDistancePricing",
    "ProximityStepPricing",
    "FlatPricing",
    "make_pricing",
]


class PricingStrategy(ABC):
    """Price of one chunk transfer served by *server* for *chunk*."""

    @abstractmethod
    def price(self, server: int, chunk: int) -> float:
        """Accounting units owed for this transfer. Always > 0."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier used in experiment configs and reports."""


class XorDistancePricing(PricingStrategy):
    """Price proportional to XOR distance between server and chunk.

    The distance is normalized by the address-space size so prices are
    in ``(0, base]`` regardless of bit width, keeping incomes
    comparable across experiments with different spaces. A floor of
    one normalized unit keeps the price strictly positive when the
    server address equals the chunk address.
    """

    def __init__(self, space: AddressSpace, base: float = 1.0) -> None:
        require_positive(base, "base")
        self.space = space
        self.base = base

    def price(self, server: int, chunk: int) -> float:
        distance = self.space.distance(server, chunk)
        return self.base * max(distance, 1) / self.space.size

    @property
    def name(self) -> str:
        return "xor"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XorDistancePricing(bits={self.space.bits}, base={self.base})"


class ProximityStepPricing(PricingStrategy):
    """Price steps down by one base unit per proximity order.

    ``price = base * (bits - po(server, chunk))``, floored at ``base``:
    the scheme used by the Swarm bee client's pricer, where each
    additional shared prefix bit makes the transfer one unit cheaper.
    """

    def __init__(self, space: AddressSpace, base: float = 1.0) -> None:
        require_positive(base, "base")
        self.space = space
        self.base = base

    def price(self, server: int, chunk: int) -> float:
        po = self.space.proximity(server, chunk)
        return self.base * max(self.space.bits - po, 1)

    @property
    def name(self) -> str:
        return "proximity"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProximityStepPricing(bits={self.space.bits}, base={self.base})"


class FlatPricing(PricingStrategy):
    """Every transfer costs the same fixed amount."""

    def __init__(self, amount: float = 1.0) -> None:
        require_positive(amount, "amount")
        self.amount = amount

    def price(self, server: int, chunk: int) -> float:
        return self.amount

    @property
    def name(self) -> str:
        return "flat"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatPricing(amount={self.amount})"


def make_pricing(name: str, space: AddressSpace,
                 base: float = 1.0) -> PricingStrategy:
    """Factory used by experiment configs ('xor', 'proximity', 'flat')."""
    strategies = {
        "xor": lambda: XorDistancePricing(space, base),
        "proximity": lambda: ProximityStepPricing(space, base),
        "flat": lambda: FlatPricing(base),
    }
    try:
        return strategies[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown pricing strategy {name!r}; "
            f"expected one of {sorted(strategies)}"
        ) from None
