"""Cheque-based settlement (paper §III-B step 3b: "send crypto-asset").

When SWAP debt must be settled, Swarm peers do not send on-chain
transactions per chunk; the debtor issues a *cheque* against its
chequebook contract and the creditor may cash it at any time. This
module models that layer:

* :class:`Cheque` — a cumulative-amount promissory note from issuer to
  beneficiary (cumulative amounts make lost/reordered cheques
  harmless: only the latest matters, exactly like Swarm's chequebook).
* :class:`Chequebook` — one node's book: deposit, issued cumulative
  totals per beneficiary, bounce detection.
* :class:`SettlementService` — network-wide registry wiring cheques to
  the :class:`~repro.core.swap.SwapLedger`, tracking transaction
  counts and fees so experiments can report the §V overhead trade-off
  ("the transaction cost for receiving the reward might be more than
  the reward amount").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._validation import require_non_negative, require_positive
from ..errors import InsufficientFundsError, SettlementError
from .swap import SwapLedger

__all__ = ["Cheque", "Chequebook", "SettlementService", "SettlementStats"]


@dataclass(frozen=True)
class Cheque:
    """A cumulative cheque from *issuer* to *beneficiary*.

    ``cumulative_amount`` is the total ever promised to this
    beneficiary, not the increment; ``serial`` increases per issue.
    """

    issuer: int
    beneficiary: int
    cumulative_amount: float
    serial: int

    def __post_init__(self) -> None:
        if self.issuer == self.beneficiary:
            raise SettlementError("a cheque to oneself is meaningless")
        require_positive(self.cumulative_amount, "cumulative_amount")
        if self.serial < 1:
            raise SettlementError(f"serial must be >= 1, got {self.serial}")


class Chequebook:
    """One node's chequebook: deposit plus per-beneficiary tallies.

    The deposit bounds the total value of outstanding (uncashed)
    promises; issuing beyond it raises
    :class:`~repro.errors.InsufficientFundsError`, which is how
    free-rider experiments model peers that cannot pay.
    """

    def __init__(self, owner: int, deposit: float = float("inf")) -> None:
        require_non_negative(
            deposit if deposit != float("inf") else 0.0, "deposit"
        )
        self.owner = owner
        self.deposit = deposit
        self._promised: dict[int, float] = {}
        self._cashed: dict[int, float] = {}
        self._serials: dict[int, int] = {}

    @property
    def total_promised(self) -> float:
        """Sum of cumulative promises across beneficiaries."""
        return sum(self._promised.values())

    @property
    def total_cashed(self) -> float:
        """Sum of amounts beneficiaries have already cashed."""
        return sum(self._cashed.values())

    @property
    def outstanding(self) -> float:
        """Promised but not yet cashed."""
        return self.total_promised - self.total_cashed

    def promised_to(self, beneficiary: int) -> float:
        """Cumulative amount promised to one beneficiary."""
        return self._promised.get(beneficiary, 0.0)

    def issue(self, beneficiary: int, amount: float) -> Cheque:
        """Issue a cheque increasing the promise by *amount*.

        Raises :class:`InsufficientFundsError` when the new total of
        promises would exceed the deposit.
        """
        require_positive(amount, "amount")
        if beneficiary == self.owner:
            raise SettlementError("cannot issue a cheque to oneself")
        new_total = self.total_promised + amount
        if new_total > self.deposit:
            raise InsufficientFundsError(
                f"node {self.owner} cannot promise {amount}: deposit "
                f"{self.deposit} < outstanding promises {new_total}"
            )
        cumulative = self.promised_to(beneficiary) + amount
        serial = self._serials.get(beneficiary, 0) + 1
        self._promised[beneficiary] = cumulative
        self._serials[beneficiary] = serial
        return Cheque(
            issuer=self.owner,
            beneficiary=beneficiary,
            cumulative_amount=cumulative,
            serial=serial,
        )

    def cash(self, cheque: Cheque) -> float:
        """Cash *cheque*; return the increment actually paid out.

        Cashing an outdated cheque (lower cumulative amount than
        already cashed) pays nothing, mirroring the chequebook
        contract's last-cheque-wins rule.
        """
        if cheque.issuer != self.owner:
            raise SettlementError(
                f"cheque issued by {cheque.issuer} cashed against "
                f"chequebook of {self.owner}"
            )
        if cheque.cumulative_amount > self.promised_to(cheque.beneficiary):
            raise SettlementError(
                "cheque exceeds the issuer's recorded promise: "
                f"{cheque.cumulative_amount} > "
                f"{self.promised_to(cheque.beneficiary)}"
            )
        already = self._cashed.get(cheque.beneficiary, 0.0)
        increment = max(0.0, cheque.cumulative_amount - already)
        if increment > 0:
            self._cashed[cheque.beneficiary] = cheque.cumulative_amount
        return increment


@dataclass
class SettlementStats:
    """Network-wide settlement overhead counters (paper §V)."""

    cheques_issued: int = 0
    cheques_cashed: int = 0
    value_settled: float = 0.0
    fees_paid: float = 0.0

    def mean_cheque_value(self) -> float:
        """Average settled value per cashed cheque."""
        if self.cheques_cashed == 0:
            return 0.0
        return self.value_settled / self.cheques_cashed


class SettlementService:
    """Wires chequebooks to a :class:`SwapLedger`.

    ``transaction_fee`` models the on-chain cost of cashing a cheque;
    the §V discussion notes small rewards can be eaten by this fee, so
    experiments can read ``stats.fees_paid`` against node income.
    """

    def __init__(self, ledger: SwapLedger, *,
                 transaction_fee: float = 0.0,
                 default_deposit: float = float("inf")) -> None:
        require_non_negative(transaction_fee, "transaction_fee")
        self.ledger = ledger
        self.transaction_fee = transaction_fee
        self.default_deposit = default_deposit
        self._books: dict[int, Chequebook] = {}
        self.stats = SettlementStats()

    def chequebook(self, owner: int) -> Chequebook:
        """The owner's chequebook, created with the default deposit."""
        book = self._books.get(owner)
        if book is None:
            book = Chequebook(owner, self.default_deposit)
            self._books[owner] = book
        return book

    def set_deposit(self, owner: int, deposit: float) -> None:
        """Fund (or limit) a node's chequebook before the run."""
        self.chequebook(owner).deposit = deposit

    def settle(self, payer: int, payee: int, amount: float) -> Cheque:
        """Issue and immediately cash a cheque settling SWAP debt.

        The combined operation the reference simulator uses: the payer
        issues, the payee cashes, the ledger records the transfer, the
        payee bears the transaction fee (tracked, not deducted from
        ledger income, so fairness metrics stay on gross income as in
        the paper).
        """
        return self._transfer(payer, payee, amount, self.ledger.pay)

    def settle_direct(self, payer: int, payee: int, amount: float) -> Cheque:
        """Issue and cash a cheque for a per-request purchase.

        Unlike :meth:`settle` this does not reduce channel debt — it
        pays for service that was never added to the channel (the
        paper's paid zero-proximity requests).
        """
        return self._transfer(payer, payee, amount, self.ledger.pay_direct)

    def _transfer(self, payer: int, payee: int, amount: float,
                  ledger_op) -> Cheque:
        cheque = self.chequebook(payer).issue(payee, amount)
        self.stats.cheques_issued += 1
        increment = self.chequebook(payer).cash(cheque)
        if increment > 0:
            ledger_op(payer, payee, increment)
            self.stats.cheques_cashed += 1
            self.stats.value_settled += increment
            self.stats.fees_paid += self.transaction_fee
        return cheque
