"""Fairness metrics: Gini coefficient, Lorenz curves, and the paper's
F1/F2 properties (paper §II-A).

The paper proposes two fairness properties for token-incentivized p2p
networks and measures both with the Gini coefficient (Eq. 1):

* **F1 — proportional reward.** Rewards should be proportional to the
  resources a peer actually contributed. Measured as the Gini
  coefficient of the per-peer ratio ``resources_contributed /
  reward_received``, restricted to peers that received any reward.
  A Gini of 0 means every rewarded peer earns the same per unit of
  contributed bandwidth.
* **F2 — equal opportunity.** Peers willing to provide the same
  resources should be able to earn the same reward. Measured as the
  Gini coefficient of per-peer income over *all* peers. A Gini of 0
  means every peer earned the same; 1 means a single peer earned
  everything.

The Gini implementation is exact (it matches the paper's Eq. 1 mean
absolute-difference form) but runs in O(n log n) via the sorted-values
identity instead of the O(n^2) double sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "gini",
    "gini_pairwise",
    "lorenz_curve",
    "LorenzCurve",
    "FairnessReport",
    "f1_values",
    "f2_values",
    "evaluate_fairness",
]


def _as_valid_array(values: Sequence[float] | np.ndarray,
                    name: str) -> np.ndarray:
    """Convert to a float array and validate Gini preconditions."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional")
    if array.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    if np.any(array < 0):
        raise ConfigurationError(
            f"{name} must be non-negative for a Gini coefficient"
        )
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} must be finite")
    return array


def gini(values: Sequence[float] | np.ndarray) -> float:
    """Gini coefficient of non-negative *values* (paper Eq. 1).

    Computed with the sorted identity
    ``G = (2 * sum(i * x_i) / (n * sum(x))) - (n + 1) / n``
    (1-based ranks over ascending ``x``), which equals the paper's
    normalized mean absolute difference. Returns 0.0 for an all-zero
    population (nobody earns anything — trivially equal).
    """
    array = _as_valid_array(values, "values")
    total = array.sum()
    if total == 0:
        return 0.0
    ordered = np.sort(array)
    n = ordered.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    value = 2.0 * np.dot(ranks, ordered) / (n * total) - (n + 1) / n
    # Clamp float cancellation noise at the boundaries; the exact
    # coefficient is always in [0, 1].
    return float(min(max(value, 0.0), 1.0))


def gini_pairwise(values: Sequence[float] | np.ndarray) -> float:
    """Direct O(n^2) evaluation of the paper's Eq. 1.

    Kept as an executable specification: tests assert that
    :func:`gini` equals this on random inputs. Do not use on large
    populations.
    """
    array = _as_valid_array(values, "values")
    total = array.sum()
    if total == 0:
        return 0.0
    differences = np.abs(array[:, None] - array[None, :]).sum()
    return float(differences / (2.0 * array.size * total))


@dataclass(frozen=True)
class LorenzCurve:
    """A Lorenz curve: cumulative population share vs cumulative value share.

    ``population[i]`` is the fraction of peers (poorest first) holding
    ``cumulative[i]`` of the total value. Both arrays start at 0.0 and
    end at 1.0. The curve for perfect equality is the diagonal.
    """

    population: np.ndarray
    cumulative: np.ndarray

    def __post_init__(self) -> None:
        if self.population.shape != self.cumulative.shape:
            raise ConfigurationError("Lorenz curve arrays must align")

    @property
    def gini(self) -> float:
        """Gini coefficient implied by the curve (trapezoid rule)."""
        area_under = float(np.trapezoid(self.cumulative, self.population))
        return 1.0 - 2.0 * area_under

    def share_of_poorest(self, fraction: float) -> float:
        """Value share held by the poorest *fraction* of the population."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1], got {fraction}"
            )
        return float(np.interp(fraction, self.population, self.cumulative))

    def points(self) -> list[tuple[float, float]]:
        """The curve as a list of (population, cumulative) pairs."""
        return list(zip(self.population.tolist(), self.cumulative.tolist()))


def lorenz_curve(values: Sequence[float] | np.ndarray) -> LorenzCurve:
    """Lorenz curve of non-negative *values* (paper Figs. 5 and 6).

    For an all-zero population, returns the equality diagonal.
    """
    array = _as_valid_array(values, "values")
    ordered = np.sort(array)
    total = ordered.sum()
    n = ordered.size
    population = np.linspace(0.0, 1.0, n + 1)
    if total == 0:
        return LorenzCurve(population=population, cumulative=population.copy())
    cumulative = np.concatenate(([0.0], np.cumsum(ordered) / total))
    return LorenzCurve(population=population, cumulative=cumulative)


def f2_values(incomes: Sequence[float] | np.ndarray) -> np.ndarray:
    """Per-peer values entering the F2 (equal opportunity) Gini.

    F2 is computed over the raw income of *every* peer, including
    those who earned nothing (paper §II-A: "a coefficient of 1 means
    that only one node receives rewards").
    """
    return _as_valid_array(incomes, "incomes")


def f1_values(contributions: Sequence[float] | np.ndarray,
              rewards: Sequence[float] | np.ndarray) -> np.ndarray:
    """Per-peer values entering the F1 (proportional reward) Gini.

    Following the paper §II-A: divide each peer's contributed
    resources by its received reward, *omitting peers that did not
    receive any reward*. A peer with rewards but zero recorded
    contribution contributes a ratio of 0 (it was overpaid relative to
    work, which still counts as inequality of the ratio).
    """
    contributed = np.asarray(contributions, dtype=np.float64)
    rewarded = np.asarray(rewards, dtype=np.float64)
    if contributed.shape != rewarded.shape:
        raise ConfigurationError(
            "contributions and rewards must have the same shape, got "
            f"{contributed.shape} vs {rewarded.shape}"
        )
    if np.any(contributed < 0) or np.any(rewarded < 0):
        raise ConfigurationError("contributions and rewards must be >= 0")
    paid = rewarded > 0
    if not np.any(paid):
        raise ConfigurationError(
            "F1 requires at least one peer with a positive reward"
        )
    return contributed[paid] / rewarded[paid]


@dataclass(frozen=True)
class FairnessReport:
    """F1/F2 evaluation of one simulation outcome."""

    f1_gini: float
    f2_gini: float
    f1_curve: LorenzCurve
    f2_curve: LorenzCurve
    rewarded_peers: int
    total_peers: int

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"F1 (proportional reward) Gini = {self.f1_gini:.4f}; "
            f"F2 (equal opportunity) Gini = {self.f2_gini:.4f}; "
            f"{self.rewarded_peers}/{self.total_peers} peers were rewarded"
        )


def evaluate_fairness(contributions: Sequence[float] | np.ndarray,
                      rewards: Sequence[float] | np.ndarray) -> FairnessReport:
    """Evaluate both fairness properties for one outcome.

    Parameters
    ----------
    contributions:
        Per-peer resource contribution (e.g. chunks forwarded).
    rewards:
        Per-peer reward received (e.g. accounting units of income).
    """
    f1_vals = f1_values(contributions, rewards)
    f2_vals = f2_values(rewards)
    return FairnessReport(
        f1_gini=gini(f1_vals),
        f2_gini=gini(f2_vals),
        f1_curve=lorenz_curve(f1_vals),
        f2_curve=lorenz_curve(f2_vals),
        rewarded_peers=int(np.count_nonzero(np.asarray(rewards) > 0)),
        total_peers=int(np.asarray(rewards).size),
    )
