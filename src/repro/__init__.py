"""repro — Fair Incentivization of Bandwidth Sharing in Decentralized
Storage Networks (ICDCS 2022 reproduction).

A production-quality reproduction of Lakhani et al.'s study of
bandwidth incentives in the Swarm storage network. The library
provides:

* :mod:`repro.kademlia` — forwarding-Kademlia overlay substrate;
* :mod:`repro.core` — SWAP accounting, pricing, settlement, fairness
  metrics (Gini, Lorenz, the paper's F1/F2 properties);
* :mod:`repro.swarm` — reference Swarm network model (chunks, storage,
  retrieval, caching);
* :mod:`repro.engine` — a cadCAD-style simulation engine plus a
  discrete-event scheduler;
* :mod:`repro.backends` — interchangeable simulation backends behind
  one protocol (batched numpy, reference network, baselines) with a
  name registry;
* :mod:`repro.workloads` — download workload generation;
* :mod:`repro.baselines` — BitTorrent tit-for-tat, Filecoin-style and
  flat-rate comparison mechanisms;
* :mod:`repro.analysis` — Lorenz/histogram/report rendering;
* :mod:`repro.experiments` — one runner per paper table/figure and a
  vectorized simulator for paper-scale runs;
* :mod:`repro.sweeps` — parameter-grid x seed-replica sweep engine
  (serial or multiprocess, with 95% CIs and a resumable JSON store).

Quickstart::

    from repro import quick_simulation

    result = quick_simulation(bucket_size=4, originator_share=0.2,
                              n_files=200, seed=7)
    print(result.summary())
"""

from .errors import (
    AccountingError,
    AddressError,
    ConfigurationError,
    ExperimentError,
    InsufficientFundsError,
    OverlayError,
    ReproError,
    RoutingError,
    SettlementError,
    SimulationError,
    WorkloadError,
)

__version__ = "1.2.0"

__all__ = [
    "AccountingError",
    "AddressError",
    "ConfigurationError",
    "ExperimentError",
    "InsufficientFundsError",
    "OverlayError",
    "ReproError",
    "RoutingError",
    "SettlementError",
    "SimulationError",
    "WorkloadError",
    "quick_simulation",
    "__version__",
]


def quick_simulation(bucket_size: int = 4, originator_share: float = 1.0,
                     n_files: int = 100, n_nodes: int = 100,
                     seed: int = 42):
    """Run a small end-to-end Swarm bandwidth-incentive simulation.

    Convenience wrapper over :mod:`repro.backends` used by the
    README quickstart; returns a
    :class:`~repro.backends.result.SimulationResult`.
    """
    # Imported lazily so `import repro` stays cheap.
    from .backends import FastSimulation, FastSimulationConfig

    config = FastSimulationConfig(
        n_nodes=n_nodes,
        bucket_size=bucket_size,
        originator_share=originator_share,
        n_files=n_files,
        overlay_seed=seed,
        workload_seed=seed + 1,
    )
    return FastSimulation(config).run()
