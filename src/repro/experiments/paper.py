"""Runners for every table and figure in the paper's evaluation (§IV).

The paper's experiment grid is 2x2: bucket size k in {4, 20} crossed
with originator share in {20 %, 100 %}, at 10 000 file downloads over
a 1000-node overlay. Each runner below reproduces one artifact:

* :func:`run_table1` — Table I, average forwarded chunks per cell;
* :func:`run_fig4`   — Fig. 4, per-node forwarded-chunk distributions;
* :func:`run_fig5`   — Fig. 5, F2 Lorenz curves and Gini (income);
* :func:`run_fig6`   — Fig. 6, F1 Lorenz curves and Gini
  (total forwarded vs forwarded as paid first hop);
* :func:`run_headline` — §VI's summary numbers: the relative Gini
  reduction going from k = 4 to k = 20.

All runners share one :func:`run_grid` so a combined invocation
simulates each cell exactly once. ``n_files``/``n_nodes`` scale the
experiment down for benchmarks; paper scale is the default.
"""

from __future__ import annotations

from ..analysis.histogram import area_ratio, histogram
from ..analysis.plots import ascii_histogram, ascii_lorenz
from ..analysis.reports import Table
from ..backends import run_simulation
from ..backends.fast import FastSimulationConfig, SimulationResult
from .report import ExperimentReport

__all__ = [
    "GRID_BUCKET_SIZES",
    "GRID_ORIGINATOR_SHARES",
    "run_grid",
    "run_table1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_headline",
]

#: The paper's swept bucket sizes (Swarm default vs Kademlia default).
GRID_BUCKET_SIZES = (4, 20)
#: The paper's originator shares (skewed vs uniform workload).
GRID_ORIGINATOR_SHARES = (0.2, 1.0)

_GRID_CACHE: dict[tuple, SimulationResult] = {}


def _share_label(share: float) -> str:
    return f"{share:.0%} originators"


def run_grid(n_files: int = 10_000, n_nodes: int = 1000,
             *, overlay_seed: int = 42, workload_seed: int = 7,
             bits: int = 16,
             backend: str = "fast") -> dict[tuple[int, float], SimulationResult]:
    """Simulate the 2x2 grid; cells are cached per process."""
    results: dict[tuple[int, float], SimulationResult] = {}
    for bucket_size in GRID_BUCKET_SIZES:
        for share in GRID_ORIGINATOR_SHARES:
            key = (bucket_size, share, n_files, n_nodes, overlay_seed,
                   workload_seed, bits, backend)
            cached = _GRID_CACHE.get(key)
            if cached is None:
                config = FastSimulationConfig(
                    n_nodes=n_nodes,
                    bits=bits,
                    bucket_size=bucket_size,
                    originator_share=share,
                    n_files=n_files,
                    overlay_seed=overlay_seed,
                    workload_seed=workload_seed,
                )
                cached = run_simulation(config, backend=backend)
                _GRID_CACHE[key] = cached
            results[(bucket_size, share)] = cached
    return results


def run_table1(n_files: int = 10_000, n_nodes: int = 1000,
               **grid_kwargs) -> ExperimentReport:
    """Table I: average forwarded chunks per configuration."""
    grid = run_grid(n_files, n_nodes, **grid_kwargs)
    report = ExperimentReport(
        name="table1",
        title=f"Table I - average forwarded chunks ({n_files} downloads)",
    )
    table = Table(
        title="Average forwarded chunks",
        headers=["configuration", *(_share_label(s) for s in
                 GRID_ORIGINATOR_SHARES)],
    )
    for bucket_size in GRID_BUCKET_SIZES:
        table.add_row(
            f"k={bucket_size}",
            *(round(grid[(bucket_size, share)].average_forwarded_chunks())
              for share in GRID_ORIGINATOR_SHARES),
        )
    report.add_table(table)
    for share in GRID_ORIGINATOR_SHARES:
        small_k = grid[(GRID_BUCKET_SIZES[0], share)]
        large_k = grid[(GRID_BUCKET_SIZES[-1], share)]
        report.add_note(
            f"{_share_label(share)}: k={GRID_BUCKET_SIZES[0]} forwards "
            f"{small_k.average_forwarded_chunks() / large_k.average_forwarded_chunks():.2f}x "
            f"the chunks of k={GRID_BUCKET_SIZES[-1]} "
            "(paper: larger k uses less bandwidth)"
        )
    report.data["grid"] = {
        f"k={k},share={s}": grid[(k, s)].average_forwarded_chunks()
        for k in GRID_BUCKET_SIZES for s in GRID_ORIGINATOR_SHARES
    }
    report.data["results"] = grid
    return report


def run_fig4(n_files: int = 10_000, n_nodes: int = 1000, *, bins: int = 15,
             **grid_kwargs) -> ExperimentReport:
    """Fig. 4: distribution of per-node forwarded chunks."""
    grid = run_grid(n_files, n_nodes, **grid_kwargs)
    report = ExperimentReport(
        name="fig4",
        title=f"Figure 4 - forwarded-chunk distribution ({n_files} downloads)",
    )
    for share in GRID_ORIGINATOR_SHARES:
        # Shared bin range per panel so k=4 and k=20 are comparable.
        peak = max(
            float(grid[(k, share)].forwarded.max())
            for k in GRID_BUCKET_SIZES
        )
        for bucket_size in GRID_BUCKET_SIZES:
            result = grid[(bucket_size, share)]
            hist = histogram(
                result.forwarded, bins=bins, value_range=(0.0, peak)
            )
            report.add_figure(
                f"{_share_label(share)}, k={bucket_size}",
                ascii_histogram(hist, label="forwarded chunks per node"),
            )
        ratio = area_ratio(
            grid[(GRID_BUCKET_SIZES[0], share)].forwarded,
            grid[(GRID_BUCKET_SIZES[-1], share)].forwarded,
        )
        report.add_note(
            f"{_share_label(share)}: area under k={GRID_BUCKET_SIZES[0]} is "
            f"{ratio:.2f}x the area under k={GRID_BUCKET_SIZES[-1]} "
            "(paper reports 1.6x at 20% and 1.25x at 100%)"
        )
        report.data[f"area_ratio_{share}"] = ratio
    report.data["results"] = grid
    return report


def run_fig5(n_files: int = 10_000, n_nodes: int = 1000,
             **grid_kwargs) -> ExperimentReport:
    """Fig. 5: F2 Lorenz curves and Gini of per-node income."""
    grid = run_grid(n_files, n_nodes, **grid_kwargs)
    report = ExperimentReport(
        name="fig5",
        title=f"Figure 5 - F2 (income) Lorenz curves ({n_files} downloads)",
    )
    curves = {
        f"k={k}, {_share_label(s)}": grid[(k, s)].f2_curve()
        for k in GRID_BUCKET_SIZES for s in GRID_ORIGINATOR_SHARES
    }
    report.add_figure("F2 Lorenz curves", ascii_lorenz(curves))
    table = Table(
        title="F2 Gini coefficient (income per node)",
        headers=["configuration", *(_share_label(s) for s in
                 GRID_ORIGINATOR_SHARES)],
    )
    for bucket_size in GRID_BUCKET_SIZES:
        table.add_row(
            f"k={bucket_size}",
            *(grid[(bucket_size, share)].f2_gini()
              for share in GRID_ORIGINATOR_SHARES),
        )
    report.add_table(table)
    for share in GRID_ORIGINATOR_SHARES:
        g4 = grid[(4, share)].f2_gini()
        g20 = grid[(20, share)].f2_gini()
        report.add_note(
            f"{_share_label(share)}: F2 Gini k=20 is "
            f"{(g4 - g20) / g4:+.1%} vs k=4 (negative = fairer; paper "
            "reports a ~7% decrease)"
        )
    report.data["gini"] = {
        f"k={k},share={s}": grid[(k, s)].f2_gini()
        for k in GRID_BUCKET_SIZES for s in GRID_ORIGINATOR_SHARES
    }
    report.data["results"] = grid
    return report


def run_fig6(n_files: int = 10_000, n_nodes: int = 1000,
             **grid_kwargs) -> ExperimentReport:
    """Fig. 6: F1 Lorenz curves (forwarded vs paid-first-hop ratio)."""
    grid = run_grid(n_files, n_nodes, **grid_kwargs)
    report = ExperimentReport(
        name="fig6",
        title=(
            f"Figure 6 - F1 (forwarded vs first-hop) Lorenz curves "
            f"({n_files} downloads)"
        ),
    )
    curves = {
        f"k={k}, {_share_label(s)}": grid[(k, s)].f1_curve()
        for k in GRID_BUCKET_SIZES for s in GRID_ORIGINATOR_SHARES
    }
    report.add_figure("F1 Lorenz curves", ascii_lorenz(curves))
    table = Table(
        title="F1 Gini coefficient (forwarded / paid first hop, paid nodes)",
        headers=["configuration", *(_share_label(s) for s in
                 GRID_ORIGINATOR_SHARES)],
    )
    for bucket_size in GRID_BUCKET_SIZES:
        table.add_row(
            f"k={bucket_size}",
            *(grid[(bucket_size, share)].f1_gini()
              for share in GRID_ORIGINATOR_SHARES),
        )
    report.add_table(table)
    report.add_note(
        "paper: k=20 with 100% originators is close to full equity; "
        "k=4 with 20% originators rewards bandwidth very unevenly"
    )
    report.data["gini"] = {
        f"k={k},share={s}": grid[(k, s)].f1_gini()
        for k in GRID_BUCKET_SIZES for s in GRID_ORIGINATOR_SHARES
    }
    report.data["results"] = grid
    return report


def run_headline(n_files: int = 10_000, n_nodes: int = 1000,
                 **grid_kwargs) -> ExperimentReport:
    """§VI's summary: relative Gini reduction from k=4 to k=20.

    The paper states the reduction once for the whole study ("a 7%
    decrease in the Gini coefficient for F2 and a 6% reduction ...
    for F1"); we report it per originator share plus the average.
    """
    grid = run_grid(n_files, n_nodes, **grid_kwargs)
    report = ExperimentReport(
        name="headline",
        title=f"Headline Gini reductions, k=4 -> k=20 ({n_files} downloads)",
    )
    table = Table(
        title="Relative Gini reduction (positive = k=20 fairer)",
        headers=["property", *(_share_label(s) for s in
                 GRID_ORIGINATOR_SHARES), "mean"],
    )
    reductions: dict[str, list[float]] = {"F2": [], "F1": []}
    for prop, getter in (
        ("F2", lambda r: r.f2_gini()),
        ("F1", lambda r: r.f1_gini()),
    ):
        per_share = []
        for share in GRID_ORIGINATOR_SHARES:
            g4 = getter(grid[(4, share)])
            g20 = getter(grid[(20, share)])
            per_share.append((g4 - g20) / g4)
        reductions[prop] = per_share
        table.add_row(
            prop,
            *(f"{value:.1%}" for value in per_share),
            f"{sum(per_share) / len(per_share):.1%}",
        )
    report.add_table(table)
    report.add_note("paper reports: F2 -7%, F1 -6% (k=4 -> k=20)")
    report.data["reductions"] = reductions
    report.data["results"] = grid
    return report
