"""Experiment runners: one per paper table/figure, plus ablations.

The vectorized simulation engine lives in :mod:`repro.backends`;
:mod:`repro.experiments.paper` reproduces Table I and Figures 4-6;
:mod:`repro.experiments.ablations` covers the §V future-work
extensions; :mod:`repro.experiments.scenarios` runs the composed
network dynamics; :mod:`repro.experiments.registry` indexes
everything for the CLI and benchmarks.
"""

from .ablations import (
    run_baselines,
    run_bucket0,
    run_caching,
    run_freeriders,
    run_k_sweep,
    run_popularity,
    run_pricing,
)
from .extensions import (
    run_churn,
    run_latency,
    run_overhead,
    run_privacy,
    run_sensitivity,
)
from ..backends.fast import (
    FastSimulation,
    FastSimulationConfig,
    NextHopTable,
    SimulationResult,
    cached_next_hop_table,
    cached_overlay,
    clear_caches,
    paper_result,
)
from .paper import (
    GRID_BUCKET_SIZES,
    GRID_ORIGINATOR_SHARES,
    run_fig4,
    run_fig5,
    run_fig6,
    run_grid,
    run_headline,
    run_table1,
)
from .cadcad import build_paper_model, run_paper_model
from .registry import (
    REGISTRY,
    ExperimentSpec,
    get_experiment,
    list_experiments,
)
from .report import ExperimentReport
from .storage import run_storage

__all__ = [
    "ExperimentReport",
    "ExperimentSpec",
    "FastSimulation",
    "FastSimulationConfig",
    "GRID_BUCKET_SIZES",
    "GRID_ORIGINATOR_SHARES",
    "NextHopTable",
    "REGISTRY",
    "SimulationResult",
    "build_paper_model",
    "cached_next_hop_table",
    "cached_overlay",
    "clear_caches",
    "get_experiment",
    "list_experiments",
    "paper_result",
    "run_baselines",
    "run_bucket0",
    "run_caching",
    "run_churn",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_freeriders",
    "run_grid",
    "run_headline",
    "run_k_sweep",
    "run_latency",
    "run_overhead",
    "run_paper_model",
    "run_popularity",
    "run_pricing",
    "run_privacy",
    "run_sensitivity",
    "run_storage",
    "run_table1",
]
