"""Replicated paper experiments: thin sweep definitions with error bars.

The paper's Table I / Fig. 5 numbers are single-seed point estimates.
These runners re-express them as :class:`~repro.sweeps.SweepSpec`
definitions over the same grids, executed by
:func:`~repro.sweeps.run_sweep` across workload-seed replicas, so
every reported quantity carries a mean, sample std, and 95%
confidence interval. Each definition stays declarative — a base
config, a grid, a seed count — and all mechanics (seed derivation,
parallel execution, aggregation) live in :mod:`repro.sweeps`.

* :func:`run_table1_sweep` — Table I's 2x2 grid, forwarded chunks
  with CIs;
* :func:`run_fig5_sweep` — Fig. 5's F2 income Gini with CIs, plus the
  replicated headline k=4 -> k=20 reduction;
* :func:`run_k_sweep_ci` — the bucket-size ablation
  (:func:`~repro.experiments.ablations.run_k_sweep`) with error bars.
"""

from __future__ import annotations

from ..analysis.reports import Table
from ..backends.config import FastSimulationConfig
from ..sweeps import SweepResult, SweepSpec, run_sweep
from .paper import GRID_BUCKET_SIZES, GRID_ORIGINATOR_SHARES
from .report import ExperimentReport

__all__ = [
    "DEFAULT_SEEDS",
    "sweep_report",
    "run_table1_sweep",
    "run_fig5_sweep",
    "run_k_sweep_ci",
]

#: Replicas per cell for the registry-level replicated experiments.
DEFAULT_SEEDS = 5

#: Metrics shown, in order, by the generic sweep report table.
REPORT_METRICS = (
    ("mean_forwarded", "forwarded/node"),
    ("f2_gini", "F2 Gini"),
    ("f1_gini", "F1 Gini"),
    ("mean_hops", "mean hops"),
)


def sweep_report(sweep: SweepResult, *, name: str,
                 title: str) -> ExperimentReport:
    """Generic report for any sweep: one row per cell, mean [95% CI].

    Shared by the ``repro-swarm sweep`` CLI and the replicated
    experiment runners below; ``report.data`` keeps the summaries and
    the full :class:`~repro.sweeps.SweepResult` for tests and
    downstream analysis.
    """
    report = ExperimentReport(name=name, title=title)
    table = Table(
        title=(
            f"per-cell mean [95% CI] over {sweep.spec.seeds} workload "
            f"seed(s)"
        ),
        headers=["backend", "cell", "n",
                 *(label for _, label in REPORT_METRICS)],
    )
    for cell in sweep.summaries:
        table.add_row(
            cell.backend, cell.label, cell.replicas,
            *(str(cell.metrics[key]) for key, _ in REPORT_METRICS),
        )
    report.add_table(table)
    if sweep.executed:
        report.add_note(
            f"executed {sweep.executed} point(s) in {sweep.elapsed:.1f}s "
            f"({sweep.points_per_second:.1f} points/s)"
            + (f"; resumed {sweep.resumed} from store" if sweep.resumed
               else "")
        )
    elif sweep.resumed:
        report.add_note(
            f"all {sweep.resumed} point(s) resumed from store"
        )
    report.data["summaries"] = sweep.summaries
    report.data["sweep"] = sweep
    return report


_PAPER_SWEEP_CACHE: dict[SweepSpec, SweepResult] = {}


def _run_paper_grid(n_files: int, n_nodes: int, seeds: int,
                    backend: str, jobs: int) -> SweepResult:
    """The paper's 2x2 grid swept over seed replicas (cached).

    ``table1_sweep`` and ``fig5_sweep`` read different metrics off the
    *same* sweep; caching per spec (the :mod:`repro.experiments.paper`
    ``run_grid`` idiom) means a combined ``run all`` simulates each
    point once.
    """
    spec = SweepSpec(
        base=FastSimulationConfig(n_nodes=n_nodes, n_files=n_files),
        grid={
            "bucket_size": GRID_BUCKET_SIZES,
            "originator_share": GRID_ORIGINATOR_SHARES,
        },
        backends=(backend,),
        seeds=seeds,
    )
    cached = _PAPER_SWEEP_CACHE.get(spec)
    if cached is None:
        cached = run_sweep(spec, jobs=jobs)
        _PAPER_SWEEP_CACHE[spec] = cached
    return cached


def run_table1_sweep(n_files: int = 2000, n_nodes: int = 1000, *,
                     seeds: int = DEFAULT_SEEDS, backend: str = "fast",
                     jobs: int = 1) -> ExperimentReport:
    """Table I with error bars: forwarded chunks across seed replicas."""
    sweep = _run_paper_grid(n_files, n_nodes, seeds, backend, jobs)
    report = sweep_report(
        sweep, name="table1_sweep",
        title=(
            f"Table I replicated over {seeds} seeds "
            f"({n_files} downloads/seed)"
        ),
    )
    forwarded = {
        (dict(cell.overrides)["bucket_size"],
         dict(cell.overrides)["originator_share"]):
        cell.metrics["mean_forwarded"]
        for cell in sweep.summaries
    }
    for share in GRID_ORIGINATOR_SHARES:
        small = forwarded[(GRID_BUCKET_SIZES[0], share)]
        large = forwarded[(GRID_BUCKET_SIZES[-1], share)]
        report.add_note(
            f"{share:.0%} originators: k={GRID_BUCKET_SIZES[0]} forwards "
            f"{small.mean / large.mean:.2f}x the chunks of "
            f"k={GRID_BUCKET_SIZES[-1]} (mean over {seeds} seeds; paper: "
            "larger k uses less bandwidth)"
        )
    report.data["forwarded"] = forwarded
    return report


def run_fig5_sweep(n_files: int = 2000, n_nodes: int = 1000, *,
                   seeds: int = DEFAULT_SEEDS, backend: str = "fast",
                   jobs: int = 1) -> ExperimentReport:
    """Fig. 5's F2 Gini with error bars, plus the replicated headline."""
    sweep = _run_paper_grid(n_files, n_nodes, seeds, backend, jobs)
    report = sweep_report(
        sweep, name="fig5_sweep",
        title=(
            f"Figure 5 F2 Gini replicated over {seeds} seeds "
            f"({n_files} downloads/seed)"
        ),
    )
    gini = {
        (dict(cell.overrides)["bucket_size"],
         dict(cell.overrides)["originator_share"]):
        cell.metrics["f2_gini"]
        for cell in sweep.summaries
    }
    for share in GRID_ORIGINATOR_SHARES:
        g4 = gini[(GRID_BUCKET_SIZES[0], share)]
        g20 = gini[(GRID_BUCKET_SIZES[-1], share)]
        report.add_note(
            f"{share:.0%} originators: mean F2 Gini reduction k=4 -> "
            f"k={GRID_BUCKET_SIZES[-1]} is "
            f"{(g4.mean - g20.mean) / g4.mean:+.1%} "
            f"(paper reports ~7% from one seed)"
        )
    report.data["gini"] = gini
    return report


def run_k_sweep_ci(n_files: int = 1000, n_nodes: int = 1000, *,
                   bucket_sizes: tuple[int, ...] = (2, 4, 8, 16, 20, 32),
                   originator_share: float = 0.2,
                   seeds: int = DEFAULT_SEEDS, backend: str = "fast",
                   jobs: int = 1) -> ExperimentReport:
    """The bucket-size ablation with per-k confidence intervals."""
    base = FastSimulationConfig(
        n_nodes=n_nodes, n_files=n_files,
        originator_share=originator_share,
    )
    sweep = run_sweep(SweepSpec(
        base=base,
        grid={"bucket_size": bucket_sizes},
        backends=(backend,),
        seeds=seeds,
    ), jobs=jobs)
    report = sweep_report(
        sweep, name="k_sweep_ci",
        title=(
            f"Bucket-size sweep with error bars ({seeds} seeds, "
            f"{n_files} downloads/seed, {originator_share:.0%} "
            f"originators)"
        ),
    )
    report.add_note(
        "single-seed k_sweep rankings that fall inside these intervals "
        "are not seed-robust"
    )
    return report
