"""Storage-incentive experiment (paper §V's "missing half").

"While creators of these networks claim that the storage incentive
makes up the majority of the profit for peers contributing to the
network, having not just the bandwidth incentives simulated but also
the storage incentives appears needed to complete the simulation."

:func:`run_storage` simulates the complete storage-incentive loop —
postage batches, per-chunk stamps, rent collection, and the
stake-weighted redistribution lottery — and evaluates the same F2
fairness property the paper applies to bandwidth rewards, now on
storage rewards. It also combines both income streams into a total
per-node profit profile, answering which incentive dominates under
the simulated parameters.
"""

from __future__ import annotations

import numpy as np

from ..analysis.reports import Table
from ..core.fairness import gini
from ..kademlia.overlay import Overlay, OverlayConfig
from ..swarm.caching import NoCache
from ..swarm.node import SwarmNode
from ..swarm.postage import PostageOffice
from ..swarm.redistribution import RedistributionGame, StakeRegistry
from ..backends.fast import FastSimulation, FastSimulationConfig
from .report import ExperimentReport

__all__ = ["run_storage"]


def run_storage(n_files: int = 1000, n_nodes: int = 500,
                n_rounds: int = 500, uploads: int = 200,
                chunks_per_upload: int = 50,
                cheater_fraction: float = 0.05) -> ExperimentReport:
    """Simulate postage + redistribution and evaluate reward fairness.

    Parameters mirror the bandwidth experiments where possible:
    ``n_files``/``n_nodes`` size the bandwidth side used for the
    combined-profit comparison; ``uploads`` files are stamped and
    placed, rent is collected every round, and ``n_rounds`` lottery
    rounds are played.
    """
    report = ExperimentReport(
        name="storage",
        title=(
            f"Storage incentives: postage + redistribution "
            f"({uploads} uploads, {n_rounds} rounds, {n_nodes} nodes)"
        ),
    )
    overlay = Overlay.build(OverlayConfig(n_nodes=n_nodes, bits=16, seed=42))
    nodes = {
        address: SwarmNode(address, overlay.table(address), cache=NoCache())
        for address in overlay.addresses
    }
    office = PostageOffice(rent_per_chunk_round=0.001)
    stakes = StakeRegistry(minimum_stake=1.0)
    rng = np.random.default_rng(55)
    for address in overlay.addresses:
        stakes.deposit(address, float(rng.uniform(1.0, 3.0)))

    # -- uploads: stamped chunks placed at their storers ---------------
    for upload in range(uploads):
        owner = int(rng.choice(overlay.address_array()))
        batch = office.buy_batch(owner, value=5.0, depth=10)
        addresses = rng.integers(0, overlay.space.size,
                                 size=chunks_per_upload)
        for chunk in addresses:
            stamp = batch.stamp(int(chunk))
            assert office.validate(stamp)
            storer = overlay.closest_node(int(chunk))
            nodes[storer].store.put(int(chunk))

    # -- lottery rounds with rent collection ----------------------------
    game = RedistributionGame(
        overlay=overlay, nodes=nodes, office=office, stakes=stakes,
        seed=7,
    )
    cheaters = rng.choice(
        overlay.address_array(),
        size=round(cheater_fraction * n_nodes), replace=False,
    )
    for cheater in cheaters:
        game.mark_cheater(int(cheater))
    game.play_rounds(n_rounds)

    storage_rewards = np.array(
        game.reward_vector(list(overlay.addresses)), dtype=np.float64
    )
    storage_gini = gini(storage_rewards)
    winners = game.win_counts()
    detected = {
        node for outcome in game.history for node in outcome.cheaters
    }

    # -- combine with bandwidth income -----------------------------------
    bandwidth = FastSimulation(FastSimulationConfig(
        n_nodes=n_nodes, bucket_size=4, originator_share=1.0,
        n_files=n_files,
    )).run()
    total = bandwidth.income + storage_rewards
    table = Table(
        title="reward stream fairness (F2 Gini over all nodes)",
        headers=["stream", "total paid", "recipients", "F2 Gini"],
    )
    table.add_row(
        "bandwidth (SWAP first-hop)",
        round(float(bandwidth.income.sum()), 2),
        int(np.count_nonzero(bandwidth.income > 0)),
        gini(bandwidth.income),
    )
    table.add_row(
        "storage (redistribution)",
        round(float(storage_rewards.sum()), 2),
        int(np.count_nonzero(storage_rewards > 0)),
        storage_gini,
    )
    table.add_row(
        "combined",
        round(float(total.sum()), 2),
        int(np.count_nonzero(total > 0)),
        gini(total),
    )
    report.add_table(table)
    report.add_note(
        f"{len(detected)}/{len(cheaters)} cheating applicants were "
        f"detected and frozen; {len(winners)} distinct nodes won rounds"
    )
    report.add_note(
        "storage rewards are lottery-style (few large wins -> high "
        "instantaneous Gini); over time the stake-weighted draw "
        "equalizes - opportunity (F2) fairness, not per-round equality"
    )
    report.data["storage_gini"] = storage_gini
    report.data["bandwidth_gini"] = gini(bandwidth.income)
    report.data["combined_gini"] = gini(total)
    report.data["pot_remaining"] = office.pot
    report.data["distinct_winners"] = len(winners)
    report.data["cheaters_detected"] = len(detected)
    report.data["cheaters_planted"] = len(cheaters)
    return report
