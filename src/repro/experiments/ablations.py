"""Ablation and extension experiments (paper §V + DESIGN.md §3).

These go beyond the paper's published grid, covering the future-work
directions §V sketches and the design choices this reproduction makes:

* :func:`run_k_sweep` — fairness and bandwidth across bucket sizes;
* :func:`run_bucket0` — increase k only for bucket zero (§V idea);
* :func:`run_pricing` — pricing-strategy ablation;
* :func:`run_popularity` — Zipf content popularity vs uniform;
* :func:`run_caching` — forwarding caches under popular content
  (reference simulator — caches need real stores);
* :func:`run_freeriders` — misbehaving peers that never pay;
* :func:`run_baselines` — SWAP vs tit-for-tat / Filecoin-style /
  idealized reference mechanisms on the fairness properties.
"""

from __future__ import annotations

import numpy as np

from ..analysis.reports import Table
from ..backends import get_backend, run_simulation
from ..baselines.filecoin import FilecoinConfig, FilecoinMechanism
from ..baselines.flat import EqualSplitMechanism, PerChunkRewardMechanism
from ..baselines.freerider import FreeRiderPlan, apply_free_riders
from ..baselines.tit_for_tat import TitForTatConfig, TitForTatSwarm
from ..core.fairness import evaluate_fairness, gini
from ..kademlia.overlay import OverlayConfig
from ..kademlia.routing import Router
from ..swarm.chunk import FileManifest
from ..swarm.network import SwarmNetwork, SwarmNetworkConfig
from ..backends.fast import FastSimulation, FastSimulationConfig
from .report import ExperimentReport

__all__ = [
    "run_k_sweep",
    "run_bucket0",
    "run_pricing",
    "run_popularity",
    "run_caching",
    "run_caching_fast",
    "run_freeriders",
    "run_baselines",
]


def run_k_sweep(n_files: int = 2000, n_nodes: int = 1000,
                bucket_sizes: tuple[int, ...] = (2, 4, 8, 16, 20, 32),
                originator_share: float = 0.2,
                backend: str = "fast") -> ExperimentReport:
    """Fairness and bandwidth as a function of bucket size k."""
    report = ExperimentReport(
        name="k_sweep",
        title=(
            f"Bucket-size sweep ({n_files} downloads, "
            f"{originator_share:.0%} originators)"
        ),
    )
    table = Table(
        title="k vs fairness and bandwidth",
        headers=["k", "F2 Gini", "F1 Gini", "mean forwarded", "mean hops",
                 "mean degree"],
    )
    series: dict[int, dict[str, float]] = {}
    for bucket_size in bucket_sizes:
        config = FastSimulationConfig(
            n_nodes=n_nodes,
            bucket_size=bucket_size,
            originator_share=originator_share,
            n_files=n_files,
        )
        engine = get_backend(backend).prepare(config)
        result = engine.run()
        degrees = [
            len(engine.overlay.table(a))
            for a in engine.overlay.addresses
        ]
        mean_degree = float(np.mean(degrees))
        table.add_row(
            bucket_size, result.f2_gini(), result.f1_gini(),
            round(result.average_forwarded_chunks()),
            round(result.mean_hops, 2), round(mean_degree, 1),
        )
        series[bucket_size] = {
            "f2": result.f2_gini(),
            "f1": result.f1_gini(),
            "forwarded": result.average_forwarded_chunks(),
            "hops": result.mean_hops,
            "degree": mean_degree,
        }
    report.add_table(table)
    report.add_note(
        "larger k buys fairness and shorter routes at the cost of more "
        "open connections (paper §V trade-off)"
    )
    report.data["series"] = series
    return report


def run_bucket0(n_files: int = 2000, n_nodes: int = 1000,
                bucket_zero_sizes: tuple[int, ...] = (4, 8, 16, 20),
                originator_share: float = 0.2,
                backend: str = "fast") -> ExperimentReport:
    """§V ablation: increase k only for bucket zero.

    The zero-bucket serves roughly half of all first hops, so widening
    it alone should capture much of the k=20 fairness gain at a
    fraction of the connection cost.
    """
    report = ExperimentReport(
        name="bucket0",
        title=(
            f"Bucket-zero-only widening (base k=4, {n_files} downloads, "
            f"{originator_share:.0%} originators)"
        ),
    )
    table = Table(
        title="k0 vs fairness and bandwidth (other buckets at k=4)",
        headers=["bucket-0 size", "F2 Gini", "F1 Gini", "mean forwarded",
                 "mean hops"],
    )
    series: dict[int, dict[str, float]] = {}
    for bucket_zero in bucket_zero_sizes:
        config = FastSimulationConfig(
            n_nodes=n_nodes,
            bucket_size=4,
            bucket_zero=bucket_zero,
            originator_share=originator_share,
            n_files=n_files,
        )
        result = run_simulation(config, backend=backend)
        table.add_row(
            bucket_zero, result.f2_gini(), result.f1_gini(),
            round(result.average_forwarded_chunks()),
            round(result.mean_hops, 2),
        )
        series[bucket_zero] = {
            "f2": result.f2_gini(),
            "f1": result.f1_gini(),
            "forwarded": result.average_forwarded_chunks(),
        }
    report.add_table(table)
    report.data["series"] = series
    return report


def run_pricing(n_files: int = 2000, n_nodes: int = 1000,
                originator_share: float = 0.2,
                backend: str = "fast") -> ExperimentReport:
    """How the pricing strategy shapes income fairness (F2)."""
    report = ExperimentReport(
        name="pricing",
        title=f"Pricing-strategy ablation ({n_files} downloads)",
    )
    table = Table(
        title="pricing vs F2 Gini (k=4 and k=20)",
        headers=["pricing", "F2 Gini k=4", "F2 Gini k=20"],
    )
    series: dict[str, dict[int, float]] = {}
    for pricing in ("xor", "proximity", "flat"):
        row: dict[int, float] = {}
        for bucket_size in (4, 20):
            config = FastSimulationConfig(
                n_nodes=n_nodes,
                bucket_size=bucket_size,
                originator_share=originator_share,
                n_files=n_files,
                pricing=pricing,
            )
            row[bucket_size] = run_simulation(
                config, backend=backend
            ).f2_gini()
        table.add_row(pricing, row[4], row[20])
        series[pricing] = row
    report.add_table(table)
    report.add_note(
        "flat pricing isolates topology effects; xor/proximity add "
        "price dispersion on top of traffic dispersion"
    )
    report.data["series"] = series
    return report


def run_popularity(n_files: int = 2000, n_nodes: int = 1000,
                   catalog_size: int = 200,
                   exponents: tuple[float, ...] = (0.5, 1.0, 1.5),
                   backend: str = "fast") -> ExperimentReport:
    """Zipf content popularity vs the paper's uniform chunks (§V)."""
    report = ExperimentReport(
        name="popularity",
        title=f"Content-popularity extension ({n_files} downloads)",
    )
    table = Table(
        title="workload vs fairness (k=4, 20% originators)",
        headers=["workload", "F2 Gini", "F1 Gini", "mean forwarded"],
    )
    baseline = run_simulation(FastSimulationConfig(
        n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
        n_files=n_files,
    ), backend=backend)
    table.add_row(
        "uniform (paper)", baseline.f2_gini(), baseline.f1_gini(),
        round(baseline.average_forwarded_chunks()),
    )
    series = {"uniform": baseline.f2_gini()}
    for exponent in exponents:
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
            n_files=n_files, catalog_size=catalog_size,
            catalog_exponent=exponent,
        ), backend=backend)
        label = f"zipf({exponent}), catalog={catalog_size}"
        table.add_row(
            label, result.f2_gini(), result.f1_gini(),
            round(result.average_forwarded_chunks()),
        )
        series[label] = result.f2_gini()
    report.add_table(table)
    report.data["series"] = series
    return report


def run_caching(n_files: int = 150, n_nodes: int = 200,
                catalog_size: int = 40,
                cache_capacity: int = 64) -> ExperimentReport:
    """Forwarding caches under popular content (reference simulator).

    Caches change which node serves a chunk, so this runs on the
    reference :class:`SwarmNetwork` where stores and caches are real.
    Popularity is required for caches to matter; the workload uses a
    small Zipf catalog.
    """
    report = ExperimentReport(
        name="caching",
        title=(
            f"Forwarding-cache extension ({n_files} downloads, "
            f"{n_nodes} nodes, zipf catalog of {catalog_size})"
        ),
    )
    table = Table(
        title="cache policy vs traffic and fairness (k=4)",
        headers=["cache", "mean forwarded", "cache hits", "hops saved",
                 "F2 Gini"],
    )
    overlay = OverlayConfig.paper(bucket_size=4)
    overlay = OverlayConfig(
        n_nodes=n_nodes, bits=overlay.bits, limits=overlay.limits,
        seed=overlay.seed,
    )
    series: dict[str, dict[str, float]] = {}
    for cache in ("none", "lru", "lfu"):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=overlay, cache=cache, cache_capacity=cache_capacity,
        ))
        rng = np.random.default_rng(123)
        catalog = [
            tuple(int(a) for a in
                  rng.integers(0, network.overlay.space.size, size=30))
            for _ in range(catalog_size)
        ]
        ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
        weights = ranks ** -1.0
        weights /= weights.sum()
        nodes = network.overlay.address_array()
        for file_id in range(n_files):
            originator = int(rng.choice(nodes))
            addresses = catalog[int(rng.choice(catalog_size, p=weights))]
            manifest = FileManifest(
                file_id=file_id, chunk_addresses=addresses
            )
            network.download_file(originator, manifest)
        stats = network.retrieval.stats
        f2 = gini(network.income_per_node())
        table.add_row(
            cache, round(network.average_forwarded_chunks(), 1),
            stats.cache_hits, stats.hops_saved_by_cache, f2,
        )
        series[cache] = {
            "forwarded": network.average_forwarded_chunks(),
            "cache_hits": float(stats.cache_hits),
            "hops_saved": float(stats.hops_saved_by_cache),
            "f2": f2,
        }
    report.add_table(table)
    report.add_note(
        "caches shorten repeat routes, reducing total forwarded chunks "
        "- the 'reduced number of forwarded requests' the paper expects"
    )
    report.data["series"] = series
    return report


def run_caching_fast(n_files: int = 2000, n_nodes: int = 1000,
                     catalog_size: int = 200,
                     catalog_exponent: float = 1.0,
                     batch_files: int = 256) -> ExperimentReport:
    """Path caching at paper scale on the vectorized backend.

    The fast engine models forwarding caches as a cached-chunk mask:
    once retrieved, a chunk is served by the originator's first hop in
    one hop. Under a Zipf catalog this reproduces the §V effect — a
    reduced number of forwarded requests — at volumes the reference
    simulator cannot reach.
    """
    report = ExperimentReport(
        name="caching_fast",
        title=(
            f"Path caching, vectorized backend ({n_files} downloads, "
            f"{n_nodes} nodes, zipf catalog of {catalog_size})"
        ),
    )
    table = Table(
        title="caching vs traffic (k=4, zipf popularity)",
        headers=["caching", "mean forwarded", "cache hits", "mean hops",
                 "F2 Gini"],
    )
    series: dict[str, dict[str, float]] = {}
    for label, caching in (("off", False), ("on", True)):
        # A thin scenario config — "caching" in the composition
        # grammar is bit-identical to the legacy caching=True field
        # (pinned by the golden fixtures).
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
            n_files=n_files, catalog_size=catalog_size,
            catalog_exponent=catalog_exponent,
            scenario="caching" if caching else "",
            batch_files=batch_files,
        ))
        table.add_row(
            label, round(result.average_forwarded_chunks(), 1),
            result.cache_hits, round(result.mean_hops, 2),
            result.f2_gini(),
        )
        series[label] = {
            "forwarded": result.average_forwarded_chunks(),
            "cache_hits": float(result.cache_hits),
            "hops": result.mean_hops,
            "f2": result.f2_gini(),
        }
    report.add_table(table)
    report.add_note(
        "cache hits short-circuit repeat retrievals at the first hop, "
        "cutting total forwarded chunks (paper §V expectation) at "
        "paper scale"
    )
    report.data["series"] = series
    return report


def run_freeriders(n_files: int = 150, n_nodes: int = 200,
                   fractions: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5)
                   ) -> ExperimentReport:
    """§V misbehaviour thread: originators that never pay."""
    report = ExperimentReport(
        name="freeriders",
        title=f"Free-rider extension ({n_files} downloads, {n_nodes} nodes)",
    )
    table = Table(
        title="free-rider fraction vs fairness and defaults (k=4)",
        headers=["fraction", "F2 Gini", "F1 Gini", "defaults",
                 "unpaid debt"],
    )
    overlay = OverlayConfig(n_nodes=n_nodes, bits=16, seed=42)
    series: dict[float, dict[str, float]] = {}
    for fraction in fractions:
        network = SwarmNetwork(SwarmNetworkConfig(overlay=overlay))
        riders = apply_free_riders(
            network.incentives, list(network.addresses),
            FreeRiderPlan(fraction=fraction),
        )
        rng = np.random.default_rng(7)
        nodes = network.overlay.address_array()
        for file_id in range(n_files):
            originator = int(rng.choice(nodes))
            addresses = tuple(
                int(a) for a in
                rng.integers(0, network.overlay.space.size, size=40)
            )
            network.download_file(
                originator, FileManifest(file_id=file_id,
                                         chunk_addresses=addresses)
            )
        fairness = network.fairness()
        f1 = network.paper_f1()
        defaults = sum(network.incentives.defaults.values())
        unpaid = sum(
            max(channel.balance_of(channel.low), 0.0)
            + max(channel.balance_of(channel.high), 0.0)
            for channel in network.incentives.ledger.channels()
        )
        table.add_row(
            f"{fraction:.0%}", fairness.f2_gini, f1.f1_gini, defaults,
            round(unpaid, 2),
        )
        series[fraction] = {
            "f2": fairness.f2_gini,
            "f1": f1.f1_gini,
            "defaults": float(defaults),
            "riders": float(len(riders)),
        }
    report.add_table(table)
    report.add_note(
        "free-riding originators push their first hops' earnings to "
        "zero-settlement debt, raising income inequality (F2)"
    )
    report.data["series"] = series
    return report


def run_baselines(n_files: int = 1000, n_nodes: int = 300) -> ExperimentReport:
    """Mechanism comparison on identical routed traffic.

    SWAP-style first-hop payment, a perfectly proportional per-chunk
    reward, an equal-split pool, and Filecoin-style storage rewards
    all process the same routes; BitTorrent tit-for-tat runs its own
    swarm (it has no routing) and is reported on its native traffic.
    """
    report = ExperimentReport(
        name="baselines",
        title=f"Incentive-mechanism comparison ({n_files} downloads)",
    )
    config = FastSimulationConfig(
        n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
        n_files=n_files, file_min=20, file_max=60,
    )
    simulation = FastSimulation(config)
    swap_result = simulation.run()
    overlay = simulation.overlay
    nodes = list(overlay.addresses)

    per_chunk = PerChunkRewardMechanism()
    equal_split = EqualSplitMechanism()
    power = {
        address: float(count)
        for address, count in zip(
            nodes, np.bincount(
                simulation.table.storer, minlength=len(nodes)
            )
        )
    }
    filecoin = FilecoinMechanism(power, FilecoinConfig())
    router = Router(overlay)
    replay_rng = np.random.default_rng(99)
    workload = config.workload()
    for event in workload.events(overlay.address_array(), overlay.space):
        for chunk in event.chunk_addresses:
            route = router.route(int(event.originator), int(chunk))
            per_chunk.process_route(route)
            equal_split.process_route(route)
            filecoin.process_route(route)
    del replay_rng

    table = Table(
        title="mechanism vs fairness (same traffic where applicable)",
        headers=["mechanism", "F2 Gini", "F1 Gini"],
    )
    swap_f2 = swap_result.f2_gini()
    swap_f1 = swap_result.f1_gini()
    table.add_row("SWAP zero-proximity (paper)", swap_f2, swap_f1)
    rows = {"swap": (swap_f2, swap_f1)}
    for label, mechanism in (
        ("per-chunk reward (F1-ideal)", per_chunk),
        ("equal split (F2-ideal)", equal_split),
        ("Filecoin-style", filecoin),
    ):
        incomes = mechanism.incomes(nodes)
        contributions = mechanism.contributions(nodes)
        fairness = evaluate_fairness(contributions, incomes)
        table.add_row(label, fairness.f2_gini, fairness.f1_gini)
        rows[label] = (fairness.f2_gini, fairness.f1_gini)

    tft = TitForTatSwarm(TitForTatConfig(n_peers=60, n_pieces=120))
    tft.run()
    tft_fairness = evaluate_fairness(tft.contributions(), tft.incomes())
    table.add_row(
        "BitTorrent tit-for-tat (own swarm)",
        tft_fairness.f2_gini, tft_fairness.f1_gini,
    )
    rows["tit-for-tat"] = (tft_fairness.f2_gini, tft_fairness.f1_gini)
    report.add_table(table)
    report.add_note(
        "per-chunk reward bounds F1 at 0; equal split bounds F2 at 0; "
        "real mechanisms trade between the two"
    )
    report.data["rows"] = rows
    report.data["tft_completion"] = tft.completion_fraction()
    return report
