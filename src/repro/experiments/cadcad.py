"""The paper's simulation, expressed as a cadCAD-style model.

Paper §IV-A: "The cadCAD simulation engine is used to create the
simulation phases. For each step, we simulate the download of a
single file, by letting one node request multiple chunks."

This module reconstructs exactly that structure on
:mod:`repro.engine`: one timestep = one file download, executed by a
policy function, with state-update functions deriving the observable
series (files downloaded, chunks transferred, running F1/F2 Gini).
It exists both as a faithful-substitution demonstration (DESIGN.md's
cadCAD note) and as the template users extend with their own policy
blocks (e.g. churn or amortization blocks between downloads).
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.fairness import gini
from ..engine.results import ResultSet
from ..engine.simulation import SimulationConfig, Simulator
from ..engine.state import Block, Model, StepContext
from ..errors import SimulationError
from ..swarm.chunk import FileManifest
from ..swarm.network import SwarmNetwork
from ..workloads.generators import FileDownload

__all__ = ["build_paper_model", "run_paper_model"]


def build_paper_model(network: SwarmNetwork,
                      events: list[FileDownload]) -> Model:
    """Assemble the paper's per-step download model.

    The returned model has two blocks per timestep, mirroring the
    paper's phases:

    1. **download** — the policy performs one file download against
       *network* (timestep ``t`` executes ``events[t-1]``) and emits
       the receipt as signals; the update accumulates traffic counters.
    2. **measure** — updates the running fairness observables from the
       network's ledger.
    """
    if not events:
        raise SimulationError("the paper model needs at least one event")

    def download_policy(context: StepContext) -> Mapping[str, Any]:
        if context.timestep > len(events):
            raise SimulationError(
                f"timestep {context.timestep} exceeds the workload of "
                f"{len(events)} downloads"
            )
        event = events[context.timestep - 1]
        manifest = FileManifest(
            file_id=event.file_id,
            chunk_addresses=tuple(int(a) for a in event.chunk_addresses),
        )
        receipt = network.download_file(int(event.originator), manifest)
        return {"chunks": receipt.chunks, "hops": receipt.total_hops}

    def update_files(context: StepContext, signals: Mapping) -> int:
        return context.state["files_downloaded"] + 1

    def update_chunks(context: StepContext, signals: Mapping) -> int:
        return context.state["chunks_transferred"] + signals["chunks"]

    def update_hops(context: StepContext, signals: Mapping) -> int:
        return context.state["total_hops"] + signals["hops"]

    def update_f2(context: StepContext, signals: Mapping) -> float:
        return gini(network.income_per_node())

    def update_f1(context: StepContext, signals: Mapping) -> float:
        first_hops = network.first_hop_per_node()
        if first_hops.sum() == 0:
            return 0.0
        return network.paper_f1().f1_gini

    return Model(
        initial_state={
            "files_downloaded": 0,
            "chunks_transferred": 0,
            "total_hops": 0,
            "f2_gini": 0.0,
            "f1_gini": 0.0,
        },
        blocks=(
            Block(
                name="download",
                policies=(download_policy,),
                updates={
                    "files_downloaded": update_files,
                    "chunks_transferred": update_chunks,
                    "total_hops": update_hops,
                },
            ),
            Block(
                name="measure",
                updates={
                    "f2_gini": update_f2,
                    "f1_gini": update_f1,
                },
            ),
        ),
    )


def run_paper_model(network: SwarmNetwork, events: list[FileDownload],
                    *, seed: int = 42) -> ResultSet:
    """Build and execute the paper model over the whole workload."""
    model = build_paper_model(network, events)
    config = SimulationConfig(timesteps=len(events), seed=seed)
    return Simulator(model).run(config)
