"""Composed-scenario experiments.

The scenario layer's registry-level showcase: each runner here is a
thin configuration over the composition grammar — no bespoke kernels,
no bespoke experiment loops — demonstrating that dynamics which used
to require dedicated engine forks now combine freely:

* :func:`run_churn_under_caching` — does path caching still cut
  forwarded traffic when the network churns underneath it?
* :func:`run_join_storm` — a cold-start overlay where an offline
  cohort rejoins in waves, with content re-homed per epoch through
  the delta-patched table cache;
* :func:`run_freerider_churn` — free-riding inequality measured under
  churn instead of the static network the §V analysis assumed.
"""

from __future__ import annotations

from ..analysis.reports import Table
from ..backends import run_simulation
from ..backends.config import FastSimulationConfig
from .report import ExperimentReport

__all__ = [
    "run_churn_under_caching",
    "run_join_storm",
    "run_freerider_churn",
]


def run_churn_under_caching(n_files: int = 2000, n_nodes: int = 1000,
                            catalog_size: int = 200,
                            batch_files: int = 256) -> ExperimentReport:
    """Path caching under churn, via composed scenarios.

    Rows sweep the churn rate with caching held on (plus the two
    single-dynamic anchors): caching keeps absorbing repeat traffic
    while churn erodes availability, and the composed run shows both
    effects priced into one fairness figure.
    """
    report = ExperimentReport(
        name="churn_under_caching",
        title=(
            f"Caching under churn, composed scenarios ({n_files} "
            f"downloads, {n_nodes} nodes, zipf catalog of {catalog_size})"
        ),
    )
    table = Table(
        title="composition vs traffic and availability (k=4)",
        headers=["scenario", "mean forwarded", "cache hits",
                 "availability", "mean hops", "F2 Gini"],
    )
    compositions = (
        ("caching", "caching"),
        ("churn 10%", "churn:rate=0.1,recompute=true"),
        ("churn 10% + caching", "churn:rate=0.1,recompute=true+caching"),
        ("churn 30% + caching", "churn:rate=0.3,recompute=true+caching"),
    )
    series: dict[str, dict[str, float]] = {}
    for label, spec in compositions:
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
            n_files=n_files, catalog_size=catalog_size,
            scenario=spec, batch_files=batch_files,
        ))
        table.add_row(
            label, round(result.average_forwarded_chunks(), 1),
            result.cache_hits, f"{result.availability:.1%}",
            round(result.mean_hops, 2), result.f2_gini(),
        )
        series[label] = {
            "scenario": spec,
            "forwarded": result.average_forwarded_chunks(),
            "cache_hits": float(result.cache_hits),
            "availability": result.availability,
            "f2": result.f2_gini(),
        }
    report.add_table(table)
    report.add_note(
        "composed scenarios run on the same epoch kernel as the "
        "single dynamics: caching keeps short-circuiting repeats "
        "while churn drops chunks whose originator is offline"
    )
    report.data["series"] = series
    return report


def run_join_storm(n_files: int = 2000, n_nodes: int = 1000,
                   fractions: tuple[float, ...] = (0.2, 0.5),
                   waves: int = 4,
                   batch_files: int = 256) -> ExperimentReport:
    """Cold-start joins: an offline cohort rejoins in equal waves.

    Content is re-homed to the closest live node every epoch — each
    join wave is a delta patch of the previous epoch's storer table,
    so the run exercises exactly the incremental maintenance path the
    epoch-table cache accelerates.
    """
    report = ExperimentReport(
        name="join_storm",
        title=(
            f"Join storm, composed scenarios ({n_files} downloads, "
            f"{n_nodes} nodes, {waves} join waves)"
        ),
    )
    table = Table(
        title="initially offline vs availability and traffic (k=4)",
        headers=["offline at start", "availability", "unavailable",
                 "fallback hops", "mean hops"],
    )
    series: dict[float, dict[str, float]] = {}
    for fraction in fractions:
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, n_files=n_files,
            scenario=f"join:fraction={fraction},waves={waves}",
            batch_files=batch_files,
        ))
        table.add_row(
            f"{fraction:.0%}", f"{result.availability:.1%}",
            result.unavailable, result.fallbacks,
            round(result.mean_hops, 2),
        )
        series[fraction] = {
            "availability": result.availability,
            "unavailable": float(result.unavailable),
            "fallbacks": float(result.fallbacks),
        }
    report.add_table(table)
    report.add_note(
        "re-homing keeps every chunk whose originator is online "
        "retrievable during the storm; only downloads issued by "
        "still-offline nodes are lost, so availability climbs back "
        "as the waves land"
    )
    report.data["series"] = series
    return report


def run_freerider_churn(n_files: int = 2000, n_nodes: int = 1000,
                        fractions: tuple[float, ...] = (0.0, 0.2, 0.5),
                        churn_rate: float = 0.1,
                        batch_files: int = 256) -> ExperimentReport:
    """Free-riding inequality under churn, via composed scenarios.

    The §V free-rider analysis assumed a static network; here the
    never-paying fraction rises while the overlay churns underneath,
    measuring whether instability amplifies the income inequality
    free-riding causes.
    """
    report = ExperimentReport(
        name="freerider_churn",
        title=(
            f"Free-riders under churn, composed scenarios ({n_files} "
            f"downloads, {n_nodes} nodes, churn {churn_rate:.0%})"
        ),
    )
    table = Table(
        title="free-riding fraction vs income fairness under churn (k=4)",
        headers=["free riders", "total income", "F2 Gini",
                 "availability"],
    )
    series: dict[float, dict[str, float]] = {}
    for fraction in fractions:
        spec = f"churn:rate={churn_rate},recompute=true"
        if fraction > 0.0:
            spec += f"+freeriding:fraction={fraction}"
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, n_files=n_files,
            scenario=spec, batch_files=batch_files,
        ))
        table.add_row(
            f"{fraction:.0%}", round(float(result.income.sum()), 1),
            result.f2_gini(), f"{result.availability:.1%}",
        )
        series[fraction] = {
            "total_income": float(result.income.sum()),
            "f2": result.f2_gini(),
            "availability": result.availability,
        }
    report.add_table(table)
    report.add_note(
        "free riders keep consuming bandwidth without paying while "
        "churn shrinks the set of earners each epoch — F2 rises with "
        "the free-riding fraction exactly as in the static analysis"
    )
    report.data["series"] = series
    return report
