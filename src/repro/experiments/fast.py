"""Vectorized whole-network simulator for paper-scale runs.

The paper's headline experiment downloads 10 000 files of 100–1000
chunks each — about 5.5 million chunk retrievals over a 1000-node
overlay. The object-oriented reference simulator
(:class:`~repro.swarm.network.SwarmNetwork`) observes every SWAP
channel and is deliberately not built for that volume; this module is
the production backend:

* :class:`NextHopTable` precomputes, for every (node, target address)
  pair, the greedy forwarding decision as one dense numpy matrix —
  routing a chunk becomes a table lookup;
* :class:`FastSimulation` replays a whole file download as a handful
  of array operations per hop level, accumulating exactly the
  per-node quantities the paper's figures need (chunks forwarded,
  chunks served as paid first hop, income in accounting units).

Equivalence with the reference implementation is asserted by
``tests/integration/test_fast_vs_reference.py`` on shared overlays.
Overlays and next-hop tables are cached per configuration, mirroring
the paper's reuse of one overlay across experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import require_fraction, require_int
from ..core.fairness import (
    FairnessReport,
    LorenzCurve,
    evaluate_fairness,
    gini,
    lorenz_curve,
)
from ..errors import ConfigurationError
from ..kademlia.address import bit_length_array
from ..kademlia.buckets import BucketLimits
from ..kademlia.overlay import Overlay, OverlayConfig
from ..workloads.distributions import OriginatorPool, UniformFileSize
from ..workloads.generators import DownloadWorkload, FileDownload

__all__ = [
    "FastSimulationConfig",
    "NextHopTable",
    "SimulationResult",
    "FastSimulation",
    "clear_caches",
]

#: Maximum address width the vectorized backend supports; wider
#: spaces would need a sparse storer/next-hop representation.
MAX_FAST_BITS = 22

_OVERLAY_CACHE: dict[tuple, Overlay] = {}
_TABLE_CACHE: dict[tuple, "NextHopTable"] = {}


def clear_caches() -> None:
    """Drop cached overlays and next-hop tables (for memory-bound tests)."""
    _OVERLAY_CACHE.clear()
    _TABLE_CACHE.clear()


def _overlay_key(config: OverlayConfig) -> tuple:
    """Hashable cache key for an overlay configuration."""
    return (
        config.n_nodes,
        config.bits,
        config.limits.default,
        tuple(sorted(config.limits.overrides.items())),
        config.seed,
        config.neighborhood_min,
        config.symmetric_neighborhood,
    )


def cached_overlay(config: OverlayConfig) -> Overlay:
    """Build (or reuse) the overlay for *config*."""
    key = _overlay_key(config)
    overlay = _OVERLAY_CACHE.get(key)
    if overlay is None:
        overlay = Overlay.build(config)
        _OVERLAY_CACHE[key] = overlay
    return overlay


def cached_next_hop_table(overlay: Overlay) -> "NextHopTable":
    """Build (or reuse) the next-hop table for *overlay*."""
    key = _overlay_key(overlay.config)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = NextHopTable(overlay)
        _TABLE_CACHE[key] = table
    return table


class NextHopTable:
    """Dense greedy-forwarding table for one overlay.

    ``next_hop[i, t]`` is the dense index of the peer node ``i``
    forwards a request for target address ``t`` to, or ``-1`` when no
    known peer is XOR-closer than ``i`` itself (greedy terminal).
    ``storer[t]`` is the dense index of the globally closest node.
    """

    def __init__(self, overlay: Overlay) -> None:
        bits = overlay.space.bits
        if bits > MAX_FAST_BITS:
            raise ConfigurationError(
                f"the vectorized backend supports at most {MAX_FAST_BITS}-bit "
                f"spaces, got {bits}; use the reference SwarmNetwork"
            )
        self.overlay = overlay
        size = overlay.space.size
        n_nodes = len(overlay)
        dtype = np.int16 if n_nodes < np.iinfo(np.int16).max else np.int32
        self.next_hop = np.full((n_nodes, size), -1, dtype=dtype)
        self.storer = overlay.storer_table().astype(np.int64)
        targets = np.arange(size, dtype=np.uint64)
        addresses = overlay.address_array()
        for index, owner in enumerate(overlay.addresses):
            table = overlay.table(owner)
            peers = table.peer_array()
            if peers.size == 0:
                continue
            peer_indices = np.array(
                [overlay.index_of(int(peer)) for peer in peers],
                dtype=np.int64,
            )
            # Running minimum over the node's peers: O(m) full-space
            # passes with no (size x m) intermediate.
            best_distance = targets ^ np.uint64(owner)
            best_index = np.full(size, -1, dtype=np.int64)
            for peer, peer_index in zip(peers, peer_indices):
                distance = targets ^ peer
                closer = distance < best_distance
                best_distance = np.where(closer, distance, best_distance)
                best_index[closer] = peer_index
            self.next_hop[index] = best_index.astype(dtype)
        self.addresses = addresses

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the underlying overlay."""
        return self.next_hop.shape[0]


@dataclass(frozen=True)
class FastSimulationConfig:
    """One paper-style experiment configuration.

    Defaults reproduce the paper's setup; ``bucket_size`` and
    ``originator_share`` are the two swept parameters, ``bucket_zero``
    expresses the §V per-bucket ablation.
    """

    n_nodes: int = 1000
    bits: int = 16
    bucket_size: int = 4
    bucket_zero: int | None = None
    originator_share: float = 1.0
    n_files: int = 10_000
    file_min: int = 100
    file_max: int = 1000
    overlay_seed: int = 42
    workload_seed: int = 7
    pricing: str = "xor"
    pricing_base: float = 1.0
    catalog_size: int = 0
    catalog_exponent: float = 1.0

    def __post_init__(self) -> None:
        require_int(self.n_files, "n_files")
        require_fraction(self.originator_share, "originator_share")
        if self.n_files < 1:
            raise ConfigurationError(f"n_files must be >= 1, got {self.n_files}")
        if self.pricing not in ("xor", "proximity", "flat"):
            raise ConfigurationError(
                f"pricing must be 'xor', 'proximity' or 'flat', got "
                f"{self.pricing!r}"
            )

    def overlay_config(self) -> OverlayConfig:
        """The overlay this experiment runs on."""
        overrides = {} if self.bucket_zero is None else {0: self.bucket_zero}
        return OverlayConfig(
            n_nodes=self.n_nodes,
            bits=self.bits,
            limits=BucketLimits(default=self.bucket_size, overrides=overrides),
            seed=self.overlay_seed,
        )

    def workload(self) -> DownloadWorkload:
        """The download workload this experiment replays."""
        return DownloadWorkload(
            n_files=self.n_files,
            originators=OriginatorPool(share=self.originator_share),
            file_size=UniformFileSize(low=self.file_min, high=self.file_max),
            seed=self.workload_seed,
            catalog_size=self.catalog_size,
            catalog_exponent=self.catalog_exponent,
        )


@dataclass
class SimulationResult:
    """Per-node outcome vectors of one simulation run.

    All arrays are aligned with ``node_addresses`` (the overlay's
    dense index order). ``income`` is the accounting units received as
    the paid zero-proximity hop; ``expenditure`` is what originators
    paid out.
    """

    config: FastSimulationConfig
    node_addresses: np.ndarray
    forwarded: np.ndarray
    first_hop: np.ndarray
    income: np.ndarray
    expenditure: np.ndarray
    files: int = 0
    chunks: int = 0
    total_hops: int = 0
    local_hits: int = 0
    fallbacks: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Paper quantities

    @property
    def n_nodes(self) -> int:
        """Number of nodes simulated."""
        return len(self.node_addresses)

    @property
    def mean_hops(self) -> float:
        """Average path length per chunk retrieval."""
        if self.chunks == 0:
            return 0.0
        return self.total_hops / self.chunks

    def average_forwarded_chunks(self) -> float:
        """Table I cell: network mean of per-node forwarded chunks."""
        return float(self.forwarded.mean())

    def f2_gini(self) -> float:
        """Fig. 5: Gini of per-node income, all nodes."""
        return gini(self.income)

    def f2_curve(self) -> LorenzCurve:
        """Fig. 5: Lorenz curve of per-node income."""
        return lorenz_curve(self.income)

    def f1_gini(self) -> float:
        """Fig. 6: Gini of forwarded/first-hop ratios, paid nodes only."""
        return self.f1_report().f1_gini

    def f1_curve(self) -> LorenzCurve:
        """Fig. 6: Lorenz curve of the F1 ratios."""
        return self.f1_report().f1_curve

    def f1_report(self) -> FairnessReport:
        """Full F1/F2 report in the paper's Fig. 6 formulation."""
        return evaluate_fairness(
            self.forwarded.astype(np.float64),
            self.first_hop.astype(np.float64),
        )

    def income_report(self) -> FairnessReport:
        """F1/F2 with income (units) as the reward."""
        return evaluate_fairness(self.forwarded.astype(np.float64), self.income)

    def summary(self) -> str:
        """One-paragraph run summary."""
        return (
            f"{self.files} files / {self.chunks} chunks over "
            f"{self.n_nodes} nodes (k={self.config.bucket_size}, "
            f"originators={self.config.originator_share:.0%}): "
            f"mean forwarded = {self.average_forwarded_chunks():.0f}, "
            f"mean hops = {self.mean_hops:.2f}, "
            f"F2 Gini = {self.f2_gini():.4f}, "
            f"F1 Gini = {self.f1_gini():.4f}, "
            f"fallback hops = {self.fallbacks}"
        )

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Combine two runs over the same overlay (multi-machine story).

        Configurations must agree on everything except the workload
        seed and file count, mirroring the paper's split of one
        simulation across machines.
        """
        ours, theirs = self.config, other.config
        same_overlay = (
            ours.overlay_config() == theirs.overlay_config()
            and ours.pricing == theirs.pricing
            and ours.originator_share == theirs.originator_share
        )
        if not same_overlay:
            raise ConfigurationError(
                "cannot merge results from different overlay or pricing "
                "configurations"
            )
        merged_hist = dict(self.hop_histogram)
        for hops, count in other.hop_histogram.items():
            merged_hist[hops] = merged_hist.get(hops, 0) + count
        return SimulationResult(
            config=self.config,
            node_addresses=self.node_addresses,
            forwarded=self.forwarded + other.forwarded,
            first_hop=self.first_hop + other.first_hop,
            income=self.income + other.income,
            expenditure=self.expenditure + other.expenditure,
            files=self.files + other.files,
            chunks=self.chunks + other.chunks,
            total_hops=self.total_hops + other.total_hops,
            local_hits=self.local_hits + other.local_hits,
            fallbacks=self.fallbacks + other.fallbacks,
            hop_histogram=merged_hist,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
        )


class FastSimulation:
    """Replays a download workload against a precomputed routing table."""

    def __init__(self, config: FastSimulationConfig) -> None:
        self.config = config
        self.overlay = cached_overlay(config.overlay_config())
        self.table = cached_next_hop_table(self.overlay)
        self.space = self.overlay.space

    # ------------------------------------------------------------------
    # Pricing (vectorized mirror of repro.core.pricing)

    def _prices(self, server_addresses: np.ndarray,
                chunk_addresses: np.ndarray) -> np.ndarray:
        base = self.config.pricing_base
        if self.config.pricing == "flat":
            return np.full(len(chunk_addresses), base, dtype=np.float64)
        if self.config.pricing == "xor":
            distances = (server_addresses ^ chunk_addresses).astype(np.float64)
            return base * np.maximum(distances, 1.0) / self.space.size
        # proximity: base * max(bits - po, 1)
        diffs = server_addresses ^ chunk_addresses
        lengths = bit_length_array(diffs)  # == bits - po
        return base * np.maximum(lengths, 1).astype(np.float64)

    # ------------------------------------------------------------------
    # Execution

    def run(self, workload: DownloadWorkload | None = None) -> SimulationResult:
        """Run the configured (or given) workload; returns the result."""
        started = time.perf_counter()
        if workload is None:
            workload = self.config.workload()
        n = len(self.overlay)
        result = SimulationResult(
            config=self.config,
            node_addresses=self.overlay.address_array().astype(np.int64),
            forwarded=np.zeros(n, dtype=np.int64),
            first_hop=np.zeros(n, dtype=np.int64),
            income=np.zeros(n, dtype=np.float64),
            expenditure=np.zeros(n, dtype=np.float64),
        )
        nodes = self.overlay.address_array()
        for event in workload.events(nodes, self.space):
            self._run_file(event, result)
            result.files += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _run_file(self, event: FileDownload,
                  result: SimulationResult) -> None:
        """Route every chunk of one file and accumulate the counters."""
        chunks = event.chunk_addresses.astype(np.int64)
        n = self.table.n_nodes
        origin_index = self.overlay.index_of(event.originator)
        storer_index = self.table.storer[chunks]
        result.chunks += len(chunks)

        local = storer_index == origin_index
        local_count = int(np.count_nonzero(local))
        if local_count:
            result.local_hits += local_count
            result.hop_histogram[0] = (
                result.hop_histogram.get(0, 0) + local_count
            )
        alive = ~local
        current = np.full(int(np.count_nonzero(alive)), origin_index,
                          dtype=np.int64)
        targets = chunks[alive]
        storers = storer_index[alive]
        addresses = result.node_addresses
        hop = 0
        while current.size:
            hop += 1
            nxt = self.table.next_hop[current, targets].astype(np.int64)
            stalled = nxt < 0
            if stalled.any():
                # Neighborhood hand-off: jump straight to the storer
                # (see Router); counted so the effect is visible.
                result.fallbacks += int(np.count_nonzero(stalled))
                nxt = np.where(stalled, storers, nxt)
            result.forwarded += np.bincount(nxt, minlength=n)
            result.total_hops += int(nxt.size)
            if hop == 1:
                result.first_hop += np.bincount(nxt, minlength=n)
                prices = self._prices(
                    addresses[nxt].astype(np.uint64),
                    targets.astype(np.uint64),
                )
                result.income += np.bincount(
                    nxt, weights=prices, minlength=n
                )
                result.expenditure[origin_index] += float(prices.sum())
            arrived = nxt == storers
            arrived_count = int(np.count_nonzero(arrived))
            if arrived_count:
                result.hop_histogram[hop] = (
                    result.hop_histogram.get(hop, 0) + arrived_count
                )
            keep = ~arrived
            current = nxt[keep]
            targets = targets[keep]
            storers = storers[keep]


def paper_result(bucket_size: int, originator_share: float,
                 n_files: int = 10_000, *, n_nodes: int = 1000,
                 overlay_seed: int = 42,
                 workload_seed: int = 7) -> SimulationResult:
    """Run one cell of the paper's 2x2 experiment grid."""
    config = FastSimulationConfig(
        n_nodes=n_nodes,
        bucket_size=bucket_size,
        originator_share=originator_share,
        n_files=n_files,
        overlay_seed=overlay_seed,
        workload_seed=workload_seed,
    )
    return FastSimulation(config).run()
