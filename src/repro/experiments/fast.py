"""Backward-compatibility shim — the engine lives in :mod:`repro.backends`.

Historically the vectorized simulator was ``repro.experiments.fast``;
it has been promoted to :mod:`repro.backends.fast` behind the
:class:`~repro.backends.base.SimulationBackend` protocol. Every public
name is re-exported here so existing imports keep working; new code
should import from :mod:`repro.backends`.
"""

from __future__ import annotations

from ..backends.fast import (
    MAX_FAST_BITS,
    FastBackend,
    FastSimulation,
    FastSimulationConfig,
    NextHopTable,
    PerFileFastBackend,
    SimulationResult,
    cached_next_hop_table,
    cached_overlay,
    clear_caches,
    paper_result,
)

__all__ = [
    "FastSimulationConfig",
    "NextHopTable",
    "SimulationResult",
    "FastSimulation",
    "FastBackend",
    "PerFileFastBackend",
    "clear_caches",
    "cached_overlay",
    "cached_next_hop_table",
    "paper_result",
    "MAX_FAST_BITS",
]
