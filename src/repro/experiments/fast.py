"""Deprecated location — the engine lives in :mod:`repro.backends`.

Historically the vectorized simulator was ``repro.experiments.fast``;
it has been promoted to :mod:`repro.backends.fast` behind the
:class:`~repro.backends.base.SimulationBackend` protocol, and every
in-tree import now targets :mod:`repro.backends` directly. This stub
re-exports the public names for any remaining third-party imports and
warns on import; it will be removed outright in a future change.
"""

from __future__ import annotations

import warnings

from ..backends.fast import (
    MAX_FAST_BITS,
    FastBackend,
    FastSimulation,
    FastSimulationConfig,
    NextHopTable,
    PerFileFastBackend,
    SimulationResult,
    cached_next_hop_table,
    cached_overlay,
    clear_caches,
    paper_result,
)

__all__ = [
    "FastSimulationConfig",
    "NextHopTable",
    "SimulationResult",
    "FastSimulation",
    "FastBackend",
    "PerFileFastBackend",
    "clear_caches",
    "cached_overlay",
    "cached_next_hop_table",
    "paper_result",
    "MAX_FAST_BITS",
]

warnings.warn(
    "repro.experiments.fast is deprecated; import from repro.backends "
    "(the engine moved behind the SimulationBackend protocol)",
    DeprecationWarning,
    stacklevel=2,
)
