"""Experiment report container.

Every experiment runner returns an :class:`ExperimentReport`: named
tables, pre-rendered ASCII figures, prose notes, and the raw data the
tests assert against. ``render()`` produces the terminal/Markdown-ish
output the CLI prints and EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..analysis.reports import Table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    name: str
    title: str
    tables: list[Table] = field(default_factory=list)
    figures: list[tuple[str, str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        """Attach a result table."""
        self.tables.append(table)

    def add_figure(self, caption: str, rendered: str) -> None:
        """Attach a pre-rendered ASCII figure."""
        self.figures.append((caption, rendered))

    def add_note(self, note: str) -> None:
        """Attach a prose observation."""
        self.notes.append(note)

    def render(self) -> str:
        """Full textual report."""
        parts = [f"== {self.title} ({self.name}) =="]
        for table in self.tables:
            parts.append("")
            parts.append(table.to_text())
        for caption, figure in self.figures:
            parts.append("")
            parts.append(f"-- {caption} --")
            parts.append(figure)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
