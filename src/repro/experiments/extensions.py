"""Extension experiments beyond the paper's published evaluation.

These exercise the substrates built for the paper's §V future-work
directions and this reproduction's own design checks:

* :func:`run_overhead` — §V thread 1: net earnings after connection,
  transaction, and channel-state overhead, k=4 vs k=20;
* :func:`run_churn` — §II motivation: availability and fairness when
  nodes leave and rejoin;
* :func:`run_privacy` — §III-A claim: identity exposure of iterative
  Kademlia lookups versus forwarding Kademlia;
* :func:`run_sensitivity` — §VI robustness: the headline Gini
  reductions replicated across workload seeds with confidence
  intervals.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis.reports import Table
from ..analysis.sensitivity import compare_configs
from ..backends import get_backend, run_simulation
from ..core.overhead import OverheadModel, overhead_report
from ..engine.des import EventScheduler
from ..kademlia.iterative import IterativeLookup
from ..kademlia.overlay import OverlayConfig
from ..kademlia.routing import Router
from ..swarm.churn import ChurnModel
from ..backends.fast import FastSimulationConfig
from .report import ExperimentReport

__all__ = [
    "run_overhead",
    "run_churn",
    "run_churn_fast",
    "run_privacy",
    "run_sensitivity",
    "run_latency",
]


def run_latency(n_files: int = 2000, n_nodes: int = 1000,
                bucket_sizes: tuple[int, ...] = (2, 4, 8, 20),
                per_hop_ms: float = 30.0,
                backend: str = "fast") -> ExperimentReport:
    """Latency flip side of the §V trade-off: hops cost round trips.

    Converts each configuration's per-chunk hop histogram into a
    retrieval-latency distribution under a fixed per-hop delay. With
    ``backend="time"`` the per-hop delay also drives the time-domain
    engine, and a second table reports the *measured* per-chunk
    percentiles next to the model's — identical under unbounded
    bandwidth (minus the model's fixed base cost), diverging once
    bandwidth or concurrency limits are configured.
    """
    from ..analysis.latency import LatencyModel, latency_distribution
    from ..analysis.reports import Table as _Table

    report = ExperimentReport(
        name="latency",
        title=(
            f"Retrieval latency vs bucket size ({n_files} downloads, "
            f"{per_hop_ms:.0f} ms per hop)"
        ),
    )
    model = LatencyModel(per_hop_ms=per_hop_ms)
    table = _Table(
        title="chunk retrieval latency (20% originators)",
        headers=["k", "mean hops", "mean ms", "p50 ms", "p90 ms",
                 "p99 ms"],
    )
    measured = _Table(
        title="measured per-chunk latency (time backend)",
        headers=["k", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
    )
    series: dict[int, dict[str, float]] = {}
    for bucket_size in bucket_sizes:
        result = run_simulation(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=bucket_size,
            originator_share=0.2, n_files=n_files,
            hop_latency_ms=per_hop_ms,
        ), backend=backend)
        distribution = latency_distribution(result.hop_histogram, model)
        table.add_row(
            bucket_size, round(result.mean_hops, 2),
            round(distribution.mean_ms, 1),
            distribution.p50_ms, distribution.p90_ms,
            distribution.p99_ms,
        )
        series[bucket_size] = {
            "hops": result.mean_hops,
            "mean_ms": distribution.mean_ms,
            "p99_ms": distribution.p99_ms,
        }
        if result.latency_ms is not None and result.latency_ms.size:
            stats = result.latency_stats()
            measured.add_row(
                bucket_size, round(stats.mean_ms, 1),
                round(stats.p50_ms, 1), round(stats.p95_ms, 1),
                round(stats.p99_ms, 1),
            )
            series[bucket_size]["measured_p50_ms"] = stats.p50_ms
            series[bucket_size]["measured_p99_ms"] = stats.p99_ms
    report.add_table(table)
    if measured.rows:
        report.add_table(measured)
    report.add_note(
        "larger buckets shorten routes, cutting tail latency - the "
        "performance companion to the paper's fairness result"
    )
    report.data["series"] = series
    return report


def run_overhead(n_files: int = 2000, n_nodes: int = 1000,
                 transaction_cost: float = 0.01,
                 keepalive_cost: float = 0.001,
                 backend: str = "fast") -> ExperimentReport:
    """§V thread 1: does the k=20 fairness gain survive its overhead?"""
    report = ExperimentReport(
        name="overhead",
        title=(
            f"Overhead-adjusted earnings ({n_files} downloads, "
            f"tx cost {transaction_cost}, keepalive {keepalive_cost})"
        ),
    )
    model = OverheadModel(
        keepalive_cost_per_connection=keepalive_cost,
        transaction_cost=transaction_cost,
    )
    table = Table(
        title="gross vs net earnings (20% originators)",
        headers=["k", "mean income", "mean net income", "overhead share",
                 "underwater nodes", "F2 Gini (net clipped)"],
    )
    series: dict[int, dict[str, float]] = {}
    for bucket_size in (4, 20):
        engine = get_backend(backend).prepare(FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=bucket_size,
            originator_share=0.2, n_files=n_files,
        ))
        result = engine.run()
        overhead = overhead_report(
            engine.overlay, result.income, result.first_hop, model
        )
        from ..core.fairness import gini

        net_clipped = np.maximum(overhead.net_income, 0.0)
        net_gini = gini(net_clipped)
        table.add_row(
            bucket_size,
            round(float(result.income.mean()), 4),
            round(overhead.mean_net_income(), 4),
            f"{overhead.overhead_share():.1%}",
            overhead.underwater_nodes,
            net_gini,
        )
        series[bucket_size] = {
            "gross": float(result.income.mean()),
            "net": overhead.mean_net_income(),
            "share": overhead.overhead_share(),
            "underwater": float(overhead.underwater_nodes),
            "net_gini": net_gini,
        }
    report.add_table(table)
    report.add_note(
        "k=20 opens ~4x more connections; whether its fairness gain "
        "survives depends on the keepalive/transaction cost regime "
        "(the trade-off §V predicts)"
    )
    report.data["series"] = series
    return report


def run_churn(n_files: int = 400, n_nodes: int = 300,
              mean_session: float = 60.0,
              mean_downtime: float = 20.0) -> ExperimentReport:
    """§II churn motivation: availability and fairness under churn.

    Nodes alternate exponential online/offline periods while a
    download workload runs; a retrieval fails when the chunk's single
    storer is offline (the paper's closest-node placement has no
    redundancy — exactly why real Swarm replicates in neighborhoods).
    """
    report = ExperimentReport(
        name="churn",
        title=(
            f"Churn extension ({n_files} downloads, {n_nodes} nodes, "
            f"session {mean_session}, downtime {mean_downtime})"
        ),
    )
    table = Table(
        title="churn vs availability (k=4, uniform originators)",
        headers=["scenario", "live fraction", "available", "unavailable",
                 "availability"],
    )
    series: dict[str, dict[str, float]] = {}
    for label, churning in (("static", False), ("churning", True)):
        overlay_config = OverlayConfig(n_nodes=n_nodes, bits=14, seed=17)
        from ..kademlia.overlay import Overlay

        overlay = Overlay.build(overlay_config)
        scheduler = EventScheduler()
        churn = ChurnModel(
            overlay,
            mean_session=mean_session,
            mean_downtime=mean_downtime,
            seed=23,
        )
        if churning:
            churn.install(scheduler)
        router = Router(overlay)
        rng = np.random.default_rng(31)
        available = 0
        unavailable = 0
        for step in range(n_files):
            scheduler.run_until(float(step))
            live = churn.live_array()
            originator = int(rng.choice(live))
            for chunk in rng.integers(0, overlay.space.size, size=20):
                storer = overlay.closest_node(int(chunk))
                if not churn.is_live(storer):
                    unavailable += 1
                    continue
                route = router.route(originator, int(chunk))
                # The greedy path only traverses live tables; dead
                # peers were evicted on departure.
                assert all(churn.is_live(n) for n in route.path)
                available += 1
        availability = available / (available + unavailable)
        table.add_row(
            label, round(churn.live_fraction, 3), available, unavailable,
            f"{availability:.1%}",
        )
        series[label] = {
            "availability": availability,
            "live_fraction": churn.live_fraction,
            "departures": float(churn.stats.departures),
        }
    report.add_table(table)
    report.add_note(
        "single-storer placement loses availability exactly in "
        "proportion to offline storers; Swarm's neighborhood "
        "replication (NeighborhoodPlacement) exists to close this gap"
    )
    report.data["series"] = series
    return report


def run_churn_fast(n_files: int = 2000, n_nodes: int = 1000,
                   offline_fractions: tuple[float, ...] = (0.0, 0.1, 0.3),
                   batch_files: int = 256) -> ExperimentReport:
    """Churn at paper scale on the vectorized backend.

    Each batch of files sees a fresh node-alive mask; a chunk whose
    single storer is offline is unavailable (the paper's closest-node
    placement has no redundancy). The re-replication column recomputes
    storers over the live population — Swarm's neighborhood answer —
    and recovers most of the lost availability.
    """
    report = ExperimentReport(
        name="churn_fast",
        title=(
            f"Churn, vectorized backend ({n_files} downloads, "
            f"{n_nodes} nodes)"
        ),
    )
    table = Table(
        title="offline fraction vs availability (k=4)",
        headers=["offline", "availability", "unavailable",
                 "availability (re-replicated)", "fallback hops"],
    )
    series: dict[float, dict[str, float]] = {}
    for fraction in offline_fractions:
        # A thin scenario config — the same composition grammar any
        # other dynamic uses (bit-identical to the legacy
        # churn_offline_fraction field, per the golden fixtures).
        base = FastSimulationConfig(
            n_nodes=n_nodes, bucket_size=4, n_files=n_files,
            scenario=f"churn:rate={fraction}", batch_files=batch_files,
        )
        result = run_simulation(base)
        rereplicated = run_simulation(dataclasses.replace(
            base, scenario=f"churn:rate={fraction},recompute=true"
        ))
        table.add_row(
            f"{fraction:.0%}", f"{result.availability:.1%}",
            result.unavailable, f"{rereplicated.availability:.1%}",
            result.fallbacks,
        )
        series[fraction] = {
            "availability": result.availability,
            "unavailable": float(result.unavailable),
            "rereplicated_availability": rereplicated.availability,
        }
    report.add_table(table)
    report.add_note(
        "single-storer placement loses availability roughly with the "
        "offline fraction; recomputing storers over the live "
        "population (neighborhood re-replication) leaves only offline "
        "originators unable to download"
    )
    report.data["series"] = series
    return report


def run_privacy(n_files: int = 300, n_nodes: int = 500,
                lookups_per_file: int = 10) -> ExperimentReport:
    """§III-A: identity exposure, iterative vs forwarding Kademlia."""
    report = ExperimentReport(
        name="privacy",
        title=(
            f"Privacy comparison: iterative vs forwarding Kademlia "
            f"({n_files * lookups_per_file} lookups)"
        ),
    )
    from ..kademlia.overlay import Overlay

    overlay = Overlay.build(OverlayConfig(n_nodes=n_nodes, bits=14, seed=3))
    router = Router(overlay)
    lookup = IterativeLookup(overlay)
    rng = np.random.default_rng(9)
    exposures = []
    round_trips = []
    forwarding_hops = []
    for _ in range(n_files):
        requester = int(rng.choice(overlay.address_array()))
        for chunk in rng.integers(0, overlay.space.size,
                                  size=lookups_per_file):
            result = lookup.lookup(requester, int(chunk))
            route = router.route(requester, int(chunk))
            assert result.found == route.storer
            exposures.append(result.identity_exposure)
            round_trips.append(result.round_trips)
            forwarding_hops.append(route.hops)
    table = Table(
        title="identity exposure and latency per retrieval",
        headers=["scheme", "nodes learning requester", "rounds/hops"],
    )
    table.add_row(
        "iterative Kademlia",
        round(float(np.mean(exposures)), 2),
        round(float(np.mean(round_trips)), 2),
    )
    table.add_row(
        "forwarding Kademlia (Swarm)",
        1.0,  # only the first hop ever sees the requester
        round(float(np.mean(forwarding_hops)), 2),
    )
    report.add_table(table)
    report.add_note(
        "forwarding Kademlia exposes the requester to exactly one peer "
        "per retrieval; iterative lookups expose it to every queried "
        "node (paper §III-A's privacy argument, quantified)"
    )
    report.data["mean_exposure"] = float(np.mean(exposures))
    report.data["mean_rounds"] = float(np.mean(round_trips))
    report.data["mean_hops"] = float(np.mean(forwarding_hops))
    return report


def run_sensitivity(n_files: int = 1000, n_nodes: int = 500,
                    n_replications: int = 5) -> ExperimentReport:
    """§VI robustness: headline Gini reductions across seeds."""
    report = ExperimentReport(
        name="sensitivity",
        title=(
            f"Seed sensitivity of the headline reductions "
            f"({n_replications} replications, {n_files} downloads each)"
        ),
    )
    baseline = FastSimulationConfig(
        n_nodes=n_nodes, bucket_size=4, originator_share=0.2,
        n_files=n_files,
    )
    treatment = FastSimulationConfig(
        n_nodes=n_nodes, bucket_size=20, originator_share=0.2,
        n_files=n_files,
    )
    table = Table(
        title="relative Gini reduction k=4 -> k=20 (paired seeds)",
        headers=["property", "mean reduction", "95% CI", "robust"],
    )
    outcomes = {}
    for name, metric in (
        ("F2", lambda r: r.f2_gini()),
        ("F1", lambda r: r.f1_gini()),
    ):
        outcome = compare_configs(
            baseline, treatment, metric, metric_name=name,
            n_replications=n_replications,
        )
        low, high = outcome["ci"]
        table.add_row(
            name,
            f"{outcome['mean_reduction']:.1%}",
            f"[{low:.1%}, {high:.1%}]",
            "yes" if outcome["robust"] else "no",
        )
        outcomes[name] = outcome
    report.add_table(table)
    report.add_note(
        "paper reports single-seed reductions (F2 -7%, F1 -6%); the "
        "paired-seed CIs show whether the direction survives seed noise"
    )
    report.data["outcomes"] = outcomes
    return report
