"""Figure 3: a routing table with its buckets, reconstructed.

Fig. 3 of the paper illustrates routing-table structure: a node with
an 8-bit address groups every other address into buckets by shared
prefix length, keeping at most k = 4 in each. :func:`run_fig3`
rebuilds that setting — an 8-bit address space with the figure's node
id 91 (``01011011``) — on a real overlay and renders the table in the
figure's layout, with each peer's shared prefix and first differing
bit made visible.

Unlike Figures 4-6 this is a structural illustration, not a measured
result, so the "reproduction" is an invariant check: every rendered
peer sits in the bucket its proximity order dictates, bucket
capacities hold, and the example address from the paper's text
(chunk stored by node 245 -> bucket 0 contacted) routes as described.
"""

from __future__ import annotations

from ..analysis.table_viz import render_bucket_occupancy, render_routing_table
from ..kademlia.buckets import BucketLimits
from ..kademlia.overlay import Overlay, OverlayConfig
from ..kademlia.routing import Router
from .report import ExperimentReport

__all__ = ["run_fig3", "FIG3_NODE"]

#: The node id used in the paper's Fig. 3 example.
FIG3_NODE = 91


def run_fig3(n_files: int | None = None, n_nodes: int | None = None,
             seed: int = 91) -> ExperimentReport:
    """Reconstruct Fig. 3's routing-table diagram on a live overlay.

    ``n_files``/``n_nodes`` are accepted for CLI uniformity; the
    figure's setting is fixed (8-bit space, so at most 128 nodes are
    used regardless). The overlay is searched over seeds until node 91
    exists, so the rendered table belongs to the figure's node id.
    """
    population = min(n_nodes or 128, 128)
    overlay = None
    for candidate_seed in range(seed, seed + 500):
        config = OverlayConfig(
            n_nodes=population, bits=8,
            limits=BucketLimits.uniform(4), seed=candidate_seed,
        )
        overlay = Overlay.build(config)
        if FIG3_NODE in overlay:
            break
    assert overlay is not None and FIG3_NODE in overlay

    table = overlay.table(FIG3_NODE)
    report = ExperimentReport(
        name="fig3",
        title=(
            f"Figure 3 - routing table and buckets for node {FIG3_NODE} "
            f"(8-bit space, k=4, {population} nodes)"
        ),
    )
    report.add_figure(
        f"routing table of node {FIG3_NODE}",
        render_routing_table(table),
    )
    report.add_figure(
        "bucket occupancy",
        render_bucket_occupancy(table),
    )
    # The paper's worked example: "if a chunk is stored by node with
    # id 245, then our node will contact one of the four nodes in
    # bucket zero" (245 = 11110101 differs from 91 in the first bit).
    space = overlay.space
    bucket_for_245 = space.proximity(FIG3_NODE, 245)
    report.add_note(
        f"chunk at address 245: proximity to node {FIG3_NODE} is "
        f"{bucket_for_245}, so bucket {bucket_for_245} is contacted "
        "(paper: bucket zero)"
    )
    router = Router(overlay)
    route = router.route(FIG3_NODE, 245)
    if route.hops > 0:
        first_hop = route.first_hop
        report.add_note(
            f"live routing confirms it: the first hop {first_hop} sits "
            f"in bucket {space.proximity(FIG3_NODE, first_hop)}"
        )
    report.data["node"] = FIG3_NODE
    report.data["bucket_histogram"] = table.bucket_histogram()
    report.data["neighborhood_depth"] = table.neighborhood_depth()
    report.data["bucket_for_245"] = bucket_for_245
    report.data["first_hop_bucket"] = (
        space.proximity(FIG3_NODE, route.first_hop)
        if route.first_hop is not None else None
    )
    return report
