"""Experiment registry: names -> runners.

The single source of truth the CLI and benchmarks use to find
experiments. Every entry maps the DESIGN.md experiment id to its
runner and a short description; runners accept ``n_files`` /
``n_nodes`` keyword arguments so callers can scale them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ExperimentError
from . import ablations, extensions, fig3, paper, scenarios, storage, sweeps
from .report import ExperimentReport

__all__ = ["ExperimentSpec", "REGISTRY", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    ``supports_backend`` marks runners that accept a ``backend``
    keyword (a :mod:`repro.backends` registry name) to select the
    simulation engine; the CLI only forwards ``--backend`` to those.
    """

    name: str
    description: str
    runner: Callable[..., ExperimentReport]
    paper_artifact: str | None = None
    supports_backend: bool = False


REGISTRY: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="table1",
            description="Average forwarded chunks per configuration",
            runner=paper.run_table1,
            paper_artifact="Table I",
            supports_backend=True,
        ),
        ExperimentSpec(
            name="fig3",
            description="Routing table and buckets for node 91 (k=4)",
            runner=fig3.run_fig3,
            paper_artifact="Figure 3",
        ),
        ExperimentSpec(
            name="fig4",
            description="Per-node forwarded-chunk distributions",
            runner=paper.run_fig4,
            paper_artifact="Figure 4",
            supports_backend=True,
        ),
        ExperimentSpec(
            name="fig5",
            description="F2 (income) Lorenz curves and Gini",
            runner=paper.run_fig5,
            paper_artifact="Figure 5",
            supports_backend=True,
        ),
        ExperimentSpec(
            name="fig6",
            description="F1 (forwarded vs first-hop) Lorenz curves and Gini",
            runner=paper.run_fig6,
            paper_artifact="Figure 6",
            supports_backend=True,
        ),
        ExperimentSpec(
            name="headline",
            description="Gini reduction k=4 -> k=20 (paper: F2 -7%, F1 -6%)",
            runner=paper.run_headline,
            paper_artifact="Section VI",
            supports_backend=True,
        ),
        ExperimentSpec(
            name="k_sweep",
            description="Fairness/bandwidth across bucket sizes",
            runner=ablations.run_k_sweep,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="bucket0",
            description="Widen only bucket zero (paper §V idea)",
            runner=ablations.run_bucket0,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="pricing",
            description="Pricing-strategy ablation",
            runner=ablations.run_pricing,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="popularity",
            description="Zipf content popularity extension",
            runner=ablations.run_popularity,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="caching",
            description="Forwarding-cache extension (reference simulator)",
            runner=ablations.run_caching,
        ),
        ExperimentSpec(
            name="caching_fast",
            description="Path caching at paper scale (vectorized backend)",
            runner=ablations.run_caching_fast,
        ),
        ExperimentSpec(
            name="freeriders",
            description="Misbehaving peers that never pay (§V)",
            runner=ablations.run_freeriders,
        ),
        ExperimentSpec(
            name="baselines",
            description="SWAP vs tit-for-tat / Filecoin-style / ideals",
            runner=ablations.run_baselines,
        ),
        ExperimentSpec(
            name="overhead",
            description="Net earnings after maintenance overhead (§V)",
            runner=extensions.run_overhead,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="churn",
            description="Availability under node churn (§II motivation)",
            runner=extensions.run_churn,
        ),
        ExperimentSpec(
            name="churn_fast",
            description="Churn at paper scale (vectorized backend)",
            runner=extensions.run_churn_fast,
        ),
        ExperimentSpec(
            name="churn_under_caching",
            description="Path caching under churn (composed scenarios)",
            runner=scenarios.run_churn_under_caching,
        ),
        ExperimentSpec(
            name="join_storm",
            description="Cold-start join waves with re-homing (composed)",
            runner=scenarios.run_join_storm,
        ),
        ExperimentSpec(
            name="freerider_churn",
            description="Free-riders under churn (composed scenarios)",
            runner=scenarios.run_freerider_churn,
        ),
        ExperimentSpec(
            name="privacy",
            description="Identity exposure: iterative vs forwarding Kademlia",
            runner=extensions.run_privacy,
        ),
        ExperimentSpec(
            name="sensitivity",
            description="Seed robustness of the headline Gini reductions",
            runner=extensions.run_sensitivity,
        ),
        ExperimentSpec(
            name="storage",
            description="Storage incentives: postage + redistribution (§V)",
            runner=storage.run_storage,
        ),
        ExperimentSpec(
            name="latency",
            description="Retrieval latency vs bucket size (hop model)",
            runner=extensions.run_latency,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="table1_sweep",
            description="Table I with 95% CIs across workload-seed replicas",
            runner=sweeps.run_table1_sweep,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="fig5_sweep",
            description="Fig. 5 F2 Gini with 95% CIs across seed replicas",
            runner=sweeps.run_fig5_sweep,
            supports_backend=True,
        ),
        ExperimentSpec(
            name="k_sweep_ci",
            description="Bucket-size ablation with per-k error bars",
            runner=sweeps.run_k_sweep_ci,
            supports_backend=True,
        ),
    )
}


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment; raises with the available names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments, paper artifacts first."""
    return sorted(
        REGISTRY.values(),
        key=lambda spec: (spec.paper_artifact is None, spec.name),
    )
