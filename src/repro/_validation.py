"""Internal argument-validation helpers.

These helpers centralize the eager checks performed by public
constructors so error messages stay consistent across the library.
They are internal (underscore-prefixed module) and not part of the
public API.
"""

from __future__ import annotations

from typing import Iterable

from .errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Validate that *value* is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Validate that *value* is zero or positive."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_int(value: object, name: str) -> int:
    """Validate that *value* is an integral number and return it as int.

    Booleans are rejected: ``True``/``False`` are ints in Python but are
    almost always a bug when passed where a count is expected.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Validate ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def require_fraction(value: float, name: str) -> None:
    """Validate that *value* is a fraction in ``[0, 1]``."""
    require_in_range(value, 0.0, 1.0, name)


def require_non_empty(items: Iterable[object], name: str) -> None:
    """Validate that *items* contains at least one element."""
    try:
        length = len(items)  # type: ignore[arg-type]
    except TypeError:
        length = sum(1 for _ in items)
    if length == 0:
        raise ConfigurationError(f"{name} must not be empty")
