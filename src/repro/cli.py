"""Command-line interface.

``repro-swarm`` (or ``python -m repro.cli``) runs the paper's
experiments and the ablations from the terminal::

    repro-swarm list                     # available experiments
    repro-swarm backends                 # available simulation backends
    repro-swarm run table1               # paper scale (10k downloads)
    repro-swarm run fig5 --files 1000    # scaled down
    repro-swarm run all --files 2000     # every experiment
    repro-swarm run table1 --out out.txt # also write the report
    repro-swarm run table1 --files 200 --backend reference

    repro-swarm trace generate t.json --files 100    # freeze a workload
    repro-swarm trace replay t.json --bucket-size 20 # replay it

    # record a scenario's dynamics (join/leave logs, cache shifts)...
    repro-swarm trace record-dynamics d.json \
        --scenario churn:rate=0.1,recompute=true+caching:size=64
    # ...and replay them later, bit-identical to the direct run
    repro-swarm trace replay-dynamics d.json

    repro-swarm sweep --grid bucket_size=4,8,16 --seeds 10 \
        --backend fast,reference --jobs 4 --store sweep.json

    # distributed: shard the same sweep across 2 host processes
    repro-swarm sweep --grid bucket_size=4,8,16 --seeds 10 \
        --workers 2 --jobs 2 --shard-dir shards --store sweep.json
    # ...or across machines: serve a queue, point hosts at it,
    # then merge the per-host shard stores byte-identically
    repro-swarm sweep-serve --grid bucket_size=4,8,16 --seeds 10 \
        --host 0.0.0.0 --port 8750
    repro-swarm sweep-work --queue http://coordinator:8750 \
        --jobs 4 --store shard-a.json
    repro-swarm sweep --merge-stores shard-*.json --store sweep.json

    repro-swarm bench --quick --baseline benchmarks/BENCH_quick.json

The ``sweep`` subcommand expands a parameter grid over the simulation
configuration, replicates every cell across derived workload seeds,
and reports each quantity as mean [95% CI] (see :mod:`repro.sweeps`;
``--jobs`` fans points out over worker processes with results
identical to a serial run).

Reports render as plain text; ``--markdown`` switches the tables to
Markdown for pasting into documents. Traces freeze a workload into a
file so the exact same requests can be replayed against different
configurations (the paper's replay-for-comparison methodology).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .errors import ExperimentError
from .experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags that define a sweep spec (shared by sweep / sweep-serve)."""
    parser.add_argument(
        "--grid", action="append", default=[], metavar="FIELD=V1,V2",
        help=(
            "sweep a config field over comma-separated values "
            "(repeatable; fields are FastSimulationConfig's)"
        ),
    )
    parser.add_argument(
        "--scenario", action="append", default=[], metavar="SPEC",
        help=(
            "scenario axis crossed with the grid (repeatable): a "
            "composition like 'churn:rate=0.1,recompute=true+"
            "caching:size=64'; kinds: churn, caching, freeriding, "
            "join, demand, trace (trace:path=... replays a recorded "
            "dynamics trace)"
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=3,
        help="workload-seed replicas per grid cell (default: 3)",
    )
    parser.add_argument(
        "--backend", default="fast",
        help="comma-separated backend names (see 'backends')",
    )
    parser.add_argument(
        "--files", type=int, default=1000,
        help="downloads per point (default: 1000)",
    )
    parser.add_argument(
        "--nodes", type=int, default=1000,
        help="overlay nodes (default: 1000)",
    )
    parser.add_argument(
        "--entropy", type=int, default=2022,
        help="root entropy for replica seed derivation",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-swarm",
        description=(
            "Reproduce 'Fair Incentivization of Bandwidth Sharing in "
            "Decentralized Storage Networks' (ICDCS 2022)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")
    subparsers.add_parser("backends", help="list simulation backends")

    run = subparsers.add_parser("run", help="run an experiment")
    run.add_argument(
        "experiment",
        help="experiment name from 'list', or 'all'",
    )
    run.add_argument(
        "--files", type=int, default=None,
        help="number of file downloads (default: experiment's own)",
    )
    run.add_argument(
        "--nodes", type=int, default=None,
        help="number of overlay nodes (default: experiment's own)",
    )
    run.add_argument(
        "--backend", default=None,
        help=(
            "simulation backend for experiments that support one "
            "(see 'backends'; default: fast)"
        ),
    )
    run.add_argument(
        "--out", type=Path, default=None,
        help="also write the rendered report to this file",
    )
    run.add_argument(
        "--markdown", action="store_true",
        help="render tables as Markdown",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter-grid x seed-replica sweep"
    )
    _add_spec_arguments(sweep)
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "distribute the sweep over N sweep-work host subprocesses "
            "pulling from an HTTP work queue, each running --jobs "
            "local processes; results (and the --store file) are "
            "byte-identical to a local run"
        ),
    )
    sweep.add_argument(
        "--lease-timeout", type=float, default=300.0, metavar="SECONDS",
        help=(
            "distributed only: a host silent this long forfeits its "
            "leased points (each charged one crash attempt and "
            "re-queued; default: 300)"
        ),
    )
    sweep.add_argument(
        "--shard-dir", type=Path, default=None, metavar="DIR",
        help=(
            "distributed only: where each host writes its durable "
            "shard store (host-NN.json; default: a temp dir discarded "
            "after the run)"
        ),
    )
    sweep.add_argument(
        "--merge-stores", nargs="+", type=Path, default=None,
        metavar="SHARD",
        help=(
            "merge shard stores from a distributed run into --store "
            "and exit (no execution); byte-identical to a serial run "
            "of the same spec when the shards cover it"
        ),
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help=(
            "report pending/completed/quarantined points against "
            "--store and exit without executing anything"
        ),
    )
    sweep.add_argument(
        "--progress", action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "periodic 'completed/total · points/s · ETA' on stderr "
            "(default: only when stderr is a tty)"
        ),
    )
    sweep.add_argument(
        "--cap-jobs", action="store_true",
        help=(
            "clamp --jobs to os.cpu_count(); points are CPU-bound, so "
            "oversubscribing inverts the parallel speedup (without this "
            "flag an excessive --jobs only warns)"
        ),
    )
    sweep.add_argument(
        "--table-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "build each unique topology's next-hop table once and share "
            "it with workers via shared memory (--no-table-cache: every "
            "worker rebuilds, the pre-PR-3 behavior)"
        ),
    )
    sweep.add_argument(
        "--epoch-cache-tables", type=int, default=None, metavar="N",
        help=(
            "bound the per-process epoch storer-table cache to N tables "
            "(default: a bytes budget sized by address width; see "
            "repro.perf.table_cache.EpochTableCache)"
        ),
    )
    sweep.add_argument(
        "--store", type=Path, default=None,
        help="JSON result store (resumable and diffable)",
    )
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="overwrite an existing store instead of resuming it",
    )
    sweep.add_argument(
        "--salvage-store", action="store_true",
        help=(
            "if --store points at a truncated/corrupt file, recover "
            "every parseable point record and re-run the rest instead "
            "of refusing"
        ),
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help=(
            "extra attempts per failed point before it is quarantined "
            "into the store's failures section (default: 2; "
            "deterministic capped exponential backoff, no jitter)"
        ),
    )
    sweep.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "wall-clock budget per point attempt; a point still "
            "running past it has its worker recycled and counts as a "
            "retryable timeout failure (requires --jobs >= 2; the "
            "serial executor has no watchdog)"
        ),
    )
    fail_mode = sweep.add_mutually_exclusive_group()
    fail_mode.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        default=True,
        help=(
            "quarantine points that exhaust --max-retries and finish "
            "the rest of the sweep (default)"
        ),
    )
    fail_mode.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the sweep on the first point that exhausts its "
             "retry budget",
    )
    sweep.add_argument(
        "--fault-plan", type=Path, default=None, metavar="FILE",
        help=(
            "deterministic fault-injection plan (JSON; see "
            "repro.sweeps.chaos) applied to this run — for testing "
            "the recovery paths, not for production sweeps"
        ),
    )
    sweep.add_argument(
        "--out", type=Path, default=None,
        help="also write the rendered report to this file",
    )
    sweep.add_argument(
        "--markdown", action="store_true",
        help="render tables as Markdown",
    )

    serve = subparsers.add_parser(
        "sweep-serve",
        help="serve a sweep's points as an HTTP work queue for "
             "sweep-work hosts",
    )
    _add_spec_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1",
        help=(
            "bind address (default: 127.0.0.1; use 0.0.0.0 for other "
            "machines — NOTE: plaintext HTTP, no auth; serve only to "
            "hosts you trust)"
        ),
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = OS-assigned, printed at start)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=300.0, metavar="SECONDS",
        help=(
            "a host silent this long forfeits its leased points "
            "(default: 300)"
        ),
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="global per-point retry budget (default: 2)",
    )
    serve.add_argument(
        "--store", type=Path, default=None,
        help=(
            "maintain the merged main store here incrementally "
            "(resumable; equivalently, merge the hosts' shards "
            "afterwards with sweep --merge-stores)"
        ),
    )
    serve.add_argument(
        "--no-resume", action="store_true",
        help="overwrite an existing --store instead of resuming it",
    )
    serve.add_argument(
        "--salvage-store", action="store_true",
        help=(
            "recover a corrupt/truncated --store (keep parseable "
            "records, re-serve the rest) instead of refusing it"
        ),
    )

    work = subparsers.add_parser(
        "sweep-work",
        help="pull and execute sweep points from a sweep-serve queue",
    )
    work.add_argument(
        "--queue", required=True, metavar="URL",
        help="the work queue, e.g. http://coordinator:8750",
    )
    work.add_argument(
        "--store", type=Path, required=True,
        help="this host's durable shard store (resumed if present)",
    )
    work.add_argument(
        "--worker-id", default=None,
        help="stable host name for leases/logs (default: host-<pid>)",
    )
    work.add_argument(
        "--jobs", type=int, default=1,
        help="local worker processes on this host (1 = serial)",
    )
    work.add_argument(
        "--cap-jobs", action="store_true",
        help="clamp --jobs to this host's os.cpu_count()",
    )
    work.add_argument(
        "--table-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "share built next-hop tables with local workers via "
            "shared memory (--no-table-cache: rebuild per process)"
        ),
    )
    work.add_argument(
        "--epoch-cache-tables", type=int, default=None, metavar="N",
        help="bound the per-process epoch storer-table cache",
    )
    work.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="local hang watchdog per point attempt (needs --jobs >= 2)",
    )
    work.add_argument(
        "--max-pool-restarts", type=int, default=8,
        help="local pool crash/hang rebuild budget (default: 8)",
    )
    work.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="idle re-poll interval while other hosts hold leases",
    )

    bench = subparsers.add_parser(
        "bench", help="headline perf benchmark -> BENCH_headline.json"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI scale (300 nodes / 2000 files) instead of paper scale",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="simulation repetitions; the best time is reported",
    )
    bench.add_argument(
        "--out", type=Path, default=Path("BENCH_headline.json"),
        help="where to write the JSON record",
    )
    bench.add_argument(
        "--baseline", type=Path, default=None,
        help="committed baseline record to compare against",
    )
    bench.add_argument(
        "--max-regression", type=float, default=2.0,
        help=(
            "fail (exit 1) when chunks/s drops more than this factor "
            "below the baseline (default: 2.0 — loose, for noisy "
            "shared runners)"
        ),
    )
    bench.add_argument(
        "--strict-provenance", action="store_true",
        help=(
            "refuse to write a benchmark record from a dirty git tree "
            "(without this flag a dirty tree only warns loudly); use "
            "when regenerating a committed baseline"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "live service mode: NDJSON requests in, NDJSON rolling "
            "aggregates out"
        ),
    )
    serve.add_argument(
        "--input", default="-", metavar="PATH",
        help="NDJSON request source ('-' = stdin, the default); an "
             "NDJSON workload-trace file is accepted directly",
    )
    serve.add_argument("--nodes", type=int, default=1000)
    serve.add_argument("--bits", type=int, default=16)
    serve.add_argument("--bucket-size", type=int, default=4)
    serve.add_argument("--overlay-seed", type=int, default=42)
    serve.add_argument(
        "--max-batch", type=int, default=256,
        help="files per micro-epoch (default: 256)",
    )
    serve.add_argument(
        "--flush-interval", type=int, default=1,
        help="emit a snapshot line every N micro-epochs (default: 1)",
    )
    serve.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="serve under dynamics, e.g. 'churn:rate=0.1'; requires "
             "--epochs",
    )
    serve.add_argument(
        "--epochs", type=int, default=None,
        help="epoch count for --scenario serving (schedules are "
             "sized up front)",
    )
    serve.add_argument(
        "--batch", action="store_true",
        help="reference mode: materialize the whole input, run the "
             "one-shot engine, emit only the final line (CI compares "
             "this byte-for-byte against the streamed final line)",
    )

    trace = subparsers.add_parser(
        "trace", help="generate or replay workload traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    generate = trace_sub.add_parser(
        "generate", help="freeze a workload into a JSON trace"
    )
    generate.add_argument("path", type=Path, help="output trace file")
    generate.add_argument("--files", type=int, default=100)
    generate.add_argument("--nodes", type=int, default=1000)
    generate.add_argument("--bits", type=int, default=16)
    generate.add_argument("--share", type=float, default=1.0,
                          help="originator share (paper: 0.2 or 1.0)")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--overlay-seed", type=int, default=42)

    replay = trace_sub.add_parser(
        "replay", help="replay a trace against a configuration"
    )
    replay.add_argument("path", type=Path, help="trace file to replay")
    replay.add_argument(
        "--nodes", type=int, default=None,
        help="overlay nodes (default: the trace header's, else 1000)",
    )
    replay.add_argument(
        "--bits", type=int, default=None,
        help="address bits (default: the trace header's, else 16)",
    )
    replay.add_argument("--bucket-size", type=int, default=4)
    replay.add_argument(
        "--overlay-seed", type=int, default=None,
        help="overlay seed (default: the trace header's, else 42)",
    )

    record_dynamics = trace_sub.add_parser(
        "record-dynamics",
        help="record a scenario's epoch schedule as a dynamics trace",
    )
    record_dynamics.add_argument(
        "path", type=Path, help="output dynamics-trace file"
    )
    record_dynamics.add_argument(
        "--scenario", required=True, metavar="SPEC",
        help=(
            "scenario composition to record, e.g. "
            "'churn:rate=0.1,recompute=true+caching:size=64'"
        ),
    )
    record_dynamics.add_argument("--files", type=int, default=1000)
    record_dynamics.add_argument("--nodes", type=int, default=1000)
    record_dynamics.add_argument("--bits", type=int, default=16)
    record_dynamics.add_argument("--batch-files", type=int, default=512)
    record_dynamics.add_argument("--overlay-seed", type=int, default=42)

    replay_dynamics = trace_sub.add_parser(
        "replay-dynamics",
        help="replay a recorded dynamics trace through the engine",
    )
    replay_dynamics.add_argument(
        "path", type=Path, help="dynamics-trace file to replay"
    )
    replay_dynamics.add_argument(
        "--compose", default=None, metavar="SPEC",
        help=(
            "extra scenario composed on top of the replayed trace "
            "(appended with '+'), e.g. 'caching:size=64'"
        ),
    )
    replay_dynamics.add_argument("--files", type=int, default=1000)
    replay_dynamics.add_argument("--batch-files", type=int, default=512)
    replay_dynamics.add_argument("--bucket-size", type=int, default=4)
    replay_dynamics.add_argument("--workload-seed", type=int, default=7)

    import_requests = trace_sub.add_parser(
        "import-requests",
        help=(
            "convert a measured gateway request log (NDJSON) into an "
            "NDJSON workload trace"
        ),
    )
    import_requests.add_argument(
        "log", help="request log to import ('-' = stdin)"
    )
    import_requests.add_argument(
        "out", type=Path, help="output NDJSON trace file"
    )
    import_requests.add_argument("--nodes", type=int, default=1000)
    import_requests.add_argument("--bits", type=int, default=16)
    import_requests.add_argument("--overlay-seed", type=int, default=42)

    import_dynamics = trace_sub.add_parser(
        "import-dynamics",
        help=(
            "convert a measured join/leave log (NDJSON) into a "
            "dynamics trace"
        ),
    )
    import_dynamics.add_argument(
        "log", help="membership log to import ('-' = stdin)"
    )
    import_dynamics.add_argument(
        "out", type=Path, help="output dynamics-trace file"
    )
    import_dynamics.add_argument("--nodes", type=int, default=1000)
    import_dynamics.add_argument("--bits", type=int, default=16)
    import_dynamics.add_argument("--overlay-seed", type=int, default=42)
    grid = import_dynamics.add_mutually_exclusive_group(required=True)
    grid.add_argument(
        "--epochs", type=int, default=None,
        help="split the log's time span into this many equal epochs",
    )
    grid.add_argument(
        "--epoch-seconds", type=float, default=None,
        help="fixed epoch width in log seconds",
    )
    import_dynamics.add_argument(
        "--recompute", action="store_true",
        help="replay re-homes storers onto the surviving population "
             "each epoch",
    )

    overlay = subparsers.add_parser(
        "overlay", help="build or inspect overlay networks"
    )
    overlay_sub = overlay.add_subparsers(dest="overlay_command",
                                         required=True)

    build = overlay_sub.add_parser(
        "build", help="build an overlay and save it as JSON"
    )
    build.add_argument("path", type=Path, help="output overlay file")
    build.add_argument("--nodes", type=int, default=1000)
    build.add_argument("--bits", type=int, default=16)
    build.add_argument("--bucket-size", type=int, default=4)
    build.add_argument("--seed", type=int, default=42)

    inspect = overlay_sub.add_parser(
        "inspect", help="degree stats and a Fig.3-style routing table"
    )
    inspect.add_argument("path", type=Path, help="overlay file to inspect")
    inspect.add_argument(
        "--node", type=int, default=None,
        help="render this node's routing table (default: first node)",
    )
    return parser


def _render(report, markdown: bool) -> str:
    if not markdown:
        return report.render()
    parts = [f"## {report.title} ({report.name})"]
    for table in report.tables:
        parts.append("")
        parts.append(table.to_markdown())
    for caption, figure in report.figures:
        parts.append("")
        parts.append(f"**{caption}**")
        parts.append("```")
        parts.append(figure)
        parts.append("```")
    for note in report.notes:
        parts.append("")
        parts.append(f"> {note}")
    return "\n".join(parts)


def _run_one(name: str, args: argparse.Namespace) -> str:
    spec = get_experiment(name)
    kwargs = {}
    if args.files is not None:
        kwargs["n_files"] = args.files
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    if args.backend is not None:
        from .backends import get_backend
        from .errors import ConfigurationError

        try:
            backend = get_backend(args.backend)
        except ConfigurationError as error:
            raise ExperimentError(str(error)) from None
        if not spec.supports_backend:
            print(
                f"[{name} runs on its own engine; --backend "
                f"{args.backend} ignored]"
            )
        elif not backend.replays_workload:
            # Self-contained models (tit_for_tat) don't replay the
            # overlay workload these runners compare traffic on.
            raise ExperimentError(
                f"backend {args.backend!r} does not replay the download "
                f"workload; run it via run_simulation() directly"
            )
        else:
            kwargs["backend"] = args.backend
    started = time.perf_counter()
    report = spec.runner(**kwargs)
    elapsed = time.perf_counter() - started
    rendered = _render(report, args.markdown)
    return f"{rendered}\n\n[{name} completed in {elapsed:.1f}s]"


def _spec_from_args(args: argparse.Namespace):
    """Build the SweepSpec shared by sweep / sweep-serve / --dry-run."""
    from .backends import get_backend
    from .backends.config import FastSimulationConfig
    from .sweeps import SweepSpec, parse_grid_arguments

    grid = parse_grid_arguments(args.grid)
    backends = tuple(
        name.strip() for name in args.backend.split(",") if name.strip()
    )
    for name in backends:
        get_backend(name)  # fail early with the known-backend list
    return SweepSpec(
        base=FastSimulationConfig(n_nodes=args.nodes, n_files=args.files),
        grid=grid,
        backends=backends,
        seeds=args.seeds,
        seed_entropy=args.entropy,
        scenarios=tuple(args.scenario),
    )


def _merge_stores_run(args: argparse.Namespace) -> int:
    from .sweeps import SweepStore

    if args.store is None:
        raise ExperimentError(
            "--merge-stores needs --store for the merged output"
        )
    shards = [SweepStore.load(path) for path in args.merge_stores]
    merged = SweepStore.merge(shards, path=args.store)
    merged.save()
    print(
        f"merged {len(shards)} shard(s) -> {args.store}: "
        f"{len(merged.points)} point(s), "
        f"{len(merged.failures)} quarantined"
    )
    return 0


def _sweep_run(args: argparse.Namespace) -> int:
    from .experiments.sweeps import sweep_report
    from .sweeps import run_sweep, sweep_status

    if args.merge_stores is not None:
        return _merge_stores_run(args)
    spec = _spec_from_args(args)
    if args.dry_run:
        status = sweep_status(spec, args.store,
                              salvage=args.salvage_store)
        print(
            f"sweep --dry-run: {status['total']} point(s) total, "
            f"{len(status['completed'])} completed, "
            f"{len(status['pending'])} pending, "
            f"{len(status['quarantined'])} quarantined"
        )
        for heading in ("pending", "quarantined"):
            for point_id in status[heading]:
                print(f"  {heading}: {point_id}")
        return 0
    backends = spec.backends
    # cells() already crosses in the scenario axis; print the grid
    # factor separately so the breakdown multiplies to the point count.
    n_grid_cells = len(spec.cells()) // (len(spec.scenarios) or 1)
    breakdown = f"{n_grid_cells} cell(s)"
    if spec.scenarios:
        breakdown += f" x {len(spec.scenarios)} scenario(s)"
    layout = f"jobs={args.jobs}"
    if args.workers is not None:
        layout = f"workers={args.workers} x {layout}"
    print(
        f"sweep: {len(spec)} points ({breakdown} x {len(backends)} "
        f"backend(s) x {args.seeds} seed(s)), {layout}"
    )
    sweep = run_sweep(
        spec, jobs=args.jobs, store_path=args.store,
        resume=not args.no_resume, table_cache=args.table_cache,
        cap_jobs=args.cap_jobs,
        epoch_cache_tables=args.epoch_cache_tables,
        max_retries=args.max_retries,
        point_timeout=args.point_timeout,
        keep_going=args.keep_going,
        fault_plan=args.fault_plan,
        salvage=args.salvage_store,
        workers=args.workers,
        lease_timeout=args.lease_timeout,
        shard_dir=args.shard_dir,
        progress=args.progress,
    )
    report = sweep_report(
        sweep, name="sweep",
        title=f"Sweep over {', '.join(name for name, _ in spec.grid) or 'base config'}",
    )
    rendered = _render(report, args.markdown)
    print(rendered)
    if args.store is not None:
        print(f"results stored in {args.store}")
    if args.out is not None:
        args.out.write_text(rendered + "\n")
        print(f"report written to {args.out}")
    if sweep.failures:
        print(
            f"WARNING: {len(sweep.failures)} point(s) quarantined "
            f"after exhausting --max-retries={args.max_retries}:"
        )
        for failure in sweep.failures:
            print(f"  {failure.describe()}")
        if args.store is not None:
            print(
                "  (recorded in the store's failures section; "
                "re-running the sweep retries them)"
            )
    if sweep.interrupted is not None:
        import signal as signal_module

        name = signal_module.Signals(sweep.interrupted).name
        print(
            f"sweep interrupted by {name}: {sweep.executed} point(s) "
            f"completed this run"
            + (" and saved; re-run to resume"
               if args.store is not None else "")
        )
        # The conventional shell encoding of death-by-signal, without
        # actually re-raising it: completed work is already flushed.
        return 128 + sweep.interrupted
    return 1 if sweep.failures else 0


def _sweep_serve_run(args: argparse.Namespace) -> int:
    from .sweeps import sweep_serve

    spec = _spec_from_args(args)
    try:
        quarantined = sweep_serve(
            spec,
            host=args.host,
            port=args.port,
            lease_timeout=args.lease_timeout,
            max_retries=args.max_retries,
            store_path=args.store,
            resume=not args.no_resume,
            salvage=args.salvage_store,
        )
    except KeyboardInterrupt:
        return 130
    return 1 if quarantined else 0


def _sweep_work_run(args: argparse.Namespace) -> int:
    from .sweeps import sweep_work

    return sweep_work(
        args.queue,
        store_path=args.store,
        worker_id=args.worker_id,
        jobs=args.jobs,
        share_tables=args.table_cache,
        cap_jobs=args.cap_jobs,
        epoch_cache_tables=args.epoch_cache_tables,
        point_timeout=args.point_timeout,
        max_pool_restarts=args.max_pool_restarts,
        poll_interval=args.poll_interval,
    )


def _bench_run(args: argparse.Namespace) -> int:
    import json

    from .perf.bench import check_regression, headline_bench

    label = "quick" if args.quick else "paper"
    print(f"bench: {label} scale, best of {args.repeats} run(s)")
    record = headline_bench(quick=args.quick, repeats=args.repeats)
    if record["provenance"].get("git_dirty"):
        # A baseline that says "git_dirty": true cannot be reproduced
        # from its recorded commit — it measured code nobody can check
        # out again.
        if args.strict_provenance:
            print(
                "REFUSING to write a benchmark record from a dirty git "
                "tree (--strict-provenance): commit or stash your "
                "changes so the record's git_commit actually describes "
                "the measured code.",
                file=sys.stderr,
            )
            return 1
        print(
            "WARNING: recording a benchmark from a DIRTY git tree — the "
            "record's git_commit does not describe the measured code. "
            "Do not commit this as a baseline; rerun from a clean tree "
            "(or pass --strict-provenance to make this an error).",
            file=sys.stderr,
        )
    args.out.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    metrics = record["metrics"]
    print(
        f"table build {metrics['table_build_seconds']:.2f}s | publish "
        f"{metrics['table_publish_seconds']:.2f}s | attach "
        f"{metrics['table_attach_seconds']:.4f}s "
        f"({metrics['attach_vs_build_speedup']:,.0f}x faster than build)"
    )
    print(
        f"simulation {metrics['run_seconds']:.2f}s: "
        f"{metrics['files_per_second']:,.0f} files/s, "
        f"{metrics['chunks_per_second']:,.0f} chunks/s"
    )
    dynamics = record["dynamics"]
    dynamics_metrics = dynamics["metrics"]
    print(
        f"dynamics ({dynamics['scenario']}) "
        f"{dynamics_metrics['run_seconds']:.2f}s: "
        f"{dynamics_metrics['chunks_per_second']:,.0f} chunks/s "
        f"({dynamics_metrics['slowdown_vs_static']:.2f}x static)"
    )
    latency = record["latency"]
    latency_metrics = latency["metrics"]
    print(
        f"time-domain {latency_metrics['run_seconds']:.2f}s: "
        f"{latency_metrics['chunks_per_second']:,.0f} chunks/s "
        f"({latency_metrics['slowdown_vs_static']:.2f}x static), "
        f"latency p50/p95/p99 = {latency_metrics['latency_p50_ms']:.0f}/"
        f"{latency_metrics['latency_p95_ms']:.0f}/"
        f"{latency_metrics['latency_p99_ms']:.0f} ms"
    )
    print(f"record written to {args.out}")
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        problems = check_regression(
            record, baseline, args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"within {args.max_regression:.1f}x of baseline "
            f"{args.baseline} "
            f"({baseline['metrics']['chunks_per_second']:,.0f} chunks/s)"
        )
    return 0


def _trace_generate(args: argparse.Namespace) -> int:
    from .backends.fast import cached_overlay
    from .kademlia.buckets import BucketLimits
    from .kademlia.overlay import OverlayConfig
    from .workloads.distributions import OriginatorPool
    from .workloads.generators import DownloadWorkload
    from .workloads.traces import WorkloadTrace

    overlay = cached_overlay(OverlayConfig(
        n_nodes=args.nodes, bits=args.bits,
        limits=BucketLimits.uniform(4), seed=args.overlay_seed,
    ))
    workload = DownloadWorkload(
        n_files=args.files,
        originators=OriginatorPool(share=args.share),
        seed=args.seed,
    )
    events = workload.materialize(overlay.address_array(), overlay.space)
    trace = WorkloadTrace(
        events, bits=args.bits, n_nodes=args.nodes,
        overlay_seed=args.overlay_seed,
    )
    trace.save(args.path)
    print(f"trace written to {args.path}: {trace.summary()}")
    return 0


def _trace_replay(args: argparse.Namespace) -> int:
    from .backends.fast import FastSimulation, FastSimulationConfig
    from .workloads.traces import TraceWorkload, WorkloadTrace

    trace = WorkloadTrace.load(args.path)
    # The versioned header carries the overlay the trace was captured
    # for; flags default to it (legacy headerless traces fall back to
    # the historical defaults) and explicit mismatching flags are
    # rejected inside TraceWorkload/overlay validation below.
    nodes = args.nodes if args.nodes is not None else (
        trace.n_nodes if trace.n_nodes is not None else 1000
    )
    bits = args.bits if args.bits is not None else (
        trace.bits if trace.bits is not None else 16
    )
    overlay_seed = args.overlay_seed if args.overlay_seed is not None else (
        trace.overlay_seed if trace.overlay_seed is not None else 42
    )
    if (trace.overlay_seed is not None
            and overlay_seed != trace.overlay_seed):
        from .errors import WorkloadError

        raise WorkloadError(
            f"trace {args.path} was recorded on overlay seed "
            f"{trace.overlay_seed} but --overlay-seed {overlay_seed} "
            f"was given; replay traces against the overlay they were "
            f"generated for"
        )
    config = FastSimulationConfig(
        n_nodes=nodes, bits=bits,
        bucket_size=args.bucket_size, overlay_seed=overlay_seed,
        n_files=len(trace),
    )
    result = FastSimulation(config).run(TraceWorkload(trace))
    print(f"replayed {args.path}: {trace.summary()}")
    print(result.summary())
    return 0


def _trace_record_dynamics(args: argparse.Namespace) -> int:
    from .backends.config import FastSimulationConfig
    from .scenarios.trace import record_dynamics

    config = FastSimulationConfig(
        n_nodes=args.nodes, bits=args.bits, n_files=args.files,
        batch_files=args.batch_files, overlay_seed=args.overlay_seed,
        scenario=args.scenario,
    )
    stack = config.scenario_stack()
    assert stack is not None  # --scenario is required
    trace = record_dynamics(stack, config.scenario_context())
    trace.save(args.path)
    print(f"dynamics trace written to {args.path}: {trace.describe()}")
    return 0


def _trace_replay_dynamics(args: argparse.Namespace) -> int:
    from .backends.fast import FastSimulation, FastSimulationConfig
    from .scenarios.trace import DynamicsTrace

    path = str(args.path)
    # '=' is fine: the grammar splits key=value on the first '=' only.
    reserved = [c for c in "+," if c in path]
    if reserved:
        raise ExperimentError(
            f"trace path {path!r} contains the scenario-grammar "
            f"character(s) {reserved}; rename the file or construct "
            f"repro.scenarios.TraceReplay directly"
        )
    header = DynamicsTrace.load(args.path)
    spec = f"trace:path={path}"
    if args.compose:
        spec = f"{spec}+{args.compose}"
    config = FastSimulationConfig(
        n_nodes=header.n_nodes, bits=header.bits,
        overlay_seed=header.overlay_seed, n_files=args.files,
        batch_files=args.batch_files, bucket_size=args.bucket_size,
        workload_seed=args.workload_seed, scenario=spec,
    )
    result = FastSimulation(config).run()
    print(f"replaying dynamics from {args.path}: {header.describe()}")
    print(result.summary())
    return 0


def _serve_run(args: argparse.Namespace) -> int:
    from .backends.config import FastSimulationConfig
    from .serve import open_input, run_serve

    if args.scenario is not None and args.epochs is None:
        raise ExperimentError(
            "--scenario serving needs --epochs: epoch schedules are "
            "sized up front (use the expected stream length in "
            "micro-epochs)"
        )
    config = FastSimulationConfig(
        n_nodes=args.nodes, bits=args.bits,
        bucket_size=args.bucket_size, overlay_seed=args.overlay_seed,
        batch_files=args.max_batch, scenario=args.scenario or "",
    )
    source = open_input(args.input)
    try:
        run_serve(
            config, source, sys.stdout,
            max_batch=args.max_batch,
            flush_interval=args.flush_interval,
            n_epochs=args.epochs, batch_mode=args.batch,
        )
    finally:
        if source is not sys.stdin:
            source.close()
    return 0


def _trace_import_requests(args: argparse.Namespace) -> int:
    from .backends.fast import cached_overlay
    from .kademlia.buckets import BucketLimits
    from .kademlia.overlay import OverlayConfig
    from .workloads.ingest import import_requests

    overlay = cached_overlay(OverlayConfig(
        n_nodes=args.nodes, bits=args.bits,
        limits=BucketLimits.uniform(4), seed=args.overlay_seed,
    ))
    if args.log == "-":
        summary = import_requests(sys.stdin, args.out, overlay=overlay)
    else:
        with open(args.log, "r", encoding="utf-8") as handle:
            summary = import_requests(handle, args.out, overlay=overlay)
    print(f"trace written to {args.out}: {summary}")
    return 0


def _trace_import_dynamics(args: argparse.Namespace) -> int:
    from .backends.fast import cached_overlay
    from .kademlia.buckets import BucketLimits
    from .kademlia.overlay import OverlayConfig
    from .scenarios.ingest import import_dynamics

    overlay = cached_overlay(OverlayConfig(
        n_nodes=args.nodes, bits=args.bits,
        limits=BucketLimits.uniform(4), seed=args.overlay_seed,
    ))
    source_label = (
        "import:stdin" if args.log == "-"
        else f"import:{Path(args.log).name}"
    )
    kwargs = dict(
        overlay=overlay, n_epochs=args.epochs,
        epoch_seconds=args.epoch_seconds,
        recompute_storers=args.recompute, source=source_label,
    )
    if args.log == "-":
        trace, summary = import_dynamics(sys.stdin, **kwargs)
    else:
        with open(args.log, "r", encoding="utf-8") as handle:
            trace, summary = import_dynamics(handle, **kwargs)
    trace.save(args.out)
    print(f"dynamics trace written to {args.out}: {summary}")
    return 0


def _overlay_build(args: argparse.Namespace) -> int:
    from .kademlia.buckets import BucketLimits
    from .kademlia.overlay import Overlay, OverlayConfig
    from .kademlia.topology import degree_stats

    overlay = Overlay.build(OverlayConfig(
        n_nodes=args.nodes, bits=args.bits,
        limits=BucketLimits.uniform(args.bucket_size), seed=args.seed,
    ))
    overlay.save(args.path)
    print(f"overlay written to {args.path}: {degree_stats(overlay)}")
    return 0


def _overlay_inspect(args: argparse.Namespace) -> int:
    from .analysis.table_viz import (
        render_bucket_occupancy,
        render_routing_table,
    )
    from .kademlia.overlay import Overlay
    from .kademlia.topology import degree_stats

    overlay = Overlay.load(args.path)
    print(degree_stats(overlay))
    node = args.node if args.node is not None else overlay.addresses[0]
    print()
    print(render_routing_table(overlay.table(node)))
    print()
    print(render_bucket_occupancy(overlay.table(node)))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for spec in list_experiments():
            artifact = f" [{spec.paper_artifact}]" if spec.paper_artifact else ""
            print(f"{spec.name:<12} {spec.description}{artifact}")
        return 0

    if args.command == "backends":
        from .backends import backend_specs

        for name, description in backend_specs():
            print(f"{name:<12} {description}")
        return 0

    if args.command == "sweep":
        return _sweep_run(args)

    if args.command == "sweep-serve":
        return _sweep_serve_run(args)

    if args.command == "sweep-work":
        return _sweep_work_run(args)

    if args.command == "bench":
        return _bench_run(args)

    if args.command == "serve":
        return _serve_run(args)

    if args.command == "trace":
        if args.trace_command == "generate":
            return _trace_generate(args)
        if args.trace_command == "record-dynamics":
            return _trace_record_dynamics(args)
        if args.trace_command == "replay-dynamics":
            return _trace_replay_dynamics(args)
        if args.trace_command == "import-requests":
            return _trace_import_requests(args)
        if args.trace_command == "import-dynamics":
            return _trace_import_dynamics(args)
        return _trace_replay(args)

    if args.command == "overlay":
        if args.overlay_command == "build":
            return _overlay_build(args)
        return _overlay_inspect(args)

    names = (
        [spec.name for spec in list_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    outputs = []
    for name in names:
        output = _run_one(name, args)
        print(output)
        print()
        outputs.append(output)
    if args.out is not None:
        args.out.write_text("\n\n".join(outputs) + "\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
