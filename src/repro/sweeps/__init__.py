"""Parallel multi-seed sweep engine.

The paper reports single-seed point estimates; this package turns any
:class:`~repro.backends.config.FastSimulationConfig` experiment into a
replicated, parallelizable sweep:

* :mod:`~repro.sweeps.spec` — declarative :class:`SweepSpec` (field
  grid x :mod:`~repro.backends` registry names x seed replicas, with
  :class:`numpy.random.SeedSequence`-derived replica seeds);
* :mod:`~repro.sweeps.executors` — serial and spawn-safe
  process-pool execution with identical results;
* :mod:`~repro.sweeps.aggregate` — per-cell mean / std / 95% CI
  across replicas (forwarded chunks, Gini fairness, net balance);
* :mod:`~repro.sweeps.store` — deterministic, resumable, diffable
  JSON result store with git/seed provenance, durable (fsync'd)
  atomic saves, and best-effort salvage of corrupt files;
* :mod:`~repro.sweeps.resilience` — failure envelopes, deterministic
  retry policy, and the quarantine bookkeeping behind
  ``--max-retries`` / ``--keep-going``;
* :mod:`~repro.sweeps.chaos` — deterministic fault injection
  (exception / crash / kill / hang per ``(point_id, attempt)``) used
  to exercise every recovery path in tests and CI;
* :mod:`~repro.sweeps.engine` — :func:`run_sweep`, the entry point
  behind ``repro-swarm sweep`` and the replicated registry
  experiments in :mod:`repro.experiments.sweeps`;
* :mod:`~repro.sweeps.queue_daemon` — the stdlib HTTP work queue
  behind ``repro-swarm sweep-serve`` (leases, global retry budget,
  lease-expiry crash accounting);
* :mod:`~repro.sweeps.distributed` — :func:`sweep_work` pull-based
  hosts, the in-process :class:`DistributedExecutor` behind
  ``sweep --workers N``, and byte-identical shard-store merging via
  :meth:`SweepStore.merge <repro.sweeps.store.SweepStore.merge>`;
* :mod:`~repro.sweeps.progress` — the rate-limited
  ``completed/total · points/s · ETA`` stderr reporter shared by
  every executor.
"""

from .aggregate import CellSummary, MetricSummary, aggregate_records
from .chaos import Fault, FaultPlan, InjectedFault
from .distributed import DistributedExecutor, sweep_serve, sweep_work
from .engine import SweepResult, outcome_record, run_sweep, sweep_status
from .executors import (
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    make_executor,
    resolve_jobs,
    table_topologies,
)
from .progress import ProgressReporter
from .queue_daemon import QueueState, SweepQueueDaemon
from .resilience import (
    PointFailure,
    PointResult,
    RetryPolicy,
    failure_digest,
)
from .spec import (
    SweepPoint,
    SweepSpec,
    parse_grid_arguments,
    parse_grid_value,
    replica_seed,
    replica_seeds,
    sweepable_fields,
)
from .store import SweepStore, merge_provenance
from .worker import (
    PointOutcome,
    execute_point,
    point_from_payload,
    result_metrics,
)

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepResult",
    "SweepStore",
    "SweepExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "PointOutcome",
    "PointFailure",
    "PointResult",
    "ProgressReporter",
    "QueueState",
    "RetryPolicy",
    "SweepQueueDaemon",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "CellSummary",
    "MetricSummary",
    "aggregate_records",
    "execute_point",
    "failure_digest",
    "make_executor",
    "merge_provenance",
    "outcome_record",
    "parse_grid_arguments",
    "parse_grid_value",
    "point_from_payload",
    "replica_seed",
    "replica_seeds",
    "resolve_jobs",
    "result_metrics",
    "run_sweep",
    "sweep_serve",
    "sweep_status",
    "sweep_work",
    "sweepable_fields",
    "table_topologies",
]
