"""Distributed sweep execution over the HTTP work queue.

Three cooperating pieces, all reusing the existing sweep machinery:

* :class:`DistributedExecutor` — a drop-in
  :class:`~repro.sweeps.executors.SweepExecutor`: it starts an
  in-process :class:`~repro.sweeps.queue_daemon.SweepQueueDaemon`,
  launches ``repro-swarm sweep-work`` host subprocesses pointed at it,
  and drains settlement events back into the ordinary
  ``on_result``/``on_failure`` callbacks — so ``run_sweep(spec,
  workers=2)`` writes the exact same store as ``jobs=4`` or serial.
* :func:`sweep_work` — the host loop behind ``repro-swarm
  sweep-work``: lease a batch, run it through the *local* executor
  stack (:func:`~repro.sweeps.executors.make_executor` — a process
  pool when ``--jobs >= 2``, with the PR 3/6 shared-table publication
  building each unique topology once per machine), persist every
  settlement to a durable per-host **shard**
  :class:`~repro.sweeps.store.SweepStore`, report back, repeat until
  the queue says done.
* :func:`sweep_serve` — the standalone daemon behind ``repro-swarm
  sweep-serve`` for multi-machine runs where no single coordinator
  process wraps the workers.

Retry authority lives in the queue (see
:mod:`repro.sweeps.queue_daemon`): hosts run a **zero-retry** local
policy seeded with each lease's global failed-attempt count, so any
local failure — exception, pool-worker crash, watchdog timeout —
quarantines locally with the globally-correct attempt number and is
reported for the daemon to arbitrate: requeue (possibly to another
host) while budget remains, else terminal. The daemon's authoritative
terminal record comes back in the ``/fail`` response and is what the
host writes to its shard, which is why merging the shards
(:meth:`~repro.sweeps.store.SweepStore.merge`) reproduces the
coordinator's store byte-for-byte.

Crash ordering invariant: a host saves its shard **before** POSTing
``/complete``. If it dies between the two, the daemon re-leases the
point and the deterministic re-run produces an identical record —
the duplicate completion dedups at the daemon and the shard merge
tolerates the overlap (identical records union cleanly).
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
import warnings
from contextlib import ExitStack
from pathlib import Path
from typing import Mapping, Sequence

from ..backends.config import FastSimulationConfig
from ..errors import ConfigurationError, SweepExecutionError
from .chaos import HOST_PID_ENV
from .executors import OnFailure, OnResult, SweepExecutor, make_executor
from .queue_daemon import QueueState, SweepQueueDaemon
from .resilience import PointFailure, RetryPolicy
from .spec import SweepPoint, SweepSpec
from .store import SweepStore
from .worker import PointOutcome, point_from_payload

__all__ = ["DistributedExecutor", "sweep_serve", "sweep_work"]


# ----------------------------------------------------------------------
# HTTP client helpers (stdlib urllib; no dependencies)


def _request(url: str, payload: Mapping | None = None, *,
             timeout: float = 10.0, retries: int = 5,
             backoff: float = 0.2) -> dict:
    """One JSON request (GET, or POST when *payload* is given).

    Connection-level failures retry with linear backoff — the daemon
    may still be binding, or a threaded accept may be momentarily
    behind. HTTP-level errors (4xx/5xx) are protocol bugs and raise
    immediately.
    """
    data = None if payload is None else json.dumps(payload).encode()
    last: Exception | None = None
    for attempt in range(max(1, retries)):
        try:
            request = urllib.request.Request(
                url, data=data,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=timeout
                                        ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace")[:200]
            raise SweepExecutionError(
                f"work queue rejected {url}: HTTP {error.code} {detail}"
            ) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                OSError, json.JSONDecodeError) as error:
            last = error
            time.sleep(backoff * (attempt + 1))
    raise SweepExecutionError(
        f"work queue unreachable at {url} after {retries} attempt(s): "
        f"{last}"
    )


# ----------------------------------------------------------------------
# Host side: the sweep-work loop


class _Heartbeat(threading.Thread):
    """Renews this host's leases so a live-but-slow point never expires."""

    def __init__(self, queue_url: str, worker_id: str,
                 interval: float) -> None:
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self.queue_url = queue_url
        self.worker_id = worker_id
        self.interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                _request(f"{self.queue_url}/heartbeat",
                         {"worker": self.worker_id}, retries=1)
            except SweepExecutionError:
                # The daemon is gone or busy; the main loop will find
                # out on its next lease. A missed beat is harmless as
                # long as one lands within the lease timeout.
                pass

    def stop(self) -> None:
        self._stop.set()


def sweep_work(queue_url: str, *, store_path: Path,
               worker_id: str | None = None, jobs: int = 1,
               share_tables: bool = True, cap_jobs: bool = False,
               epoch_cache_tables: int | None = None,
               point_timeout: float | None = None,
               max_pool_restarts: int = 8,
               poll_interval: float = 0.5) -> int:
    """Run the pull-based host loop against a sweep work queue.

    Fetches the spec from the daemon, opens (resuming) the durable
    shard store at *store_path*, then leases batches of ``jobs``
    points and runs each batch through the ordinary local executor
    stack until the queue reports done. Exports
    :data:`~repro.sweeps.chaos.HOST_PID_ENV` first, so ``kill-host``
    chaos faults fired in this host's pool children can find it.

    Returns a process exit code: 0 when the queue finished (this
    host's leased points all settled), nonzero when the queue became
    unreachable.
    """
    queue_url = queue_url.rstrip("/")
    worker_id = worker_id or f"host-{os.getpid()}"
    # Exported before any pool spawn so children inherit it.
    os.environ[HOST_PID_ENV] = str(os.getpid())

    handshake = _request(f"{queue_url}/spec", retries=40, backoff=0.25)
    spec = SweepSpec.from_json(handshake["spec"])
    lease_timeout = float(handshake.get("lease_timeout", 300.0))
    base_points = spec.points()

    store = SweepStore.open(Path(store_path), spec, resume=True)
    store.save()  # an idle host still leaves a valid (empty) shard

    executor = make_executor(
        jobs,
        share_tables=share_tables,
        cap_jobs=cap_jobs,
        epoch_cache_tables=epoch_cache_tables,
        # Zero local retries: the daemon owns the budget. Any local
        # failure quarantines at the leased (global) attempt number
        # and is reported for the daemon to arbitrate.
        retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0),
        keep_going=True,
        point_timeout=point_timeout,
        max_pool_restarts=max_pool_restarts,
    )

    heartbeat = _Heartbeat(
        queue_url, worker_id,
        interval=min(30.0, max(0.05, lease_timeout / 4.0)),
    )
    heartbeat.start()

    # /complete and /fail responses carry "done"; remembering it here
    # lets the host that settles the queue's final point exit without
    # racing one more /lease poll against the coordinator tearing the
    # daemon down.
    queue_done = threading.Event()

    def on_result(outcome: PointOutcome) -> None:
        from .engine import outcome_record

        record = outcome_record(outcome)
        # Shard first, then report: if this host dies in between, the
        # daemon re-leases and the deterministic re-run settles with
        # an identical record — never a lost or torn result.
        store.add(record)
        store.save()
        response = _request(f"{queue_url}/complete", {
            "worker": worker_id,
            "record": record,
            "index": outcome.index,
            "elapsed": outcome.elapsed,
        }, retries=10)
        if response.get("done"):
            queue_done.set()

    def on_failure(failure: PointFailure) -> None:
        verdict = _request(f"{queue_url}/fail", {
            "worker": worker_id,
            "point_id": failure.point_id,
            "kind": failure.kind,
            "error": failure.error,
            "digest": failure.digest,
        }, retries=10)
        terminal = verdict.get("failure")
        if terminal is not None:
            # The daemon's record is authoritative (globally-numbered
            # attempts); writing it verbatim keeps this shard
            # merge-identical to the coordinator's store.
            store.add_failure(terminal)
            store.save()
        if verdict.get("done"):
            queue_done.set()

    try:
        with ExitStack() as stack:
            if share_tables and jobs > 1:
                from ..perf.shared import pinned_tables

                # One eager build + publication per topology for the
                # whole host session; per-batch executor publication
                # then only bumps refcounts on the pinned segments.
                stack.enter_context(pinned_tables(spec.base, base_points))
            while True:
                if queue_done.is_set():
                    return 0
                response = _request(
                    f"{queue_url}/lease",
                    {"worker": worker_id, "count": jobs},
                    retries=10,
                )
                leased = response.get("points", [])
                if leased:
                    batch = [point_from_payload(entry["point"])
                             for entry in leased]
                    attempts = {
                        point.point_id: int(entry["attempt"])
                        for point, entry in zip(batch, leased)
                    }
                    executor.run(spec.base, batch, on_result, on_failure,
                                 attempts=attempts)
                elif response.get("done"):
                    return 0
                else:
                    time.sleep(response.get("retry_after")
                               or poll_interval)
    except SweepExecutionError as error:
        print(f"sweep-work {worker_id}: {error}", file=sys.stderr)
        return 3
    finally:
        heartbeat.stop()


# ----------------------------------------------------------------------
# Coordinator side


def _settle_event(event: tuple, outcomes: list,
                  on_result: OnResult | None,
                  on_failure: OnFailure | None, keep_going: bool) -> None:
    """Dispatch one daemon settlement event to the engine callbacks."""
    kind = event[0]
    if kind == "result":
        _, record, index, elapsed = event
        outcome = PointOutcome(
            point_id=record["point_id"],
            index=int(index),
            backend=record["backend"],
            overrides=dict(record["overrides"]),
            replica=int(record["replica"]),
            workload_seed=int(record["workload_seed"]),
            metrics=dict(record["metrics"]),
            vectors={},  # per-node arrays stay on the executing host
            elapsed=float(elapsed),
        )
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    elif kind == "failure":
        failure = event[1]
        if on_failure is not None:
            on_failure(failure)
        if not keep_going:
            raise SweepExecutionError(
                f"sweep aborted (fail-fast): {failure.describe()}"
            )


class DistributedExecutor(SweepExecutor):
    """Fan sweep points out over host subprocesses via the work queue.

    Satisfies the same :class:`~repro.sweeps.executors.SweepExecutor`
    protocol as the serial and process executors — ``run`` blocks,
    streams settlements through the callbacks, and returns outcomes in
    canonical order — so :func:`~repro.sweeps.engine.run_sweep` and
    the CLI need nothing beyond new flags. Because it must serve the
    *full* spec to hosts over ``GET /spec`` (hosts validate shard
    stores against it), it is constructed with the spec, via
    ``make_executor(jobs, workers=..., spec=...)``.

    Worker hosts here are localhost subprocesses (the useful
    parallelism unit for one machine with many cores, and the test
    harness for the protocol); pointing real remote machines at the
    same queue is ``repro-swarm sweep-serve`` plus ``sweep-work
    --queue http://coordinator:port`` — the protocol is identical.

    A host subprocess that dies (crash, OOM, ``kill-host`` chaos
    fault) is detected by the coordinator, its leases are expired
    immediately — charging each in-flight point exactly one ``crash``
    attempt, like a lost pool worker — and the host is relaunched
    against the same shard store (resuming it) up to
    ``max_pool_restarts`` times across the run.
    """

    def __init__(self, workers: int, *, spec: SweepSpec, jobs: int = 1,
                 share_tables: bool = True, cap_jobs: bool = False,
                 epoch_cache_tables: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 keep_going: bool = True,
                 point_timeout: float | None = None,
                 max_pool_restarts: int = 8,
                 lease_timeout: float = 300.0,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_dir: Path | None = None) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.workers = workers
        self.spec = spec
        self.jobs = jobs
        self.share_tables = share_tables
        self.cap_jobs = cap_jobs
        self.epoch_cache_tables = epoch_cache_tables
        self.retry_policy = retry_policy or RetryPolicy()
        self.keep_going = keep_going
        self.point_timeout = point_timeout
        self.max_pool_restarts = max_pool_restarts
        self.lease_timeout = lease_timeout
        self.host = host
        self.port = port
        self.shard_dir = None if shard_dir is None else Path(shard_dir)

    # ------------------------------------------------------------------
    # Host subprocess management

    def _host_command(self, url: str, worker_id: str,
                      shard: Path) -> list[str]:
        command = [
            sys.executable, "-m", "repro.cli", "sweep-work",
            "--queue", url,
            "--store", str(shard),
            "--worker-id", worker_id,
            "--jobs", str(self.jobs),
            "--max-pool-restarts", str(self.max_pool_restarts),
        ]
        if not self.share_tables:
            command.append("--no-table-cache")
        if self.cap_jobs:
            command.append("--cap-jobs")
        if self.epoch_cache_tables is not None:
            command += ["--epoch-cache-tables",
                        str(self.epoch_cache_tables)]
        if self.point_timeout is not None:
            command += ["--point-timeout", str(self.point_timeout)]
        return command

    @staticmethod
    def _host_environment() -> dict[str, str]:
        """The subprocess env, with :mod:`repro` importable for sure.

        Host processes inherit everything else — including
        ``REPRO_FAULT_PLAN`` and instrumentation variables like
        ``REPRO_TABLE_BUILD_LOG`` — which is how chaos plans and build
        accounting reach the hosts' own pool children.
        """
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        if existing:
            if package_root not in existing.split(os.pathsep):
                env["PYTHONPATH"] = os.pathsep.join(
                    [package_root, existing]
                )
        else:
            env["PYTHONPATH"] = package_root
        return env

    @staticmethod
    def _terminate_hosts(hosts: list[dict]) -> None:
        for entry in hosts:
            process = entry["process"]
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5.0
        for entry in hosts:
            process = entry["process"]
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    # ------------------------------------------------------------------
    # Execution

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None,
            on_failure: OnFailure | None = None,
            attempts: Mapping[str, int] | None = None
            ) -> list[PointOutcome]:
        if not points:
            return []
        if base != self.spec.base:
            raise ConfigurationError(
                "the distributed executor serves its spec to worker "
                "hosts; run() must be called with that spec's base "
                "config"
            )
        state = QueueState(
            self.spec, points,
            retry_policy=self.retry_policy,
            lease_timeout=self.lease_timeout,
            attempts=attempts,
        )
        daemon = SweepQueueDaemon(state, host=self.host, port=self.port)
        daemon.start()

        temp_dir: tempfile.TemporaryDirectory | None = None
        if self.shard_dir is None:
            temp_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
            shard_dir = Path(temp_dir.name)
        else:
            shard_dir = self.shard_dir
            shard_dir.mkdir(parents=True, exist_ok=True)

        environment = self._host_environment()
        hosts: list[dict] = []
        outcomes: list[PointOutcome] = []
        restarts = 0
        try:
            for index in range(min(self.workers, len(points))):
                worker_id = f"host-{index:02d}"
                shard = shard_dir / f"{worker_id}.json"
                command = self._host_command(daemon.url, worker_id, shard)
                hosts.append({
                    "id": worker_id,
                    "command": command,
                    "process": subprocess.Popen(command, env=environment),
                    "exhausted": False,
                })
            while not state.finished:
                try:
                    event = state.events.get(timeout=0.25)
                except queue.Empty:
                    event = None
                if event is not None:
                    _settle_event(event, outcomes, on_result,
                                  on_failure, self.keep_going)
                    continue
                state.expire_overdue()
                restarts = self._reap_hosts(hosts, state, restarts)
                if (not state.finished
                        and all(entry["process"].poll() is not None
                                for entry in hosts)
                        and all(entry["exhausted"] or
                                entry["process"].returncode == 0
                                for entry in hosts)):
                    raise SweepExecutionError(
                        "every sweep-work host exited with work still "
                        "pending; see the hosts' stderr above (their "
                        "shard stores hold all completed points)"
                    )
            # The queue settled; drain stragglers already emitted.
            while True:
                try:
                    event = state.events.get_nowait()
                except queue.Empty:
                    break
                _settle_event(event, outcomes, on_result,
                              on_failure, self.keep_going)
            # Hosts exit by themselves on their next (done) lease poll.
            for entry in hosts:
                try:
                    entry["process"].wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        finally:
            self._terminate_hosts(hosts)
            daemon.close()
            if temp_dir is not None:
                temp_dir.cleanup()
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    def _reap_hosts(self, hosts: list[dict], state: QueueState,
                    restarts: int) -> int:
        """Detect dead host subprocesses; expire their leases; relaunch.

        A clean exit (code 0) is a host that saw ``done`` — or was
        done early — and needs nothing. Anything else charges its
        in-flight leases one ``crash`` attempt immediately (no need to
        wait out the lease timeout: the coordinator *knows* the host
        is dead) and relaunches against the same shard store, within
        the shared ``max_pool_restarts`` budget.
        """
        for entry in hosts:
            process = entry["process"]
            code = process.poll()
            if code is None or entry.get("reaped") == process.pid:
                continue
            entry["reaped"] = process.pid
            expired = state.expire_worker(entry["id"])
            if code == 0 or state.finished or entry["exhausted"]:
                continue
            restarts += 1
            if restarts > self.max_pool_restarts:
                entry["exhausted"] = True
                warnings.warn(
                    f"sweep-work host {entry['id']} died (exit {code}) "
                    f"but the restart budget "
                    f"(max_pool_restarts={self.max_pool_restarts}) is "
                    f"exhausted; its work is re-leased to surviving "
                    f"hosts",
                    RuntimeWarning,
                )
                continue
            warnings.warn(
                f"sweep-work host {entry['id']} died (exit {code}, "
                f"{len(expired)} leased point(s) re-queued); "
                f"relaunching (restart {restarts}/"
                f"{self.max_pool_restarts})",
                RuntimeWarning,
            )
            entry["process"] = subprocess.Popen(
                entry["command"], env=self._host_environment()
            )
            entry.pop("reaped", None)
        return restarts


# ----------------------------------------------------------------------
# Standalone daemon (multi-machine front door)


def sweep_serve(spec: SweepSpec, *, host: str = "127.0.0.1",
                port: int = 0, lease_timeout: float = 300.0,
                max_retries: int = 2, retry_backoff: float = 0.05,
                store_path: Path | None = None, resume: bool = True,
                salvage: bool = False,
                status_interval: float = 10.0,
                linger: float = 2.0) -> int:
    """Serve *spec*'s points over HTTP until every one settles.

    The standalone form of the coordinator for multi-machine sweeps:
    start this on one machine, point ``repro-swarm sweep-work --queue
    http://host:port`` at it from the others. With *store_path* the
    daemon maintains the merged main store incrementally (each
    settlement is persisted as it arrives, resumable like any sweep
    store); without it, the per-host shard stores plus ``repro-swarm
    sweep --merge-stores`` reconstruct the same bytes afterwards.

    After the last point settles the daemon lingers *linger* seconds
    before closing, so idle hosts' next ``/lease`` poll observes
    ``done`` and exits 0 instead of hitting a closed socket. (The
    host that settles the final point needs no grace: ``/complete``
    and ``/fail`` responses carry ``done`` directly.)

    Returns the number of terminally quarantined points (0 = clean).
    """
    points = spec.points()
    store = None
    completed: set[str] = set()
    if store_path is not None:
        store = SweepStore.open(Path(store_path), spec, resume=resume,
                                salvage=salvage)
        completed = store.completed_ids()
    pending = [point for point in points
               if point.point_id not in completed]
    if store is not None:
        for point in pending:
            store.failures.pop(point.point_id, None)
        store.save()

    state = QueueState(
        spec, pending,
        retry_policy=RetryPolicy(max_retries=max_retries,
                                 backoff_base=retry_backoff),
        lease_timeout=lease_timeout,
    )
    daemon = SweepQueueDaemon(state, host=host, port=port)
    daemon.start()
    print(f"sweep queue serving {len(pending)} pending point(s) "
          f"(of {len(points)}) at {daemon.url}")
    quarantined = 0
    next_status = time.monotonic() + status_interval

    def persist(event: tuple) -> None:
        nonlocal quarantined
        if event[0] == "result":
            _, record, _, _ = event
            if store is not None:
                store.add(dict(record))
                store.save()
        elif event[0] == "failure":
            quarantined += 1
            failure = event[1]
            print(f"quarantined: {failure.describe()}",
                  file=sys.stderr)
            if store is not None:
                store.add_failure(failure.record())
                store.save()

    try:
        while not state.finished:
            try:
                event = state.events.get(timeout=0.25)
            except queue.Empty:
                event = None
            if event is not None:
                persist(event)
                continue
            state.expire_overdue()
            now = time.monotonic()
            if now >= next_status:
                counts = state.status()
                print(
                    f"status: {counts['completed']}/{counts['total']} "
                    f"completed, {counts['leased']} leased, "
                    f"{counts['pending']} pending, "
                    f"{counts['quarantined']} quarantined",
                    file=sys.stderr,
                )
                next_status = now + status_interval
        # The queue settled; drain settlements emitted after the loop's
        # last get() but before finished flipped.
        while True:
            try:
                event = state.events.get_nowait()
            except queue.Empty:
                break
            persist(event)
        time.sleep(max(0.0, linger))
    except KeyboardInterrupt:
        print("sweep-serve interrupted; completed points are persisted",
              file=sys.stderr)
        return 130
    finally:
        daemon.close()
    if store is not None and not state.points:
        store.save()
    print(f"sweep queue drained: {len(state.completed)} completed, "
          f"{quarantined} quarantined")
    return quarantined
