"""Declarative sweep specifications.

A :class:`SweepSpec` names everything a multi-point experiment needs:
a base :class:`~repro.backends.config.FastSimulationConfig`, a
parameter grid over its fields, the
:mod:`~repro.backends` registry names to run each cell on, and the
number of seed replicas per cell. :meth:`SweepSpec.points` expands the
spec into the canonical ordered list of :class:`SweepPoint` runnable
units the executors in :mod:`repro.sweeps.executors` consume.

Replica workload seeds are derived with
:class:`numpy.random.SeedSequence` spawning: replica ``r`` draws its
seed from ``SeedSequence(seed_entropy).spawn(r + 1)[r]``, which
depends only on ``(seed_entropy, r)`` — never on execution order or
process layout — so parallel sweeps are reproducible and
order-independent by construction. Every grid cell and backend shares
the same replica seeds: the paper's replay-for-comparison methodology
(one frozen workload re-run across configurations) extended to a
replicated workload set.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from dataclasses import dataclass
from itertools import product
from typing import Any, Mapping, Sequence

import numpy as np

from ..backends.config import FastSimulationConfig
from ..errors import ConfigurationError

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "replica_seed",
    "replica_seeds",
    "sweepable_fields",
    "parse_grid_value",
    "parse_grid_arguments",
]

#: Config fields a grid may not touch: the replica dimension owns the
#: workload seed, and expansion owns nothing else.
RESERVED_FIELDS = ("workload_seed",)


def sweepable_fields() -> dict[str, Any]:
    """``FastSimulationConfig`` field name -> resolved type annotation."""
    hints = typing.get_type_hints(FastSimulationConfig)
    return {
        f.name: hints[f.name]
        for f in dataclasses.fields(FastSimulationConfig)
        if f.name not in RESERVED_FIELDS
    }


def replica_seed(seed_entropy: int, replica: int) -> int:
    """The 64-bit workload seed for one replica index.

    Uses :meth:`numpy.random.SeedSequence.spawn`: child ``r`` of
    ``SeedSequence(seed_entropy)`` is fully determined by the entropy
    and ``r``, so the mapping is stable no matter which points run,
    where, or in what order.
    """
    if replica < 0:
        raise ConfigurationError(f"replica must be >= 0, got {replica}")
    return replica_seeds(seed_entropy, replica + 1)[replica]


def replica_seeds(seed_entropy: int, n: int) -> tuple[int, ...]:
    """Workload seeds for replicas ``0..n-1``."""
    children = np.random.SeedSequence(seed_entropy).spawn(n)
    seeds = []
    for child in children:
        state = child.generate_state(2, dtype=np.uint32)
        seeds.append((int(state[0]) << 32) | int(state[1]))
    return tuple(seeds)


@dataclass(frozen=True)
class SweepPoint:
    """One runnable ``(backend, grid cell, seed replica)`` unit.

    ``index`` is the position in the spec's canonical expansion order;
    ``point_id`` is a stable, order-independent identity used by the
    JSON result store for resume and diffing.
    """

    index: int
    backend: str
    overrides: tuple[tuple[str, Any], ...]
    replica: int
    workload_seed: int

    @property
    def point_id(self) -> str:
        """Stable store key, independent of expansion order."""
        cell = ",".join(
            f"{name}={value}" for name, value in sorted(self.overrides)
        )
        return f"{self.backend}|{cell}|r{self.replica}"

    def config(self, base: FastSimulationConfig) -> FastSimulationConfig:
        """The fully-bound configuration for this point."""
        return dataclasses.replace(
            base, **dict(self.overrides), workload_seed=self.workload_seed
        )


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid x scenarios x backends x seed replicas plan.

    ``grid`` maps :class:`FastSimulationConfig` field names to the
    values to sweep (normalized to an ordered tuple of pairs so the
    spec stays hashable); ``scenarios`` is a first-class axis of
    scenario composition strings (the
    :func:`~repro.scenarios.parse.parse_scenario` grammar) crossed
    with the grid — each expands to a ``scenario`` field override, so
    workers, the store, and aggregation treat it like any other cell
    dimension; ``seeds`` is the number of workload-seed replicas per
    cell, each derived from ``seed_entropy`` (see
    :func:`replica_seed`). Validation constructs every grid cell's
    configuration once, so bad fields, values, or scenario specs fail
    at spec-build time, not inside a worker process.
    """

    base: FastSimulationConfig = FastSimulationConfig()
    grid: Any = ()
    backends: tuple[str, ...] = ("fast",)
    seeds: int = 1
    seed_entropy: int = 2022
    scenarios: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        normalized = self._normalize_grid(self.grid)
        object.__setattr__(self, "grid", normalized)
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(
            self, "scenarios", tuple(str(s) for s in self.scenarios)
        )
        if not self.backends:
            raise ConfigurationError("a sweep needs at least one backend")
        if self.seeds < 1:
            raise ConfigurationError(
                f"seeds must be >= 1, got {self.seeds}"
            )
        known = sweepable_fields()
        for name, values in normalized:
            if name not in known:
                raise ConfigurationError(
                    f"unknown sweep field {name!r}; sweepable fields: "
                    f"{sorted(known)}"
                )
            if not values:
                raise ConfigurationError(
                    f"sweep field {name!r} has no values"
                )
        if self.scenarios and any(
            name == "scenario" for name, _ in normalized
        ):
            raise ConfigurationError(
                "the scenario axis is given twice: drop the "
                "--grid scenario=... entry or the scenarios= axis"
            )
        for cell in self.cells():
            # Surfaces type/range/scenario-grammar errors via the
            # config's own checks.
            dataclasses.replace(self.base, **dict(cell))

    @staticmethod
    def _normalize_grid(grid: Any) -> tuple[tuple[str, tuple], ...]:
        if isinstance(grid, Mapping):
            items: Sequence = tuple(grid.items())
        else:
            items = tuple(grid)
        normalized = []
        for name, values in items:
            if isinstance(values, (str, bytes)) or not isinstance(
                values, (Sequence, np.ndarray)
            ):
                values = (values,)
            normalized.append((str(name), tuple(values)))
        return tuple(normalized)

    # ------------------------------------------------------------------
    # Expansion

    def cells(self) -> list[tuple[tuple[str, Any], ...]]:
        """Grid x scenario cells (override assignments) in canonical order.

        The scenario axis expands innermost, as a trailing
        ``("scenario", spec)`` override on every grid cell — one more
        config field as far as workers and stores are concerned.
        """
        if not self.grid:
            grid_cells: list[tuple] = [()]
        else:
            names = [name for name, _ in self.grid]
            value_lists = [values for _, values in self.grid]
            grid_cells = [
                tuple(zip(names, combo)) for combo in product(*value_lists)
            ]
        if not self.scenarios:
            return grid_cells
        return [
            cell + (("scenario", scenario),)
            for cell in grid_cells
            for scenario in self.scenarios
        ]

    def workload_seeds(self) -> tuple[int, ...]:
        """The derived per-replica workload seeds (shared by all cells)."""
        return replica_seeds(self.seed_entropy, self.seeds)

    def points(self) -> tuple[SweepPoint, ...]:
        """Canonical expansion: backend-major, then cell, then replica."""
        seeds = self.workload_seeds()
        points = []
        index = 0
        for backend in self.backends:
            for cell in self.cells():
                for replica, seed in enumerate(seeds):
                    points.append(SweepPoint(
                        index=index,
                        backend=backend,
                        overrides=cell,
                        replica=replica,
                        workload_seed=seed,
                    ))
                    index += 1
        return tuple(points)

    def __len__(self) -> int:
        n_cells = 1
        for _, values in self.grid:
            n_cells *= len(values)
        if self.scenarios:
            n_cells *= len(self.scenarios)
        return len(self.backends) * n_cells * self.seeds

    # ------------------------------------------------------------------
    # JSON round-trip (the store persists specs for resume/diff)

    def to_json(self) -> dict:
        """Plain-data form, stable under JSON round-trips.

        ``scenarios`` is omitted when empty, so scenario-free stores
        stay byte-identical with those written before the axis
        existed.
        """
        payload = {
            "base": dataclasses.asdict(self.base),
            "grid": [[name, list(values)] for name, values in self.grid],
            "backends": list(self.backends),
            "seeds": self.seeds,
            "seed_entropy": self.seed_entropy,
        }
        if self.scenarios:
            payload["scenarios"] = list(self.scenarios)
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "SweepSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            base=FastSimulationConfig(**payload["base"]),
            grid=tuple(
                (name, tuple(values)) for name, values in payload["grid"]
            ),
            backends=tuple(payload["backends"]),
            seeds=int(payload["seeds"]),
            seed_entropy=int(payload["seed_entropy"]),
            scenarios=tuple(payload.get("scenarios", ())),
        )


# ----------------------------------------------------------------------
# Grid-argument parsing (the CLI's ``--grid field=v1,v2`` syntax)


def _parse_scalar(name: str, annotation: Any, text: str) -> Any:
    origin_types = (
        typing.get_args(annotation)
        if isinstance(annotation, types.UnionType)
        else (annotation,)
    )
    if type(None) in origin_types and text.lower() in ("none", "null"):
        return None
    target = next(t for t in origin_types if t is not type(None))
    try:
        if target is bool:
            lowered = text.lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(text)
        return target(text)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"cannot parse {text!r} as {annotation} for sweep field "
            f"{name!r}"
        ) from None


def parse_grid_value(name: str, text: str) -> tuple:
    """Parse one ``--grid`` value list for *name*, typed by the config."""
    fields = sweepable_fields()
    if name not in fields:
        reserved = [f for f in RESERVED_FIELDS if f == name]
        hint = (
            " (the seed replicas own the workload seed; use --seeds)"
            if reserved else ""
        )
        raise ConfigurationError(
            f"unknown sweep field {name!r}{hint}; sweepable fields: "
            f"{sorted(fields)}"
        )
    values = tuple(
        _parse_scalar(name, fields[name], part.strip())
        for part in text.split(",")
        if part.strip() != ""
    )
    if not values:
        raise ConfigurationError(f"--grid {name}= needs at least one value")
    return values


def parse_grid_arguments(items: Sequence[str]) -> dict[str, tuple]:
    """Parse repeated ``field=v1,v2`` CLI arguments into a grid dict."""
    grid: dict[str, tuple] = {}
    for item in items:
        name, separator, text = item.partition("=")
        name = name.strip()
        if not separator or not name:
            raise ConfigurationError(
                f"malformed --grid argument {item!r}; expected "
                f"field=value[,value...]"
            )
        if name in grid:
            raise ConfigurationError(
                f"sweep field {name!r} given more than once"
            )
        grid[name] = parse_grid_value(name, text)
    return grid
