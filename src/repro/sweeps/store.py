"""Deterministic JSON persistence for sweep runs.

A :class:`SweepStore` file records the full :class:`SweepSpec`, run
provenance (git commit, library versions, the derived replica seed
table), and one scalar-metrics record per completed point, keyed by
the point's stable ``point_id``. The layout is deliberately
deterministic — sorted keys, no timestamps, no timings — so that:

* re-running the same spec serially or with ``--jobs N`` produces a
  **byte-identical** file (the acceptance check for parallel
  correctness), and
* two sweeps at different configurations ``diff`` cleanly.

Stores are resumable: reopening an existing file with the same spec
skips completed points, while a different spec is refused rather than
silently mixed (pass ``resume=False`` to overwrite).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import ConfigurationError
from .spec import SweepSpec

__all__ = ["SweepStore", "git_provenance"]

FORMAT = "repro-swarm-sweep/1"


def _resumable(stored: SweepSpec, current: SweepSpec) -> bool:
    """Whether a store built for *stored* may serve *current*.

    Identical specs resume, and so does the same spec with a *raised*
    seed count — replica seeds are prefix-stable, so the recorded
    points are exactly the first replicas of the bigger sweep. A
    lowered count is refused: it would leave orphaned points in the
    store and break its byte-determinism.
    """
    if stored == current:
        return True
    return (current.seeds >= stored.seeds
            and dataclasses.replace(stored, seeds=current.seeds) == current)


def git_provenance(repo_dir: Path | None = None) -> dict:
    """Best-effort git commit/dirty state of the code that ran.

    Dirtiness considers tracked files only: result stores and other
    run artifacts written into the repository must not make two
    otherwise-identical sweeps disagree about provenance.
    """
    cwd = Path(repo_dir) if repo_dir is not None else Path(__file__).parent
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout.strip())
        return {"git_commit": commit, "git_dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"git_commit": None, "git_dirty": None}


class SweepStore:
    """Spec + per-point metric records, persisted as diffable JSON."""

    def __init__(self, path: Path, spec: SweepSpec,
                 points: dict[str, dict] | None = None,
                 provenance: dict | None = None) -> None:
        self.path = Path(path)
        self.spec = spec
        self.points: dict[str, dict] = dict(points or {})
        self._provenance = provenance

    # ------------------------------------------------------------------
    # Lifecycle

    @classmethod
    def open(cls, path: Path, spec: SweepSpec, *,
             resume: bool = True) -> "SweepStore":
        """Open (resuming) or create the store for *spec* at *path*.

        An existing file is resumed only when its spec matches
        exactly; a mismatch raises so results from different sweeps
        never mix. With ``resume=False`` an existing file is replaced.
        """
        path = Path(path)
        if path.exists() and resume:
            loaded = cls.load(path)
            if not _resumable(loaded.spec, spec):
                raise ConfigurationError(
                    f"sweep store {path} holds a different spec; delete "
                    f"it or pass resume=False to overwrite"
                )
            # A raised seed count is a valid extension: replica seeds
            # are prefix-stable (see repro.sweeps.spec.replica_seed),
            # so every recorded point stays valid under the new spec.
            loaded.spec = spec
            return loaded
        return cls(path, spec)

    @classmethod
    def load(cls, path: Path) -> "SweepStore":
        """Read a store file back (inverse of :meth:`save`)."""
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read sweep store {path}: {error}"
            ) from None
        if document.get("format") != FORMAT:
            raise ConfigurationError(
                f"{path} is not a {FORMAT} sweep store"
            )
        provenance = {
            key: value
            for key, value in document.get("provenance", {}).items()
            if key != "seed_table"
        }
        return cls(
            path,
            SweepSpec.from_json(document["spec"]),
            points=document.get("points", {}),
            # Keep the provenance the points were actually computed
            # under; a resume in a newer environment must not rewrite
            # the recorded origin of old results.
            provenance=provenance or None,
        )

    def save(self) -> None:
        """Write the store atomically (temp file + rename)."""
        document = self.to_json()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        tmp.replace(self.path)

    def to_json(self) -> dict:
        """The full document (deterministic; no timestamps/timings)."""
        if self._provenance is None:
            # Computed once per store: incremental per-point saves
            # must not shell out to git for every completed point.
            self._provenance = {
                **git_provenance(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            }
        return {
            "format": FORMAT,
            "spec": self.spec.to_json(),
            "provenance": {
                **self._provenance,
                # Always derived from the *current* spec: prefix-stable
                # under a raised seed count, byte-stable otherwise.
                "seed_table": {
                    str(replica): seed
                    for replica, seed in
                    enumerate(self.spec.workload_seeds())
                },
            },
            "points": self.points,
        }

    # ------------------------------------------------------------------
    # Records

    def completed_ids(self) -> set[str]:
        """Point ids already recorded (skipped on resume)."""
        return set(self.points)

    def add(self, record: Mapping) -> None:
        """Record one completed point (keyed by its ``point_id``)."""
        record = dict(record)
        point_id = record.pop("point_id")
        self.points[point_id] = record

    def __len__(self) -> int:
        return len(self.points)
