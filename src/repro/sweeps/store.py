"""Deterministic JSON persistence for sweep runs.

A :class:`SweepStore` file records the full :class:`SweepSpec`, run
provenance (git commit, library versions, the derived replica seed
table), and one scalar-metrics record per completed point, keyed by
the point's stable ``point_id``. The layout is deliberately
deterministic — sorted keys, no timestamps, no timings — so that:

* re-running the same spec serially or with ``--jobs N`` produces a
  **byte-identical** file (the acceptance check for parallel
  correctness), and
* two sweeps at different configurations ``diff`` cleanly.

Stores are resumable: reopening an existing file with the same spec
skips completed points, while a different spec is refused rather than
silently mixed (pass ``resume=False`` to overwrite).

Durability: :meth:`SweepStore.save` writes a temp file, fsyncs it
*and* the parent directory, then renames — a SIGKILL or power loss at
any instant leaves either the old complete file or the new complete
file, never a torn one. Points quarantined after exhausting their
retry budget live in a ``failures`` section (sorted, no timestamps;
omitted when empty so healthy stores stay byte-identical with
pre-fault-tolerance ones). Should a file still end up truncated or
corrupt (filesystem damage, a partial copy), :meth:`SweepStore.
salvage` recovers the spec and every parseable point record instead
of refusing the whole file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import warnings
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, StoreMergeError
from .spec import SweepSpec

__all__ = ["SweepStore", "git_provenance", "merge_provenance"]

FORMAT = "repro-swarm-sweep/1"


def _resumable(stored: SweepSpec, current: SweepSpec) -> bool:
    """Whether a store built for *stored* may serve *current*.

    Identical specs resume, and so does the same spec with a *raised*
    seed count — replica seeds are prefix-stable, so the recorded
    points are exactly the first replicas of the bigger sweep. A
    lowered count is refused: it would leave orphaned points in the
    store and break its byte-determinism.
    """
    if stored == current:
        return True
    return (current.seeds >= stored.seeds
            and dataclasses.replace(stored, seeds=current.seeds) == current)


def git_provenance(repo_dir: Path | None = None) -> dict:
    """Best-effort git commit/dirty state of the code that ran.

    Dirtiness considers tracked files only: result stores and other
    run artifacts written into the repository must not make two
    otherwise-identical sweeps disagree about provenance.
    """
    cwd = Path(repo_dir) if repo_dir is not None else Path(__file__).parent
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout.strip())
        return {"git_commit": commit, "git_dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"git_commit": None, "git_dirty": None}


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (the rename) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dir unsupported
        pass
    finally:
        os.close(fd)


class SweepStore:
    """Spec + per-point metric records, persisted as diffable JSON."""

    def __init__(self, path: Path, spec: SweepSpec,
                 points: dict[str, dict] | None = None,
                 provenance: dict | None = None,
                 failures: dict[str, dict] | None = None) -> None:
        self.path = Path(path)
        self.spec = spec
        self.points: dict[str, dict] = dict(points or {})
        self.failures: dict[str, dict] = dict(failures or {})
        self._provenance = provenance

    # ------------------------------------------------------------------
    # Lifecycle

    @classmethod
    def open(cls, path: Path, spec: SweepSpec, *,
             resume: bool = True, salvage: bool = False) -> "SweepStore":
        """Open (resuming) or create the store for *spec* at *path*.

        An existing file is resumed only when its spec matches
        exactly; a mismatch raises so results from different sweeps
        never mix. With ``resume=False`` an existing file is replaced.
        A stale ``.tmp`` sibling left by a previous run killed between
        write and rename is removed (its contents are by definition
        incomplete — the rename that would have blessed them never
        happened). With ``salvage=True`` a corrupt or truncated file
        is recovered via :meth:`salvage` — every parseable point
        record kept, the rest re-run — instead of refused.
        """
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        if tmp.exists():
            warnings.warn(
                f"removing stale sweep store temp file {tmp} (a "
                f"previous run was killed mid-save; the renamed store "
                f"file is the only blessed copy)",
                RuntimeWarning,
            )
            tmp.unlink(missing_ok=True)
        if path.exists() and resume:
            try:
                loaded = cls.load(path)
            except ConfigurationError:
                if not salvage:
                    raise
                loaded, notes = cls.salvage(path, spec=spec)
                for note in notes:
                    warnings.warn(f"salvaged {path}: {note}",
                                  RuntimeWarning)
            if not _resumable(loaded.spec, spec):
                raise ConfigurationError(
                    f"sweep store {path} holds a different spec; delete "
                    f"it or pass resume=False to overwrite"
                )
            # A raised seed count is a valid extension: replica seeds
            # are prefix-stable (see repro.sweeps.spec.replica_seed),
            # so every recorded point stays valid under the new spec.
            loaded.spec = spec
            return loaded
        return cls(path, spec)

    @classmethod
    def load(cls, path: Path) -> "SweepStore":
        """Read a store file back (inverse of :meth:`save`)."""
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read sweep store {path}: {error} (if the file "
                f"is truncated or corrupt, SweepStore.salvage / "
                f"repro-swarm sweep --salvage-store can recover the "
                f"parseable records)"
            ) from None
        if document.get("format") != FORMAT:
            raise ConfigurationError(
                f"{path} is not a {FORMAT} sweep store"
            )
        try:
            spec = SweepSpec.from_json(document["spec"])
            provenance = {
                key: value
                for key, value in document.get("provenance", {}).items()
                if key != "seed_table"
            }
            return cls(
                path,
                spec,
                points=document.get("points", {}),
                # Keep the provenance the points were actually computed
                # under; a resume in a newer environment must not
                # rewrite the recorded origin of old results.
                provenance=provenance or None,
                failures=document.get("failures", {}),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ConfigurationError(
                f"sweep store {path} is malformed: {error!r}"
            ) from None

    # ------------------------------------------------------------------
    # Salvage

    @classmethod
    def salvage(cls, path: Path,
                spec: SweepSpec | None = None
                ) -> tuple["SweepStore", list[str]]:
        """Recover what a truncated/corrupt store file still holds.

        Scans the text for the ``spec``, ``points``, ``failures`` and
        ``provenance`` sections and decodes each record independently
        (:meth:`json.JSONDecoder.raw_decode`), stopping a section at
        the first undecodable byte — so every record written before
        the corruption survives. Records whose ``point_id`` does not
        belong to the recovered (or provided fallback) spec are
        dropped rather than resurrected into the wrong sweep.

        Returns the salvaged store plus human-readable notes on what
        was recovered and what was lost. Raises
        :class:`~repro.errors.ConfigurationError` when neither the
        file nor *spec* yields a usable spec — without one, the
        records cannot be attributed to any sweep.
        """
        path = Path(path)
        try:
            text = path.read_text(errors="replace")
        except OSError as error:
            raise ConfigurationError(
                f"cannot read sweep store {path}: {error}"
            ) from None
        try:
            store = cls.load(path)
            return store, ["store parsed cleanly; nothing to salvage"]
        except ConfigurationError:
            pass

        notes: list[str] = []
        spec_payload = _salvage_object(text, "spec")
        salvaged_spec: SweepSpec | None = None
        if spec_payload is not None:
            try:
                salvaged_spec = SweepSpec.from_json(spec_payload)
            except Exception as error:
                notes.append(f"embedded spec unusable ({error})")
        if salvaged_spec is None:
            if spec is None:
                raise ConfigurationError(
                    f"cannot salvage {path}: the spec section is "
                    f"missing or corrupt and no fallback spec was "
                    f"given"
                )
            salvaged_spec = spec
            notes.append(
                "spec section unrecoverable; trusting the caller's "
                "spec for record validation"
            )
        valid_ids = {point.point_id
                     for point in salvaged_spec.points()}

        def keep(section: str, wants_metrics: bool) -> dict[str, dict]:
            records, clean = _salvage_mapping(text, section)
            kept: dict[str, dict] = {}
            dropped = 0
            for point_id, record in records.items():
                if point_id not in valid_ids or not isinstance(
                    record, dict
                ) or (wants_metrics
                      and not isinstance(record.get("metrics"), dict)):
                    dropped += 1
                    continue
                kept[point_id] = record
            if kept or dropped or not clean:
                notes.append(
                    f"{section}: recovered {len(kept)} record(s)"
                    + (f", dropped {dropped} unusable" if dropped else "")
                    + ("" if clean else "; section truncated — any "
                       "later records are lost and will be re-run")
                )
            return kept

        points = keep("points", wants_metrics=True)
        failures = keep("failures", wants_metrics=False)
        provenance = _salvage_object(text, "provenance")
        if provenance is not None:
            provenance = {key: value for key, value in provenance.items()
                          if key != "seed_table"} or None
        if provenance is None:
            notes.append(
                "provenance unrecoverable; the next save records the "
                "current environment"
            )
        return cls(path, salvaged_spec, points=points,
                   provenance=provenance, failures=failures), notes

    # ------------------------------------------------------------------
    # Merging (distributed shards -> one store)

    @classmethod
    def merge(cls, shards: Sequence["SweepStore"],
              path: Path | None = None) -> "SweepStore":
        """Merge distributed shard stores into one store, purely.

        The distributed executor shards a sweep's points across hosts;
        each host writes an ordinary :class:`SweepStore` holding the
        full spec and the points it executed. Because every section is
        deterministic sorted JSON, merging is a pure function of the
        shard contents — and when the shards partition a sweep, the
        merged store is **byte-identical** to a serial run of the same
        spec (the distributed acceptance oracle).

        Rules, all commutative and associative:

        * every shard must hold *exactly* the same spec — a mismatch
          raises :class:`~repro.errors.StoreMergeError`, results from
          different sweeps never mix;
        * ``points`` are unioned; two shards recording the same point
          must agree byte-for-byte (they do, by determinism — a
          disagreement means the shards ran different code and is
          refused);
        * ``failures`` are unioned with **later-attempt-wins**: a
          success anywhere supersedes any failure record (the success
          *is* the later attempt), and between failure records the
          higher ``attempts`` count — the one closer to the terminal
          quarantine — survives;
        * provenance is collapsed when the shards agree (the common
          case: one checkout fanned out over hosts) and otherwise
          recorded per shard (see :func:`merge_provenance`).

        *path* names the merged store's save target (defaults to the
        first shard's — callers merging in memory can ignore it).
        """
        if not shards:
            raise StoreMergeError("no shard stores to merge")
        spec = shards[0].spec
        for shard in shards[1:]:
            if shard.spec != spec:
                raise StoreMergeError(
                    f"shard {shard.path} holds a different spec than "
                    f"{shards[0].path}; shards of one sweep share the "
                    f"spec exactly (byte-identity depends on it)"
                )
        points: dict[str, dict] = {}
        for shard in shards:
            for point_id, record in shard.points.items():
                known = points.get(point_id)
                if known is not None and known != record:
                    raise StoreMergeError(
                        f"shards disagree on point {point_id!r}: sweep "
                        f"points are deterministic, so conflicting "
                        f"success records mean the shards ran "
                        f"different code or configs"
                    )
                points[point_id] = record
        failures: dict[str, dict] = {}
        for shard in shards:
            for point_id, record in shard.failures.items():
                if point_id in points:
                    # A success in any shard is the later attempt.
                    continue
                known = failures.get(point_id)
                if known is None or int(record.get("attempts", 0)) > int(
                    known.get("attempts", 0)
                ):
                    failures[point_id] = record
                elif (int(record.get("attempts", 0))
                      == int(known.get("attempts", 0)) and known != record):
                    raise StoreMergeError(
                        f"shards hold conflicting failure records for "
                        f"point {point_id!r} at the same attempt count "
                        f"({record.get('attempts')}); cannot pick a "
                        f"winner deterministically"
                    )
        provenance = merge_provenance(
            [shard._provenance for shard in shards]
        )
        return cls(
            path if path is not None else shards[0].path,
            spec, points=points, provenance=provenance,
            failures=failures,
        )

    def save(self) -> None:
        """Write the store atomically *and durably*.

        Temp file + fsync + rename + directory fsync: after save()
        returns, the record survives a crash or power loss at any
        point — and a crash *during* save leaves the previous blessed
        file untouched (the stale ``.tmp`` is swept by :meth:`open`).
        """
        document = self.to_json()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)
        _fsync_directory(self.path.parent)

    def to_json(self) -> dict:
        """The full document (deterministic; no timestamps/timings).

        ``failures`` is omitted when empty, so stores from healthy
        runs — and from faulted runs whose every failure was recovered
        within the retry budget — stay byte-identical with stores
        written before the section existed.
        """
        if self._provenance is None:
            # Computed once per store: incremental per-point saves
            # must not shell out to git for every completed point.
            self._provenance = {
                **git_provenance(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            }
        document = {
            "format": FORMAT,
            "spec": self.spec.to_json(),
            "provenance": {
                **self._provenance,
                # Always derived from the *current* spec: prefix-stable
                # under a raised seed count, byte-stable otherwise.
                "seed_table": {
                    str(replica): seed
                    for replica, seed in
                    enumerate(self.spec.workload_seeds())
                },
            },
            "points": self.points,
        }
        if self.failures:
            document["failures"] = self.failures
        return document

    # ------------------------------------------------------------------
    # Records

    def completed_ids(self) -> set[str]:
        """Point ids already recorded (skipped on resume).

        Quarantined failures deliberately do not count: a resumed
        sweep re-runs them with a fresh retry budget.
        """
        return set(self.points)

    def add(self, record: Mapping) -> None:
        """Record one completed point (keyed by its ``point_id``)."""
        record = dict(record)
        point_id = record.pop("point_id")
        self.points[point_id] = record
        # A success supersedes any quarantine left by an earlier run.
        self.failures.pop(point_id, None)

    def add_failure(self, record: Mapping) -> None:
        """Quarantine one exhausted point (keyed by its ``point_id``)."""
        record = dict(record)
        point_id = record.pop("point_id")
        self.failures[point_id] = record

    def __len__(self) -> int:
        return len(self.points)


# ----------------------------------------------------------------------
# Merge helpers


def merge_provenance(provenances: Sequence[dict | None]) -> dict | None:
    """Fold shard provenances into the merged store's provenance.

    When every shard recorded the same provenance — the normal case:
    one clean checkout fanned out across hosts — the merge collapses
    to that common record, keeping the merged store byte-identical to
    a serial run. When shards disagree (mixed hosts, mixed python or
    numpy versions), the top level keeps only the keys all shards
    agree on and the full per-shard records are preserved under a
    ``"shards"`` list, deduplicated and sorted by their JSON dump so
    the result is independent of merge order. ``None`` entries (shards
    that never computed provenance) are ignored; all-``None`` yields
    ``None`` — the merged store stamps its own environment on save,
    exactly like a fresh store.
    """
    known = [dict(p) for p in provenances if p is not None]
    if not known:
        return None
    distinct: dict[str, dict] = {}
    for record in known:
        distinct[json.dumps(record, sort_keys=True)] = record
    if len(distinct) == 1:
        return next(iter(distinct.values()))
    common = {
        key: value
        for key, value in known[0].items()
        if all(record.get(key, object()) == value for record in known[1:])
    }
    common["shards"] = [distinct[dump] for dump in sorted(distinct)]
    return common


# ----------------------------------------------------------------------
# Salvage scanning helpers

def _skip_whitespace(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def _section_start(text: str, name: str) -> int | None:
    """Position of the value of top-level key *name*, or ``None``.

    The store is always written by :meth:`SweepStore.save` with
    ``indent=2, sort_keys=True``, so a top-level key appears at the
    start of a line as ``  "name": `` — point ids and metric names
    can never be mistaken for one (they are indented deeper).
    """
    marker = f'\n  "{name}": '
    index = text.find(marker)
    if index < 0:
        return None
    return index + len(marker)


def _salvage_object(text: str, name: str) -> dict | None:
    """Decode top-level object *name* if it is intact."""
    start = _section_start(text, name)
    if start is None:
        return None
    try:
        value, _ = json.JSONDecoder().raw_decode(text, start)
    except ValueError:
        return None
    return value if isinstance(value, dict) else None


def _salvage_mapping(text: str, name: str) -> tuple[dict[str, Any], bool]:
    """Decode the entries of top-level mapping *name*, best effort.

    Walks ``"key": value`` pairs one at a time with ``raw_decode``;
    the first undecodable byte ends the scan. Returns the recovered
    entries and whether the section closed cleanly (``False`` means
    truncation — entries after the damage are unrecoverable).
    """
    start = _section_start(text, name)
    if start is None:
        return {}, False
    pos = _skip_whitespace(text, start)
    if pos >= len(text) or text[pos] != "{":
        return {}, False
    pos += 1
    decoder = json.JSONDecoder()
    records: dict[str, Any] = {}
    while True:
        pos = _skip_whitespace(text, pos)
        if pos < len(text) and text[pos] == ",":
            pos = _skip_whitespace(text, pos + 1)
        if pos >= len(text):
            return records, False
        if text[pos] == "}":
            return records, True
        try:
            key, pos = decoder.raw_decode(text, pos)
            pos = _skip_whitespace(text, pos)
            if text[pos] != ":":
                return records, False
            pos = _skip_whitespace(text, pos + 1)
            value, pos = decoder.raw_decode(text, pos)
        except (ValueError, IndexError):
            return records, False
        if not isinstance(key, str):
            return records, False
        records[key] = value
