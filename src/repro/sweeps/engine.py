"""Sweep orchestration: expand, execute, persist, aggregate.

:func:`run_sweep` is the one entry point the CLI, the registry-level
replicated experiments, and the benchmarks share::

    spec = SweepSpec(grid={"bucket_size": (4, 8, 16)}, seeds=10,
                     backends=("fast", "reference"))
    sweep = run_sweep(spec, jobs=4, store_path=Path("sweep.json"))
    for cell in sweep.summaries:
        print(cell.label, cell.metrics["mean_forwarded"])

Execution goes through :mod:`repro.sweeps.executors` (serial or a
spawn-safe process pool); completed points stream into the
:class:`~repro.sweeps.store.SweepStore` as they finish, so an
interrupted sweep resumes where it stopped. ``points_per_second``
counts only freshly executed points — the number
``benchmarks/bench_sweep.py`` compares serial vs parallel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from .aggregate import CellSummary, aggregate_records
from .executors import make_executor
from .spec import SweepSpec
from .store import SweepStore
from .worker import PointOutcome

__all__ = ["SweepResult", "run_sweep", "outcome_record"]


def outcome_record(outcome: PointOutcome) -> dict:
    """The persistable (scalar) record of one executed point.

    Deliberately carries no expansion ``index``: the canonical order
    is a property of the *current* spec (it shifts when a store is
    seed-extended), so records identify points by ``point_id`` alone
    and stay byte-comparable against a fresh run of the same spec.
    """
    return {
        "point_id": outcome.point_id,
        "backend": outcome.backend,
        "overrides": dict(outcome.overrides),
        "replica": outcome.replica,
        "workload_seed": outcome.workload_seed,
        "metrics": dict(outcome.metrics),
    }


@dataclass
class SweepResult:
    """One sweep run: canonical point records plus cell summaries.

    ``records`` covers every point of the spec in canonical order
    (freshly executed or resumed from the store — resumed points carry
    metrics only, never vectors). ``executed``/``resumed`` split the
    two; ``elapsed`` and ``points_per_second`` time only the executed
    portion.
    """

    spec: SweepSpec
    records: list[dict]
    summaries: list[CellSummary]
    executed: int
    resumed: int
    elapsed: float

    @property
    def points_per_second(self) -> float:
        """Executed-point throughput of this run."""
        if self.executed == 0 or self.elapsed <= 0.0:
            return 0.0
        return self.executed / self.elapsed


def run_sweep(spec: SweepSpec, *, jobs: int = 1,
              store_path: Path | None = None,
              resume: bool = True,
              confidence: float = 0.95,
              table_cache: bool = True,
              cap_jobs: bool = False,
              epoch_cache_tables: int | None = None) -> SweepResult:
    """Execute *spec*, optionally persisting/resuming a JSON store.

    ``jobs <= 1`` runs serially in-process; larger values fan points
    out over a spawn process pool. Results are identical either way
    (see :mod:`repro.sweeps.executors`). With ``store_path``, points
    already recorded there are skipped and the store is re-saved as
    each new point completes. ``table_cache`` (default on) has the
    parent publish each unique topology's next-hop table to shared
    memory so workers attach instead of rebuilding; ``cap_jobs``
    clamps ``jobs`` to ``os.cpu_count()`` instead of merely warning
    about oversubscription. ``epoch_cache_tables`` bounds every
    executing process's epoch storer-table cache to an explicit table
    count (``None``: the default per-address-width bytes budget).
    """
    points = spec.points()
    store = None
    completed: set[str] = set()
    if store_path is not None:
        store = SweepStore.open(store_path, spec, resume=resume)
        completed = store.completed_ids()

    pending = [point for point in points if point.point_id not in completed]
    on_result = None
    if store is not None:
        def on_result(outcome: PointOutcome) -> None:
            # Full rewrite per point: O(points^2) serialization, but
            # an interrupted sweep never loses a completed point and
            # the final file is identical however far the run got.
            store.add(outcome_record(outcome))
            store.save()

    started = time.perf_counter()
    executor = make_executor(jobs, share_tables=table_cache,
                             cap_jobs=cap_jobs,
                             epoch_cache_tables=epoch_cache_tables)
    outcomes = executor.run(spec.base, pending, on_result)
    elapsed = time.perf_counter() - started
    if store is not None and not outcomes:
        # Nothing executed (fully resumed, or a points-free store):
        # still materialize spec/provenance on disk.
        store.save()

    fresh = {outcome.point_id: outcome_record(outcome)
             for outcome in outcomes}
    records = []
    for point in points:
        record = fresh.get(point.point_id)
        if record is None and store is not None:
            stored = store.points.get(point.point_id)
            if stored is not None:
                record = {"point_id": point.point_id, **stored}
        if record is not None:
            records.append(record)

    return SweepResult(
        spec=spec,
        records=records,
        summaries=aggregate_records(spec, records, confidence),
        executed=len(outcomes),
        resumed=len(records) - len(outcomes),
        elapsed=elapsed,
    )
