"""Sweep orchestration: expand, execute, persist, aggregate.

:func:`run_sweep` is the one entry point the CLI, the registry-level
replicated experiments, and the benchmarks share::

    spec = SweepSpec(grid={"bucket_size": (4, 8, 16)}, seeds=10,
                     backends=("fast", "reference"))
    sweep = run_sweep(spec, jobs=4, store_path=Path("sweep.json"))
    for cell in sweep.summaries:
        print(cell.label, cell.metrics["mean_forwarded"])

Execution goes through :mod:`repro.sweeps.executors` (serial or a
spawn-safe process pool); completed points stream into the
:class:`~repro.sweeps.store.SweepStore` as they finish, so an
interrupted sweep resumes where it stopped. ``points_per_second``
counts only freshly executed points — the number
``benchmarks/bench_sweep.py`` compares serial vs parallel.

Runs are fault-tolerant end to end: failed points retry under a
deterministic policy and quarantine into the store's ``failures``
section when they exhaust ``max_retries`` (see
:mod:`repro.sweeps.resilience`); SIGINT/SIGTERM trigger a graceful
shutdown — every completed point is already on disk, shared-memory
segments are released, and the partial :class:`SweepResult` comes
back with ``interrupted`` set so the CLI can report and exit
``128 + signum``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import SweepInterrupted
from .aggregate import CellSummary, aggregate_records
from .chaos import FAULT_PLAN_ENV
from .executors import make_executor
from .progress import ProgressReporter
from .resilience import PointFailure, RetryPolicy
from .spec import SweepSpec
from .store import SweepStore
from .worker import PointOutcome

__all__ = ["SweepResult", "run_sweep", "outcome_record", "sweep_status"]


def outcome_record(outcome: PointOutcome) -> dict:
    """The persistable (scalar) record of one executed point.

    Deliberately carries no expansion ``index``: the canonical order
    is a property of the *current* spec (it shifts when a store is
    seed-extended), so records identify points by ``point_id`` alone
    and stay byte-comparable against a fresh run of the same spec.
    """
    return {
        "point_id": outcome.point_id,
        "backend": outcome.backend,
        "overrides": dict(outcome.overrides),
        "replica": outcome.replica,
        "workload_seed": outcome.workload_seed,
        "metrics": dict(outcome.metrics),
    }


@dataclass
class SweepResult:
    """One sweep run: canonical point records plus cell summaries.

    ``records`` covers every point of the spec in canonical order
    (freshly executed or resumed from the store — resumed points carry
    metrics only, never vectors). ``executed``/``resumed`` split the
    two; ``elapsed`` and ``points_per_second`` time only the executed
    portion. ``failures`` lists the points quarantined after
    exhausting their retry budget (empty on a healthy run), and
    ``interrupted`` carries the signal number when a graceful
    SIGINT/SIGTERM shutdown cut the run short.
    """

    spec: SweepSpec
    records: list[dict]
    summaries: list[CellSummary]
    executed: int
    resumed: int
    elapsed: float
    failures: list[PointFailure] = field(default_factory=list)
    interrupted: int | None = None

    @property
    def points_per_second(self) -> float:
        """Executed-point throughput of this run."""
        if self.executed == 0 or self.elapsed <= 0.0:
            return 0.0
        return self.executed / self.elapsed


@contextmanager
def _graceful_shutdown():
    """Convert SIGINT/SIGTERM into :class:`SweepInterrupted`.

    Installed only in the main thread (signal handlers cannot be set
    elsewhere); the handler raises, which unwinds the executor
    through its cleanup path — pool killed, shared memory released —
    while every already-completed point is safely in the store.
    Previous handlers are restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        raise SweepInterrupted(signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - no signals
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


@contextmanager
def _fault_plan_env(fault_plan: Path | None):
    """Expose *fault_plan* to this process and its spawn workers."""
    if fault_plan is None:
        yield
        return
    previous = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = str(fault_plan)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


def sweep_status(spec: SweepSpec, store_path: Path | None = None, *,
                 salvage: bool = False) -> dict:
    """What a sweep run would do — without executing anything.

    Backs ``repro-swarm sweep --dry-run``: opens (but never writes)
    the store at *store_path* and splits the spec's canonical points
    into ``completed`` (recorded), ``quarantined`` (in the failures
    section — counted as pending too, since a resume re-runs them
    with a fresh budget), and ``pending``. Ids come back in canonical
    spec order.
    """
    points = spec.points()
    completed_ids: set[str] = set()
    quarantined_ids: set[str] = set()
    if store_path is not None:
        store = SweepStore.open(Path(store_path), spec, resume=True,
                                salvage=salvage)
        completed_ids = store.completed_ids()
        quarantined_ids = set(store.failures)
    return {
        "total": len(points),
        "completed": [point.point_id for point in points
                      if point.point_id in completed_ids],
        "pending": [point.point_id for point in points
                    if point.point_id not in completed_ids],
        "quarantined": [point.point_id for point in points
                        if point.point_id in quarantined_ids],
    }


def run_sweep(spec: SweepSpec, *, jobs: int = 1,
              store_path: Path | None = None,
              resume: bool = True,
              confidence: float = 0.95,
              table_cache: bool = True,
              cap_jobs: bool = False,
              epoch_cache_tables: int | None = None,
              max_retries: int = 2,
              retry_backoff: float = 0.05,
              point_timeout: float | None = None,
              keep_going: bool = True,
              max_pool_restarts: int = 8,
              fault_plan: Path | None = None,
              salvage: bool = False,
              workers: int | None = None,
              lease_timeout: float = 300.0,
              shard_dir: Path | None = None,
              progress: bool | None = None) -> SweepResult:
    """Execute *spec*, optionally persisting/resuming a JSON store.

    ``jobs <= 1`` runs serially in-process; larger values fan points
    out over a spawn process pool. Results are identical either way
    (see :mod:`repro.sweeps.executors`). With ``store_path``, points
    already recorded there are skipped and the store is re-saved as
    each new point completes. ``table_cache`` (default on) has the
    parent publish each unique topology's next-hop table to shared
    memory so workers attach instead of rebuilding; ``cap_jobs``
    clamps ``jobs`` to ``os.cpu_count()`` instead of merely warning
    about oversubscription. ``epoch_cache_tables`` bounds every
    executing process's epoch storer-table cache to an explicit table
    count (``None``: the default per-address-width bytes budget).

    Fault tolerance: every point gets ``max_retries`` extra attempts
    (deterministic capped-exponential backoff from
    ``retry_backoff``); ``point_timeout`` arms the process executor's
    hang watchdog; ``keep_going=False`` aborts on the first point
    that exhausts its budget instead of quarantining it;
    ``max_pool_restarts`` bounds crash/hang pool rebuilds per run.
    ``fault_plan`` points workers at a :mod:`~repro.sweeps.chaos`
    JSON plan (testing/CI). ``salvage`` lets a corrupt/truncated
    store at *store_path* be recovered (parseable records kept,
    the rest re-run) instead of refused.

    ``workers`` switches to the distributed executor: that many
    ``sweep-work`` host subprocesses pull points from an HTTP work
    queue (see :mod:`repro.sweeps.distributed`), each running
    ``jobs`` local processes and writing a durable shard store under
    ``shard_dir`` (a temp dir when unset); ``lease_timeout`` bounds
    how long a silent host keeps its leases. Results — including the
    store at *store_path* — are byte-identical to a local run.

    ``progress`` draws ``completed/total · points/s · ETA`` on stderr
    (``None``: only when stderr is a tty), identically for every
    executor.
    """
    points = spec.points()
    store = None
    completed: set[str] = set()
    if store_path is not None:
        store = SweepStore.open(store_path, spec, resume=resume,
                                salvage=salvage)
        completed = store.completed_ids()

    pending = [point for point in points if point.point_id not in completed]
    if store is not None:
        # A quarantined point gets a fresh chance on resume: its stale
        # failure record is dropped here and rewritten only if the
        # point exhausts its budget again.
        for point in pending:
            store.failures.pop(point.point_id, None)

    executed: dict[str, dict] = {}
    failures: list[PointFailure] = []
    reporter = ProgressReporter(
        total=len(points),
        completed=len(points) - len(pending),
        enabled=progress,
    )

    def on_result(outcome: PointOutcome) -> None:
        # Collected through the callback (not the executor's return
        # value) so completed points survive a graceful interrupt.
        executed[outcome.point_id] = outcome_record(outcome)
        if store is not None:
            # Full rewrite per point: O(points^2) serialization, but
            # an interrupted sweep never loses a completed point and
            # the final file is identical however far the run got.
            store.add(executed[outcome.point_id])
            store.save()
        reporter.advance()

    def on_failure(failure: PointFailure) -> None:
        failures.append(failure)
        if store is not None:
            store.add_failure(failure.record())
            store.save()
        reporter.advance()

    policy = RetryPolicy(max_retries=max_retries,
                         backoff_base=retry_backoff)
    executor = make_executor(jobs, share_tables=table_cache,
                             cap_jobs=cap_jobs,
                             epoch_cache_tables=epoch_cache_tables,
                             retry_policy=policy,
                             keep_going=keep_going,
                             point_timeout=point_timeout,
                             max_pool_restarts=max_pool_restarts,
                             workers=workers,
                             spec=spec if workers is not None else None,
                             lease_timeout=lease_timeout,
                             shard_dir=shard_dir)
    interrupted: int | None = None
    started = time.perf_counter()
    with _fault_plan_env(fault_plan), _graceful_shutdown():
        try:
            executor.run(spec.base, pending, on_result, on_failure)
        except SweepInterrupted as signal_error:
            interrupted = signal_error.signum
        finally:
            reporter.close()
    elapsed = time.perf_counter() - started
    if store is not None and not executed:
        # Nothing executed (fully resumed, or a points-free store):
        # still materialize spec/provenance on disk.
        store.save()

    records = []
    for point in points:
        record = executed.get(point.point_id)
        if record is None and store is not None:
            stored = store.points.get(point.point_id)
            if stored is not None:
                record = {"point_id": point.point_id, **stored}
        if record is not None:
            records.append(record)

    return SweepResult(
        spec=spec,
        records=records,
        summaries=aggregate_records(spec, records, confidence),
        executed=len(executed),
        resumed=len(records) - len(executed),
        elapsed=elapsed,
        failures=failures,
        interrupted=interrupted,
    )
