"""Spawn-safe point execution shared by every executor.

:func:`execute_point` is a module-level function taking only
plain-data payloads, so :class:`concurrent.futures.ProcessPoolExecutor`
can ship it to freshly spawned interpreters (no fork-inherited state,
importable by qualified name on any platform). The serial executor
calls the very same function, which is what makes parallel sweeps
byte-identical to serial ones: every point runs the same arithmetic on
the same derived seed regardless of process layout.

Each worker process keeps the :mod:`repro.backends.fast` overlay
cache and the :mod:`repro.perf.table_cache` of its own interpreter,
so a worker that runs many points of the same cell pays the overlay
build once — the same amortization the single-process runners enjoy.
On top of that, :func:`execute_point` accepts the shared-memory table
handles published by :class:`~repro.sweeps.executors.ProcessExecutor`
and registers them with the worker's table cache *before* running, so
the expensive dense next-hop table is attached from the parent's
segments instead of being rebuilt — the cross-process half of the
"build each topology exactly once" guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..backends import get_backend
from ..backends.config import FastSimulationConfig
from ..backends.result import SimulationResult
from .spec import SweepPoint

__all__ = [
    "PointOutcome",
    "point_payload",
    "point_from_payload",
    "config_from_payload",
    "register_table_handles",
    "result_metrics",
    "execute_point",
    "METRIC_NAMES",
    "LATENCY_METRIC_NAMES",
]

#: Scalar metrics recorded per point, in stable store order. Points
#: run on the ``time`` backend append :data:`LATENCY_METRIC_NAMES`.
METRIC_NAMES = (
    "files",
    "chunks",
    "total_hops",
    "mean_hops",
    "fallbacks",
    "local_hits",
    "cache_hits",
    "unavailable",
    "availability",
    "mean_forwarded",
    "f2_gini",
    "f1_gini",
    "total_income",
    "net_mean",
    "net_std",
    "net_min",
    "net_max",
)

#: Extra metrics present only when the result carries latency samples
#: (the time-domain backend). Conditional: replicas of one (backend,
#: cell) either all have them or none do, which is what aggregation
#: keys on.
LATENCY_METRIC_NAMES = (
    "latency_mean_ms",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "latency_max_ms",
)


@dataclass
class PointOutcome:
    """Everything one executed sweep point produced.

    ``metrics`` holds the scalar summary persisted by the JSON store;
    ``vectors`` the exact per-node :class:`SimulationResult` arrays
    (kept in memory for aggregation and determinism checks, never
    persisted). ``elapsed`` stays out of ``metrics`` so stores diff
    cleanly across machines and serial/parallel runs.
    """

    point_id: str
    index: int
    backend: str
    overrides: dict[str, Any]
    replica: int
    workload_seed: int
    metrics: dict[str, Any]
    vectors: dict[str, np.ndarray]
    elapsed: float


def point_payload(point: SweepPoint) -> dict:
    """The plain-data form of a point shipped to worker processes."""
    return {
        "point_id": point.point_id,
        "index": point.index,
        "backend": point.backend,
        "overrides": dict(point.overrides),
        "replica": point.replica,
        "workload_seed": point.workload_seed,
    }


def point_from_payload(payload: Mapping) -> SweepPoint:
    """Inverse of :func:`point_payload` (used by distributed hosts).

    Overrides survive the JSON round-trip in insertion order (both
    Python dicts and JSON objects preserve it), and ``point_id``
    sorts them anyway, so the rebuilt point is identical to the one
    the coordinator leased out.
    """
    return SweepPoint(
        index=int(payload["index"]),
        backend=str(payload["backend"]),
        overrides=tuple(
            (str(name), value)
            for name, value in payload["overrides"].items()
        ),
        replica=int(payload["replica"]),
        workload_seed=int(payload["workload_seed"]),
    )


def config_from_payload(base: Mapping, payload: Mapping
                        ) -> FastSimulationConfig:
    """Rebuild the point's configuration from plain data."""
    merged = dict(base)
    merged.update(payload["overrides"])
    merged["workload_seed"] = payload["workload_seed"]
    return FastSimulationConfig(**merged)


def result_metrics(result: SimulationResult) -> dict[str, Any]:
    """The scalar per-point summary of one simulation result.

    Covers the paper's forwarded-chunk and Gini-fairness quantities
    plus net-balance dispersion (income minus expenditure per node),
    which separates closed-loop SWAP accounting from the one-sided
    baseline mechanisms.
    """
    net = result.income - result.expenditure
    metrics = {
        "files": int(result.files),
        "chunks": int(result.chunks),
        "total_hops": int(result.total_hops),
        "mean_hops": float(result.mean_hops),
        "fallbacks": int(result.fallbacks),
        "local_hits": int(result.local_hits),
        "cache_hits": int(result.cache_hits),
        "unavailable": int(result.unavailable),
        "availability": float(result.availability),
        "mean_forwarded": float(result.average_forwarded_chunks()),
        "f2_gini": float(result.f2_gini()),
        "f1_gini": float(result.f1_gini()),
        "total_income": float(result.income.sum()),
        "net_mean": float(net.mean()),
        "net_std": float(net.std()),
        "net_min": float(net.min()),
        "net_max": float(net.max()),
    }
    if result.latency_ms is not None and result.latency_ms.size:
        stats = result.latency_stats()
        metrics.update({
            "latency_mean_ms": stats.mean_ms,
            "latency_p50_ms": stats.p50_ms,
            "latency_p95_ms": stats.p95_ms,
            "latency_p99_ms": stats.p99_ms,
            "latency_max_ms": stats.max_ms,
        })
    return metrics


def register_table_handles(table_handles: Mapping | None) -> None:
    """Make published shared-memory tables visible to this process.

    *table_handles* maps overlay fingerprints to
    :class:`~repro.perf.shared.SharedTableHandle` payloads — plus,
    under ``"epochs:..."`` keys, the
    :class:`~repro.perf.shared.SharedEpochTablesHandle` payloads
    (``"kind": "epoch-tables"``) carrying precomputed scenario epoch
    artifacts, which are attached eagerly and installed into this
    process's epoch cache so its plans resolve every epoch as a hit.
    Dense handles are registered lazily — nothing attaches until a
    backend actually prepares that topology — and both kinds
    idempotently, so re-sending the same handles with every work item
    is free.
    """
    if not table_handles:
        return
    from ..perf.shared import (
        SharedEpochTablesHandle,
        SharedTableHandle,
        attach_epoch_tables,
    )
    from ..perf.table_cache import (
        global_epoch_table_cache,
        global_table_cache,
    )

    cache = global_table_cache()
    for handle_payload in table_handles.values():
        if handle_payload.get("kind") == "epoch-tables":
            handle = SharedEpochTablesHandle.from_payload(handle_payload)
            epoch_cache = global_epoch_table_cache()
            wanted = (*handle.storer_keys, *handle.patch_keys)
            if all(key in epoch_cache for key in wanted):
                continue
            artifacts, segments = attach_epoch_tables(handle)
            for key, artifact in artifacts.items():
                epoch_cache.install(key, artifact)
            epoch_cache.adopt_segments(segments)
        else:
            cache.register_handle(
                SharedTableHandle.from_payload(handle_payload)
            )


def execute_point(base: Mapping, payload: Mapping,
                  table_handles: Mapping | None = None,
                  epoch_cache_tables: int | None = None,
                  attempt: int = 0) -> PointOutcome:
    """Run one sweep point and summarize it (the executor work unit).

    ``epoch_cache_tables`` re-bounds this process's epoch storer-table
    cache (the ``--epoch-cache-tables`` sweep flag); ``None`` restores
    the default byte-budget bound, so a bound set by an earlier sweep
    in the same process never leaks into the next. Applied
    idempotently, so per-point calls never flush the cache's
    cross-replica amortization.

    ``attempt`` is the 0-based retry attempt the executor is running;
    it never influences the simulation (results are attempt-invariant
    by construction) and exists only so the :mod:`~repro.sweeps.chaos`
    fault-injection hook below can key faults by
    ``(point_id, attempt)`` — "fail the first try, pass the retry".
    """
    from ..perf.table_cache import configure_epoch_table_cache
    from .chaos import maybe_inject

    maybe_inject(payload["point_id"], attempt)
    configure_epoch_table_cache(max_tables=epoch_cache_tables)
    register_table_handles(table_handles)
    config = config_from_payload(base, payload)
    backend = get_backend(payload["backend"])
    result = backend.prepare(config).run()
    return PointOutcome(
        point_id=payload["point_id"],
        index=payload["index"],
        backend=payload["backend"],
        overrides=dict(payload["overrides"]),
        replica=payload["replica"],
        workload_seed=payload["workload_seed"],
        metrics=result_metrics(result),
        vectors={
            "forwarded": result.forwarded.copy(),
            "first_hop": result.first_hop.copy(),
            "income": result.income.copy(),
            "expenditure": result.expenditure.copy(),
        },
        elapsed=float(result.elapsed_seconds),
    )
