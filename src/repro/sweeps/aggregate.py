"""Replica aggregation: per-cell mean / std / 95% confidence intervals.

Each sweep cell (one backend x one grid assignment) runs ``seeds``
workload replicas; this module collapses their per-point metrics into
a :class:`CellSummary` of :class:`MetricSummary` statistics — the
error bars the replicated ``table1``/``fig5`` experiment runners and
the ``repro-swarm sweep`` CLI report.

Aggregation is **replica-order invariant**: inputs are sorted by
replica index before any floating-point reduction, so summaries come
out bit-identical no matter how the executor interleaved the points
(pinned by ``tests/property/test_property_sweeps.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.stats import mean_confidence_interval
from ..errors import ConfigurationError
from .spec import SweepSpec

__all__ = ["MetricSummary", "CellSummary", "summarize_metric",
           "aggregate_records"]


@dataclass(frozen=True)
class MetricSummary:
    """Replica statistics for one scalar metric."""

    n: int
    mean: float
    std: float
    low: float
    high: float

    def __str__(self) -> str:
        if self.n < 2:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} [{self.low:.4g}, {self.high:.4g}]"

    def to_json(self) -> dict:
        """Plain-data form for the result store."""
        return {"n": self.n, "mean": self.mean, "std": self.std,
                "low": self.low, "high": self.high}


@dataclass(frozen=True)
class CellSummary:
    """All metric summaries for one (backend, grid cell)."""

    backend: str
    overrides: tuple[tuple[str, Any], ...]
    replicas: int
    metrics: dict[str, MetricSummary]

    @property
    def label(self) -> str:
        """Human-readable cell name for report tables."""
        cell = ", ".join(f"{k}={v}" for k, v in self.overrides)
        return cell if cell else "base"


def summarize_metric(values: Sequence[float],
                     confidence: float = 0.95) -> MetricSummary:
    """Mean / sample std / two-sided CI of replica values.

    With a single replica there is no variance estimate: std is zero
    and the interval collapses to the point estimate, which keeps
    single-seed sweeps (the paper's original methodology) flowing
    through the same code path.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("cannot summarize a metric with no values")
    if array.size == 1:
        value = float(array[0])
        return MetricSummary(n=1, mean=value, std=0.0, low=value, high=value)
    mean, low, high = mean_confidence_interval(array, confidence)
    return MetricSummary(
        n=int(array.size),
        mean=mean,
        std=float(array.std(ddof=1)),
        low=low,
        high=high,
    )


def aggregate_records(spec: SweepSpec,
                      records: Iterable[Mapping],
                      confidence: float = 0.95) -> list[CellSummary]:
    """Group per-point records by cell and summarize across replicas.

    *records* are point dicts with ``backend`` / ``overrides`` /
    ``replica`` / ``metrics`` keys (the store's persisted form, which
    :class:`~repro.sweeps.worker.PointOutcome` also satisfies via
    :func:`~repro.sweeps.engine.outcome_record`). Cells appear in the
    spec's canonical order; replicas are sorted before reducing so the
    result is independent of record order.
    """
    by_cell: dict[tuple, dict[int, Mapping]] = {}
    for record in records:
        key = (record["backend"],
               tuple(sorted(record["overrides"].items())))
        replicas = by_cell.setdefault(key, {})
        replicas[int(record["replica"])] = record["metrics"]

    summaries = []
    for backend in spec.backends:
        for cell in spec.cells():
            key = (backend, tuple(sorted(cell)))
            replicas = by_cell.get(key)
            if not replicas:
                continue
            ordered = [replicas[r] for r in sorted(replicas)]
            metric_names = list(ordered[0])
            summaries.append(CellSummary(
                backend=backend,
                overrides=cell,
                replicas=len(ordered),
                metrics={
                    name: summarize_metric(
                        [m[name] for m in ordered], confidence
                    )
                    for name in metric_names
                },
            ))
    return summaries
