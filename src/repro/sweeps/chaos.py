"""Deterministic fault injection for sweep workers.

Every recovery path in :mod:`repro.sweeps.executors` — retry on
exception, pool rebuild after a dead worker, watchdog timeout on a
hung point — is exercised in tests and CI by *real* subprocess
misbehavior, injected here. A fault plan is a small JSON document::

    {"faults": [
      {"point_id": "fast|bucket_size=4|r0", "attempt": 0,
       "kind": "exception", "message": "injected"},
      {"point_id": "fast|bucket_size=4|r1", "attempt": 0,
       "kind": "crash"},
      {"point_id": "fast|bucket_size=8|r0", "attempt": 0,
       "kind": "hang", "seconds": 60.0}
    ]}

keyed by ``(point_id, attempt)``: the fault fires only on that exact
attempt of that exact point, so "crash on the first try, succeed on
the retry" is expressible — and a faulted-but-recovered sweep is
deterministically byte-identical to a fault-free run, which is the
acceptance oracle the chaos CI step pins with ``cmp``.

Plans reach workers through the ``REPRO_FAULT_PLAN`` environment
variable (a path; spawn children inherit the parent's environment),
set by ``repro-swarm sweep --fault-plan file.json`` or directly by
tests. :func:`maybe_inject` is called by
:func:`~repro.sweeps.worker.execute_point` before any real work.

Fault kinds:

``exception``
    raise :class:`InjectedFault` (picklable; retried like any worker
    exception).
``crash``
    ``os._exit(70)`` — the interpreter dies without cleanup, exactly
    like a segfault; the parent sees ``BrokenProcessPool``.
``kill``
    ``SIGKILL`` to the worker's own pid — indistinguishable from the
    OOM killer.
``hang``
    sleep for ``seconds`` (default far beyond any sane
    ``--point-timeout``), tripping the parent's watchdog.

``crash``/``kill``/``hang`` only fire inside a spawned worker
(``multiprocessing.parent_process()`` is not ``None``): injected into
a serial in-process run they would take the whole sweep down — or
hang it with nobody left to watch the clock — so there they warn and
skip instead. ``exception`` faults fire everywhere.

The distributed executor adds ``kill-host``: SIGKILL the whole
``repro-swarm sweep-work`` *host* process (found via the
``REPRO_SWEEP_HOST_PID`` environment variable every host exports to
itself and its pool children), simulating a machine vanishing
mid-point. The work-queue daemon sees the lease die, charges the
point exactly one ``crash`` attempt, and re-leases it to a surviving
host. Outside a sweep-work host the kind warns and skips, like the
other fatal kinds.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from ..errors import ConfigurationError

__all__ = [
    "FAULT_PLAN_ENV",
    "HOST_PID_ENV",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "active_fault_plan",
    "maybe_inject",
]

#: Environment variable carrying the fault-plan file path; inherited
#: by spawn workers, read lazily (and mtime-cached) per process.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Set by every ``repro-swarm sweep-work`` host to its own pid (and
#: inherited by its spawned pool children), so a ``kill-host`` fault
#: can find the host process to SIGKILL from wherever it fires.
HOST_PID_ENV = "REPRO_SWEEP_HOST_PID"

FAULT_KINDS = ("exception", "crash", "kill", "hang", "kill-host")

#: Exit status used by ``crash`` faults — distinctive in process
#: tables but never observed by the parent as a status (the pool only
#: reports the broken pipe).
CRASH_EXIT_CODE = 70

#: Default hang duration: long enough that any reasonable
#: ``--point-timeout`` fires first, short enough that a watchdog-less
#: test run eventually frees its worker.
DEFAULT_HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """The exception raised by ``exception``-kind faults (picklable)."""


@dataclass(frozen=True)
class Fault:
    """One injected fault, keyed by the point and 0-based attempt."""

    point_id: str
    attempt: int
    kind: str
    message: str = "injected fault"
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.attempt < 0:
            raise ConfigurationError(
                f"fault attempt must be >= 0, got {self.attempt}"
            )
        if self.seconds <= 0:
            raise ConfigurationError(
                f"hang seconds must be > 0, got {self.seconds}"
            )

    @classmethod
    def from_json(cls, payload: Mapping) -> "Fault":
        unknown = set(payload) - {"point_id", "attempt", "kind",
                                  "message", "seconds"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan key(s) {sorted(unknown)}"
            )
        try:
            fault = cls(
                point_id=str(payload["point_id"]),
                attempt=int(payload.get("attempt", 0)),
                kind=str(payload["kind"]),
                message=str(payload.get("message", "injected fault")),
                seconds=float(payload.get("seconds",
                                          DEFAULT_HANG_SECONDS)),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"fault plan entry is missing required key {error}"
            ) from None
        return fault


class FaultPlan:
    """An immutable set of faults, looked up by ``(point_id, attempt)``."""

    def __init__(self, faults: tuple[Fault, ...] = ()) -> None:
        self._faults: dict[tuple[str, int], Fault] = {}
        for fault in faults:
            key = (fault.point_id, fault.attempt)
            if key in self._faults:
                raise ConfigurationError(
                    f"duplicate fault for point {fault.point_id!r} "
                    f"attempt {fault.attempt}"
                )
            self._faults[key] = fault

    def lookup(self, point_id: str, attempt: int) -> Fault | None:
        return self._faults.get((point_id, attempt))

    def __len__(self) -> int:
        return len(self._faults)

    @classmethod
    def from_json(cls, payload: Mapping) -> "FaultPlan":
        if not isinstance(payload, Mapping) or "faults" not in payload:
            raise ConfigurationError(
                "a fault plan is an object with a 'faults' array"
            )
        return cls(tuple(
            Fault.from_json(entry) for entry in payload["faults"]
        ))

    @classmethod
    def load(cls, path: Path) -> "FaultPlan":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read fault plan {path}: {error}"
            ) from None
        return cls.from_json(payload)


#: Per-process plan cache: (path, mtime_ns) -> FaultPlan. Workers are
#: short-lived spawns, so this only saves re-parsing across the many
#: points one worker executes.
_PLAN_CACHE: dict[tuple[str, int], FaultPlan] = {}


def active_fault_plan() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULT_PLAN``, if any (mtime-cached)."""
    path = os.environ.get(FAULT_PLAN_ENV)
    if not path:
        return None
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError as error:
        raise ConfigurationError(
            f"{FAULT_PLAN_ENV}={path}: {error}"
        ) from None
    key = (path, mtime)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = FaultPlan.load(Path(path))
        _PLAN_CACHE.clear()  # one active plan per process is plenty
        _PLAN_CACHE[key] = plan
    return plan


def _in_worker() -> bool:
    """Whether this process is a spawned child (safe to die/hang)."""
    return multiprocessing.parent_process() is not None


def maybe_inject(point_id: str, attempt: int) -> None:
    """Fire the active plan's fault for ``(point_id, attempt)``, if any.

    Called by :func:`~repro.sweeps.worker.execute_point` before any
    real work, in every executor. Fatal kinds (``crash``, ``kill``,
    ``hang``) are worker-only — in the parent process they warn and
    skip, because dying would defeat the layer under test and hanging
    the serial executor leaves no watchdog to recover it.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    fault = plan.lookup(point_id, attempt)
    if fault is None:
        return
    if fault.kind == "exception":
        raise InjectedFault(
            f"{fault.message} (point {point_id}, attempt {attempt})"
        )
    if fault.kind == "kill-host":
        host_pid = os.environ.get(HOST_PID_ENV)
        if not host_pid:
            warnings.warn(
                f"fault plan requests a 'kill-host' fault for point "
                f"{point_id} attempt {attempt}, but this process is "
                f"not (inside) a sweep-work host; skipping (kill-host "
                f"only fires under the distributed executor)",
                RuntimeWarning,
            )
            return
        # Kill the host first — taking down its whole process tree is
        # the point — then this process if it was a pool child of it.
        os.kill(int(host_pid), signal.SIGKILL)
        if int(host_pid) != os.getpid():  # pragma: no cover - dies
            os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover - unreachable
    if not _in_worker():
        warnings.warn(
            f"fault plan requests a {fault.kind!r} fault for point "
            f"{point_id} attempt {attempt}, but this is not a spawned "
            f"worker process; skipping (fatal faults only fire under "
            f"--jobs >= 2)",
            RuntimeWarning,
        )
        return
    if fault.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    # hang: sleep in short slices so an external SIGTERM still lands
    # promptly between slices on platforms where sleep is uninterruptible.
    deadline = time.monotonic() + fault.seconds
    while time.monotonic() < deadline:
        time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))
