"""HTTP work queue for distributed sweeps.

The distributed executor (see :mod:`repro.sweeps.distributed`) shards
a sweep's points across *hosts* by pulling, not pushing: a tiny
stdlib-only HTTP daemon owns the set of pending ``point_id``'s and
**leases** batches to whichever ``repro-swarm sweep-work`` host asks
first, so fast hosts naturally take more points and a dead host's
work flows to the survivors. The daemon is the single authority on
retry budgets: every lease carries the point's global failed-attempt
count, every failure report charges exactly one attempt against the
same deterministic :class:`~repro.sweeps.resilience.RetryPolicy` the
local executors use, and a lease that expires — its host vanished or
stopped heartbeating — is charged exactly one ``crash`` attempt with
a fixed message and digest, mirroring how the process executor
charges points lost to a dead pool worker. Quarantine records are
therefore byte-identical whether a sweep ran serially, in one
process pool, or across hosts.

:class:`QueueState` is the pure, lock-guarded state machine (directly
unit-testable, no sockets); :class:`SweepQueueDaemon` wraps it in a
:class:`~http.server.ThreadingHTTPServer` speaking a small JSON
protocol:

====================  ====================================================
``GET /spec``         the full :class:`~repro.sweeps.spec.SweepSpec`
                      (JSON) plus the lease timeout — everything a host
                      needs to run points and write its shard store
``GET /status``       progress counters (total/pending/leased/...)
``POST /lease``       ``{"worker", "count"}`` -> point payloads with
                      their global attempt numbers, or ``done`` /
                      ``retry_after``
``POST /complete``    ``{"worker", "record", "index", "elapsed"}`` —
                      idempotent; duplicate completions of a re-leased
                      point carry byte-identical records and dedup here
``POST /fail``        ``{"worker", "point_id", "kind", "error",
                      "digest"}`` -> retry verdict, plus the daemon's
                      authoritative terminal failure record on
                      quarantine (the host writes *that* to its shard,
                      so shards merge identically to the main store)
``POST /heartbeat``   ``{"worker"}`` — renews every lease the worker
                      holds; a host whose heartbeats stop is presumed
                      dead once its leases pass the timeout
====================  ====================================================

The daemon binds loopback by default and speaks plaintext HTTP with
no authentication: it is a work-distribution mechanism for hosts you
already trust (a lab cluster, CI), not a hardened service — anyone
who can reach the port can take work and submit results.
"""

from __future__ import annotations

import heapq
import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from .resilience import FailureTracker, PointFailure, RetryPolicy, \
    failure_digest
from .spec import SweepPoint, SweepSpec
from .worker import point_payload

__all__ = [
    "LEASE_CRASH_ERROR",
    "LEASE_CRASH_DIGEST",
    "QueueState",
    "SweepQueueDaemon",
]


class _HostVanished(RuntimeError):
    """Fixed-message stand-in exception for an expired lease.

    Never raised — it exists so the expiry charge has a deterministic
    ``Type: message`` rendering and :func:`failure_digest`, exactly
    like :class:`~repro.sweeps.executors.WorkerCrash` gives in-flight
    points lost to a dead pool worker.
    """


_LEASE_CRASH = _HostVanished(
    "worker host vanished while this point was leased"
)

#: The error string charged to a point whose lease expired.
LEASE_CRASH_ERROR = f"{type(_LEASE_CRASH).__name__}: {_LEASE_CRASH}"

#: Its deterministic digest (type + message only, machine-independent).
LEASE_CRASH_DIGEST = failure_digest(_LEASE_CRASH)


class QueueState:
    """The work queue's state machine: pending / leased / settled.

    All public methods are lock-guarded (the HTTP server is threaded)
    and side-effect-free beyond this object: settlements are emitted
    into :attr:`events` — ``("result", record, index, elapsed)`` and
    ``("failure", PointFailure)`` tuples the coordinator drains to
    feed its store callbacks.

    The queue, not any host, owns retry accounting: ``attempts`` may
    seed prior failed-attempt counts (protocol parity with the local
    executors' ``run(..., attempts=...)``), each lease carries the
    point's current count, and failure reports / lease expiries charge
    attempts here. Hosts run their local executor with a zero-retry
    policy seeded from the leased count, so a local quarantine is one
    globally-numbered attempt — and terminal records come back *from*
    the daemon (see :meth:`fail`), keeping shard stores byte-identical
    to the coordinator's.
    """

    def __init__(self, spec: SweepSpec, points: Sequence[SweepPoint], *,
                 retry_policy: RetryPolicy | None = None,
                 lease_timeout: float = 300.0,
                 attempts: Mapping[str, int] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        self.spec = spec
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self.points: dict[str, SweepPoint] = {
            point.point_id: point for point in points
        }
        self.tracker = FailureTracker(
            retry_policy or RetryPolicy(),
            attempts=dict(attempts or {}),
        )
        self._sequence = itertools.count()
        #: Min-heap of (ready_at, seq, point_id) — seq keeps the
        #: initial canonical order among equally-ready points.
        self._ready: list[tuple[float, int, str]] = [
            (0.0, next(self._sequence), point.point_id)
            for point in points
        ]
        heapq.heapify(self._ready)
        #: point_id -> {"worker", "deadline"} while leased out.
        self.leases: dict[str, dict[str, Any]] = {}
        self.completed: dict[str, dict] = {}
        self.terminal: dict[str, dict] = {}
        self.events: queue.Queue = queue.Queue()

    # ------------------------------------------------------------------
    # Protocol operations

    def lease(self, worker: str, count: int) -> dict:
        """Hand *worker* up to *count* ready points.

        Returns ``{"points": [{"point": payload, "attempt": n}, ...],
        "done": bool, "retry_after": seconds|None}`` — ``done`` tells
        an idle host to exit, ``retry_after`` when to poll again while
        retries back off or other hosts' leases are still out.
        """
        with self._lock:
            now = self._clock()
            self._expire_overdue_locked(now)
            leased: list[dict] = []
            while self._ready and len(leased) < max(1, count):
                ready_at, _, point_id = self._ready[0]
                if ready_at > now:
                    break
                heapq.heappop(self._ready)
                if point_id in self.completed or point_id in self.terminal:
                    continue  # settled while queued (stale entry)
                self.leases[point_id] = {
                    "worker": worker,
                    "deadline": now + self.lease_timeout,
                }
                leased.append({
                    "point": point_payload(self.points[point_id]),
                    "attempt": self.tracker.attempts.get(point_id, 0),
                })
            retry_after = None
            if not leased and not self._finished_locked():
                if self._ready:
                    retry_after = max(0.05, self._ready[0][0] - now)
                else:
                    retry_after = 0.5  # other hosts' leases are out
            return {
                "points": leased,
                "done": self._finished_locked(),
                "retry_after": retry_after,
            }

    def complete(self, worker: str, record: Mapping, index: int,
                 elapsed: float) -> dict:
        """Settle one successfully executed point.

        Idempotent: a point re-leased after a false-positive expiry is
        eventually completed twice with byte-identical records (the
        sweep is deterministic); only the first settles and emits. A
        success also supersedes a quarantine recorded meanwhile —
        matching :meth:`SweepStore.add`, which drops the failure entry.

        The response carries ``done`` so the host that settles the
        final point learns immediately — without racing a /lease poll
        against the coordinator tearing the daemon down.
        """
        record = dict(record)
        point_id = record["point_id"]
        with self._lock:
            if point_id not in self.points:
                raise KeyError(f"unknown point {point_id!r}")
            self.leases.pop(point_id, None)
            duplicate = point_id in self.completed
            if not duplicate:
                self.completed[point_id] = record
                self.terminal.pop(point_id, None)
                self.events.put(
                    ("result", record, int(index), float(elapsed))
                )
            return {
                "ok": True,
                "duplicate": duplicate,
                "done": self._finished_locked(),
            }

    def fail(self, worker: str, point_id: str, kind: str, error: str,
             digest: str) -> dict:
        """Charge one reported failed attempt; decide retry or terminal.

        Only the current lease holder's report counts — a stale report
        from a host whose lease already expired (and was charged a
        crash attempt) is ignored rather than double-charged. Returns
        ``{"retry": bool, "failure": record|None}``; a non-``None``
        failure record is the daemon's authoritative terminal record,
        which the reporting host writes into its shard store.
        """
        with self._lock:
            lease = self.leases.get(point_id)
            if lease is None or lease["worker"] != worker:
                return {"retry": False, "failure": None, "stale": True,
                        "done": self._finished_locked()}
            del self.leases[point_id]
            verdict = self._charge_locked(point_id, kind, error, digest)
            verdict["done"] = self._finished_locked()
            return verdict

    def heartbeat(self, worker: str) -> dict:
        """Renew every lease *worker* holds."""
        with self._lock:
            deadline = self._clock() + self.lease_timeout
            renewed = 0
            for lease in self.leases.values():
                if lease["worker"] == worker:
                    lease["deadline"] = deadline
                    renewed += 1
            return {"renewed": renewed}

    # ------------------------------------------------------------------
    # Expiry

    def expire_overdue(self) -> list[str]:
        """Expire every lease past its deadline (heartbeats stopped)."""
        with self._lock:
            return self._expire_overdue_locked(self._clock())

    def expire_worker(self, worker: str) -> list[str]:
        """Expire *worker*'s leases now (its process is known dead)."""
        with self._lock:
            overdue = [point_id
                       for point_id, lease in self.leases.items()
                       if lease["worker"] == worker]
            for point_id in overdue:
                self._expire_locked(point_id)
            return overdue

    def _expire_overdue_locked(self, now: float) -> list[str]:
        overdue = [point_id
                   for point_id, lease in self.leases.items()
                   if lease["deadline"] <= now]
        for point_id in overdue:
            self._expire_locked(point_id)
        return overdue

    def _expire_locked(self, point_id: str) -> None:
        """Charge one ``crash`` attempt for a vanished host's lease."""
        self.leases.pop(point_id, None)
        if point_id in self.completed:
            return  # settled by a duplicate completion meanwhile
        self._charge_locked(
            point_id, "crash", LEASE_CRASH_ERROR, LEASE_CRASH_DIGEST
        )

    def _charge_locked(self, point_id: str, kind: str, error: str,
                       digest: str) -> dict:
        point = self.points[point_id]
        failure = self.tracker.record_reported(
            point, kind, error=error, digest=digest
        )
        if failure is None:
            # Budget remains: requeue after the policy's backoff (the
            # failed-attempt index is the count *before* this charge).
            attempt = self.tracker.attempts[point_id] - 1
            delay = self.tracker.policy.delay(attempt)
            heapq.heappush(self._ready, (
                self._clock() + delay, next(self._sequence), point_id,
            ))
            return {"retry": True, "failure": None}
        record = failure.record()
        self.terminal[point_id] = record
        self.events.put(("failure", failure))
        return {"retry": False, "failure": record}

    # ------------------------------------------------------------------
    # Introspection

    def _finished_locked(self) -> bool:
        return (len(self.completed) + len(self.terminal)
                >= len(self.points))

    @property
    def finished(self) -> bool:
        """Every point settled (completed or terminally quarantined)."""
        with self._lock:
            return self._finished_locked()

    def status(self) -> dict:
        """Progress counters for ``GET /status`` and ``--dry-run``."""
        with self._lock:
            settled = len(self.completed) + len(self.terminal)
            return {
                "total": len(self.points),
                "pending": len(self.points) - settled - len(self.leases),
                "leased": len(self.leases),
                "completed": len(self.completed),
                "quarantined": len(self.terminal),
                "done": self._finished_locked(),
            }


class _QueueHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP adapter for a :class:`QueueState`."""

    #: Quiet by default: one log line per lease/heartbeat would drown
    #: real output. The daemon's owner reads /status instead.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def state(self) -> QueueState:
        return self.server.queue_state  # type: ignore[attr-defined]

    def _reply(self, payload: Mapping, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/spec":
            self._reply({
                "spec": self.state.spec.to_json(),
                "lease_timeout": self.state.lease_timeout,
            })
        elif self.path == "/status":
            self._reply(self.state.status())
        else:
            self._reply({"error": f"unknown path {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._body()
            if self.path == "/lease":
                self._reply(self.state.lease(
                    str(body["worker"]), int(body.get("count", 1))
                ))
            elif self.path == "/complete":
                self._reply(self.state.complete(
                    str(body["worker"]), body["record"],
                    int(body["index"]), float(body["elapsed"]),
                ))
            elif self.path == "/fail":
                self._reply(self.state.fail(
                    str(body["worker"]), str(body["point_id"]),
                    str(body["kind"]), str(body["error"]),
                    str(body["digest"]),
                ))
            elif self.path == "/heartbeat":
                self._reply(self.state.heartbeat(str(body["worker"])))
            else:
                self._reply({"error": f"unknown path {self.path}"}, 404)
        except (KeyError, TypeError, ValueError, json.JSONDecodeError
                ) as error:
            self._reply({"error": f"bad request: {error!r}"}, 400)


class SweepQueueDaemon:
    """A :class:`QueueState` served over loopback HTTP.

    Binds on construction (so :attr:`url` is immediately valid, with
    the OS-assigned port when ``port=0``), serves from a background
    thread after :meth:`start`, and tears the socket down in
    :meth:`close`. The state machine stays directly accessible via
    :attr:`state` — the coordinating process drains
    ``state.events`` in its own loop rather than talking HTTP to
    itself.
    """

    def __init__(self, state: QueueState, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.state = state
        self._server = ThreadingHTTPServer((host, port), _QueueHandler)
        self._server.daemon_threads = True
        self._server.queue_state = state  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "SweepQueueDaemon":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="sweep-queue-daemon",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
