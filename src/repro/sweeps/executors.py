"""Sweep executors: serial for determinism, process pool for speed.

Both executors run :func:`repro.sweeps.worker.execute_point` over the
same plain-data payloads and return outcomes re-sorted into the
spec's canonical point order, so::

    SerialExecutor().run(base, points)
    == ProcessExecutor(jobs=4).run(base, points)

holds exactly (identical floats, identical per-node vectors) — the
invariant ``tests/sweeps/test_determinism.py`` pins for every backend
in the registry. :class:`ProcessExecutor` always uses the ``spawn``
start method: workers import :mod:`repro` fresh instead of inheriting
forked state, which keeps results independent of whatever the parent
process cached and behaves identically on Linux, macOS, and Windows.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import get_context
from typing import Callable, Sequence

from ..backends.config import FastSimulationConfig
from ..errors import ConfigurationError
from .spec import SweepPoint
from .worker import PointOutcome, execute_point, point_payload

__all__ = ["SweepExecutor", "SerialExecutor", "ProcessExecutor",
           "make_executor"]

#: Callback invoked as each point completes (store persistence hook).
OnResult = Callable[[PointOutcome], None]


class SweepExecutor:
    """Runs sweep points; subclasses choose the execution strategy."""

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        """Execute *points* against *base*; canonical-order outcomes."""
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """In-process, one point at a time — the determinism reference."""

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        base_payload = dataclasses.asdict(base)
        outcomes = []
        for point in points:
            outcome = execute_point(base_payload, point_payload(point))
            if on_result is not None:
                on_result(outcome)
            outcomes.append(outcome)
        outcomes.sort(key=lambda o: o.index)
        return outcomes


class ProcessExecutor(SweepExecutor):
    """Fan points out over a spawn-based process pool.

    Results are collected as they complete (so the store can persist
    incrementally) and re-sorted into canonical point order before
    returning; scheduling order never leaks into the output.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        if not points:
            return []
        base_payload = dataclasses.asdict(base)
        workers = min(self.jobs, len(points))
        outcomes: list[PointOutcome] = []
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            pending = {
                pool.submit(execute_point, base_payload,
                            point_payload(point))
                for point in points
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    if on_result is not None:
                        on_result(outcome)
                    outcomes.append(outcome)
        outcomes.sort(key=lambda o: o.index)
        return outcomes


def make_executor(jobs: int) -> SweepExecutor:
    """Serial for ``jobs == 1``, a spawn process pool otherwise."""
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
